# Developer loop shortcuts.  Tier-1 (`make test`) is what CI runs and what
# the acceptance gate measures; `make quick` skips the @pytest.mark.slow
# end-to-end tests (full optimization loops, process pools, model training)
# for a tighter edit-test cycle.

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: test quick bench-smoke serve-smoke

test:
	$(PYTEST) -x -q

quick:
	$(PYTEST) -x -q -m "not slow"

bench-smoke:
	PYTHONPATH=src python benchmarks/bench_surrogate_hotpath.py --smoke
	PYTHONPATH=src python benchmarks/bench_workload_parallel.py --smoke
	PYTHONPATH=src python benchmarks/bench_exec_backends.py --smoke
	PYTHONPATH=src python benchmarks/bench_batch_ask.py --smoke
	PYTHONPATH=src python benchmarks/bench_plan_cache.py --smoke
	PYTHONPATH=src python benchmarks/bench_faults.py --smoke
	PYTHONPATH=src python benchmarks/bench_fabric.py --smoke
	PYTHONPATH=src python benchmarks/bench_serve.py --smoke
	PYTHONPATH=src python benchmarks/bench_obs.py --smoke
	PYTHONPATH=src python benchmarks/bench_exec_kernels.py --smoke

serve-smoke:
	PYTHONPATH=src python benchmarks/bench_serve.py --smoke
