"""Acquisition functions for selecting the next plan to execute."""

from __future__ import annotations

import numpy as np
from scipy import stats


def thompson_sample(surrogate, candidates: np.ndarray, rng: np.random.Generator,
                    num_samples: int = 1) -> int:
    """Thompson sampling: draw posterior functions and pick the candidate minimizer.

    With ``num_samples > 1`` the candidate minimizing the average sampled value
    is chosen (a slightly less noisy variant).
    """
    samples = surrogate.posterior_samples(candidates, num_samples, rng)
    scores = samples.mean(axis=0)
    return int(np.argmin(scores))


def expected_improvement(surrogate, candidates: np.ndarray, best_value: float,
                         xi: float = 0.0) -> np.ndarray:
    """Expected improvement (for minimization) of each candidate."""
    mean, std = surrogate.predict(candidates)
    std = np.maximum(std, 1e-12)
    improvement = best_value - xi - mean
    z = improvement / std
    return improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)


def lower_confidence_bound(surrogate, candidates: np.ndarray, kappa: float = 2.0) -> np.ndarray:
    """LCB scores (for minimization): ``mean - kappa * std``."""
    mean, std = surrogate.predict(candidates)
    return mean - kappa * std
