"""Acquisition: the selection layer of the composable BO stack.

Given a surrogate posterior and a candidate pool, an acquisition strategy
picks which candidate(s) to evaluate next.  The plain functions
(:func:`thompson_sample`, :func:`expected_improvement`,
:func:`lower_confidence_bound`) are the scoring primitives; the
:class:`Acquisition`/:class:`BatchAcquisition` protocols wrap them in objects
the engine composes with a surrogate and a candidate generator.

Batched selection (``q > 1`` plans in flight for one query) must avoid
proposing q near-duplicates — q argmins of the same posterior mean collapse
onto one basin.  Two strategies from the batched-BO family are provided:

* :class:`BatchThompsonSampling` — q independent posterior sample paths;
  each path's minimizer is a draw from the posterior over the argmin, so the
  batch is diverse exactly where the posterior is uncertain.
* :class:`FantasizedThompson` — greedy one-step constant liar: before each
  later pick the surrogate is *fantasized* on the most recent pick
  (conditioned in closed form on a hypothetical censored observation at its
  posterior mean, the rank-1 path built in PR 1) and the candidates are
  re-scored against that fantasized posterior, repelling the next pick from
  the basin just covered.  Conditioning is on the latest pick only — the
  rank-1 path extends one point at a time — so earlier picks are excluded
  exactly (index masking) but do not repel their neighbourhoods.

Both reduce exactly to :func:`thompson_sample` at ``q = 1`` — same RNG
stream, same pick — which is what keeps batched traces bit-for-bit equal to
sequential ones at ``q = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np
from scipy import stats


def thompson_sample(surrogate, candidates: np.ndarray, rng: np.random.Generator,
                    num_samples: int = 1) -> int:
    """Thompson sampling: draw posterior functions and pick the candidate minimizer.

    With ``num_samples > 1`` the candidate minimizing the average sampled value
    is chosen (a slightly less noisy variant).
    """
    samples = surrogate.posterior_samples(candidates, num_samples, rng)
    scores = samples.mean(axis=0)
    return int(np.argmin(scores))


def expected_improvement(surrogate, candidates: np.ndarray, best_value: float,
                         xi: float = 0.0) -> np.ndarray:
    """Expected improvement (for minimization) of each candidate."""
    mean, std = surrogate.predict(candidates)
    std = np.maximum(std, 1e-12)
    improvement = best_value - xi - mean
    z = improvement / std
    return improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)


def lower_confidence_bound(surrogate, candidates: np.ndarray, kappa: float = 2.0) -> np.ndarray:
    """LCB scores (for minimization): ``mean - kappa * std``."""
    mean, std = surrogate.predict(candidates)
    return mean - kappa * std


# ------------------------------------------------------------------ protocols
@runtime_checkable
class Acquisition(Protocol):
    """Single-pick selection: index of the next candidate to evaluate."""

    def select(self, surrogate, candidates: np.ndarray, rng: np.random.Generator) -> int: ...


@runtime_checkable
class BatchAcquisition(Acquisition, Protocol):
    """Joint selection of up to ``q`` candidates for concurrent evaluation."""

    def select_batch(
        self, surrogate, candidates: np.ndarray, rng: np.random.Generator, q: int
    ) -> list[int]:
        """Up to ``q`` distinct candidate indices (fewer when the pool is
        smaller than ``q``)."""


# ---------------------------------------------------------------- strategies
@dataclass
class BatchThompsonSampling:
    """q independent Thompson draws; duplicates fall back to each draw's ranking."""

    num_samples: int = 1

    def select(self, surrogate, candidates: np.ndarray, rng: np.random.Generator) -> int:
        return thompson_sample(surrogate, candidates, rng, num_samples=self.num_samples)

    def select_batch(
        self, surrogate, candidates: np.ndarray, rng: np.random.Generator, q: int
    ) -> list[int]:
        q = min(q, len(candidates))
        if q == 1:
            return [self.select(surrogate, candidates, rng)]
        samples = surrogate.posterior_samples(candidates, q * self.num_samples, rng)
        picked: list[int] = []
        for group in range(q):
            scores = samples[group * self.num_samples : (group + 1) * self.num_samples].mean(axis=0)
            # A draw whose minimizer is already in the batch contributes its
            # next-best candidate instead, keeping the batch distinct.
            for index in np.argsort(scores, kind="stable"):
                if int(index) not in picked:
                    picked.append(int(index))
                    break
        return picked


@dataclass
class FantasizedThompson:
    """Greedy one-step constant liar through fantasized conditioning.

    Pick 1 is a plain Thompson draw (so ``q = 1`` is bit-for-bit classic
    Thompson sampling).  Each later pick conditions the surrogate — in closed
    form, via the rank-1 ``fantasize`` path — on "the *previous* pick came
    back censored at its posterior mean" and Thompson-samples the fantasized
    marginals.  The pseudo-observation lifts the posterior around the most
    recently picked basin, steering the next pick elsewhere.

    This is a local approximation of the full constant liar: the rank-1
    conditioning extends the Cholesky factor by one point, so only the
    latest pick's pseudo-observation is in effect for each scoring round.
    All earlier picks stay excluded exactly (their candidate indices are
    masked to ``inf``), but their *neighbourhoods* exert no repulsion.  For
    cumulative repulsion across the whole batch use
    :class:`BatchThompsonSampling`, whose q joint sample paths diversify
    wherever the posterior is uncertain.  Surrogates without a ``fantasize``
    path degrade to independent marginal draws.
    """

    num_samples: int = 1

    def select(self, surrogate, candidates: np.ndarray, rng: np.random.Generator) -> int:
        return thompson_sample(surrogate, candidates, rng, num_samples=self.num_samples)

    def select_batch(
        self, surrogate, candidates: np.ndarray, rng: np.random.Generator, q: int
    ) -> list[int]:
        q = min(q, len(candidates))
        picked = [self.select(surrogate, candidates, rng)]
        while len(picked) < q:
            anchor = candidates[picked[-1]]
            if hasattr(surrogate, "fantasize"):
                mean, _ = surrogate.predict(np.atleast_2d(anchor))
                means, stds = surrogate.fantasize(anchor, float(mean[0]), candidates)
            else:  # no fantasize path: plain marginal re-draw
                means, stds = surrogate.predict(candidates)
            draws = rng.standard_normal((self.num_samples, len(candidates)))
            scores = (means[None, :] + stds[None, :] * draws).mean(axis=0)
            scores[np.asarray(picked, dtype=int)] = np.inf
            picked.append(int(np.argmin(scores)))
        return picked
