"""Gaussian-process surrogates: exact GP and its censored-observation extension.

``ExactGP`` is a standard GP regressor with marginal-likelihood hyper-parameter
fitting.  ``CensoredGP`` layers the EM-style treatment of right-censored
observations (Hutter et al., which the paper builds on) on top of it: censored
responses are imputed with the truncated-normal mean under the current
posterior and the GP is refit, for a few iterations.  Both expose the same
interface the BO loop consumes: ``fit``, ``predict``, ``posterior_samples`` and
``fantasize`` (the cheap one-point conditioning used by the uncertainty-based
timeout rule).

The hot path is *incremental*: ``fit`` caches the unscaled squared-distance
matrix (re-scaled, not recomputed, during hyper-parameter optimization, which
runs L-BFGS on analytic marginal-likelihood gradients), ``add_observation``
extends the Cholesky factor with a rank-1 update in O(n^2), and
``fantasize``/``fantasize_batch`` condition on a hypothetical observation in
closed form instead of cloning and refitting the model.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg, optimize

from repro.bo.censored import truncated_normal_mean
from repro.bo.kernels import Kernel, Matern52Kernel, pairwise_sqdist
from repro.exceptions import ModelError

#: Jitter added to the noise variance to keep the covariance factorizable.
_JITTER = 1e-8


class ExactGP:
    """Exact GP regression with a Gaussian likelihood."""

    def __init__(self, kernel: Kernel | None = None, noise: float = 1e-2) -> None:
        self.kernel: Kernel = kernel or Matern52Kernel()
        self.noise = noise
        self._x: np.ndarray | None = None
        self._y_raw: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._sqdist: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    # ------------------------------------------------------------------ fitting
    def fit(self, x: np.ndarray, y: np.ndarray, optimize_hyperparameters: bool = True) -> "ExactGP":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if len(x) != len(y):
            raise ModelError("x and y must have the same number of rows")
        if len(x) == 0:
            raise ModelError("cannot fit a GP on zero observations")
        self._x = x
        self._y_raw = y.copy()
        self._standardize()
        self._sqdist = pairwise_sqdist(x, x)
        if optimize_hyperparameters and len(x) >= 3:
            self._optimize_hyperparameters()
        self._factorize()
        return self

    def _standardize(self) -> None:
        assert self._y_raw is not None
        self._y_mean = float(self._y_raw.mean())
        self._y_std = float(self._y_raw.std()) or 1.0
        self._y = (self._y_raw - self._y_mean) / self._y_std

    def _factorize(self) -> None:
        assert self._sqdist is not None and self._y is not None
        cov = self.kernel.from_sqdist(self._sqdist) + (self.noise + _JITTER) * np.eye(len(self._y))
        self._chol = linalg.cholesky(cov, lower=True)
        self._alpha = linalg.cho_solve((self._chol, True), self._y)

    def _negative_log_marginal(self, params: np.ndarray) -> tuple[float, np.ndarray]:
        """NLL of ``log(lengthscale, outputscale, noise)`` and its analytic gradient."""
        lengthscale, outputscale, noise = np.exp(params)
        kernel = self.kernel.with_params(lengthscale, outputscale)
        gram, grad_lengthscale = kernel.grad_from_sqdist(self._sqdist)
        n = len(self._y)
        cov = gram + (noise + _JITTER) * np.eye(n)
        try:
            chol = linalg.cholesky(cov, lower=True)
        except linalg.LinAlgError:
            return 1e10, np.zeros(3)
        alpha = linalg.cho_solve((chol, True), self._y)
        value = float(
            0.5 * self._y @ alpha
            + np.log(np.diag(chol)).sum()
            + 0.5 * n * np.log(2.0 * np.pi)
        )
        # dNLL/dtheta = 0.5 tr((K^-1 - alpha alpha^T) dK/dtheta); the inverse is
        # one extra cho_solve on the factorization we already have, which is far
        # cheaper than the 2x3 extra factorizations finite differencing needs.
        inner = linalg.cho_solve((chol, True), np.eye(n)) - np.outer(alpha, alpha)
        grad = np.array([
            0.5 * np.sum(inner * grad_lengthscale),
            0.5 * np.sum(inner * gram),  # dK/dlog outputscale == K
            0.5 * noise * np.trace(inner),
        ])
        return value, grad

    def _optimize_hyperparameters(self) -> None:
        initial = np.log([self.kernel.lengthscale, self.kernel.outputscale, self.noise])
        result = optimize.minimize(
            self._negative_log_marginal,
            initial,
            method="L-BFGS-B",
            jac=True,
            bounds=[(-3.0, 3.0), (-4.0, 4.0), (-8.0, 1.0)],
            options={"maxiter": 40},
        )
        lengthscale, outputscale, noise = np.exp(result.x)
        self.kernel = self.kernel.with_params(float(lengthscale), float(outputscale))
        self.noise = float(noise)

    # ------------------------------------------------------------------ incremental updates
    def update_targets(self, y: np.ndarray) -> "ExactGP":
        """Replace the responses, reusing the cached Cholesky factor.

        The Gram matrix depends only on the inputs and hyper-parameters, so
        re-fitting with new ``y`` (the censored-EM imputation step) is just a
        re-standardization plus one O(n^2) triangular solve.
        """
        self._require_fit()
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if len(y) != len(self._x):
            raise ModelError("y must match the number of fitted observations")
        self._y_raw = y.copy()
        self._standardize()
        self._alpha = linalg.cho_solve((self._chol, True), self._y)
        return self

    def add_observation(self, x: np.ndarray, value: float) -> "ExactGP":
        """Condition on one new observation with a rank-1 Cholesky update.

        O(n^2) instead of the O(n^3) full refit, and numerically identical to
        ``fit`` on the augmented dataset with the current hyper-parameters
        (block-Cholesky identity).  Hyper-parameters are left untouched; the
        caller decides when a full refit is worth it.
        """
        self._require_fit()
        x = np.asarray(x, dtype=np.float64).reshape(1, -1)
        if x.shape[1] != self._x.shape[1]:
            raise ModelError(f"point has dimension {x.shape[1]}, expected {self._x.shape[1]}")
        n = len(self._x)
        cross_sq = pairwise_sqdist(self._x, x)
        sqdist = np.empty((n + 1, n + 1))
        sqdist[:n, :n] = self._sqdist
        sqdist[:n, n] = sqdist[n, :n] = cross_sq.ravel()
        sqdist[n, n] = 0.0
        self._sqdist = sqdist
        self._x = np.vstack([self._x, x])
        self._y_raw = np.append(self._y_raw, float(value))
        self._standardize()
        row = self.kernel.from_sqdist(cross_sq).ravel()
        l12 = linalg.solve_triangular(self._chol, row, lower=True)
        pivot = float(self.kernel.diag(x)[0]) + self.noise + _JITTER - l12 @ l12
        if pivot <= 1e-10:
            # Near-duplicate point: the extended factor would be numerically
            # rank-deficient, so fall back to a fresh factorization.
            self._factorize()
            return self
        chol = np.zeros((n + 1, n + 1))
        chol[:n, :n] = self._chol
        chol[n, :n] = l12
        chol[n, n] = np.sqrt(pivot)
        self._chol = chol
        self._alpha = linalg.cho_solve((self._chol, True), self._y)
        return self

    # ------------------------------------------------------------------ inference
    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation (in the original y units)."""
        self._require_fit()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        cross = self.kernel(x, self._x)
        mean = cross @ self._alpha
        v = linalg.solve_triangular(self._chol, cross.T, lower=True)
        var = self.kernel.diag(x) - np.sum(v**2, axis=0)
        var = np.maximum(var, 1e-12)
        return mean * self._y_std + self._y_mean, np.sqrt(var) * self._y_std

    def posterior_samples(self, x: np.ndarray, count: int, rng: np.random.Generator,
                          jitter: float = 1e-8) -> np.ndarray:
        """Joint posterior samples at ``x`` (shape ``(count, len(x))``)."""
        self._require_fit()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        cross = self.kernel(x, self._x)
        mean = cross @ self._alpha
        v = linalg.solve_triangular(self._chol, cross.T, lower=True)
        cov = self.kernel(x, x) - v.T @ v
        cov += jitter * np.eye(len(x))
        try:
            chol = linalg.cholesky(cov, lower=True)
        except linalg.LinAlgError:
            chol = np.diag(np.sqrt(np.maximum(np.diag(cov), 1e-12)))
        draws = rng.standard_normal((count, len(x)))
        samples = mean[None, :] + draws @ chol.T
        return samples * self._y_std + self._y_mean

    def fantasize(self, x_new: np.ndarray, y_new: float, x_query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior at ``x_query`` after conditioning on one extra observation.

        Used by the uncertainty-based timeout rule: "if this plan were censored
        at tau, what would we believe about it?"
        """
        means, stds = self.fantasize_batch(x_new, np.array([y_new]), x_query)
        return means[0], stds[0]

    def fantasize_batch(
        self, x_new: np.ndarray, y_values: np.ndarray, x_query: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior at ``x_query`` conditioned on ``(x_new, y)`` for each ``y``.

        Equivalent to refitting on the augmented dataset once per value (the
        old clone-and-refit path), but the extended Cholesky factor depends
        only on ``x_new``, so one rank-1 extension is shared by the whole
        batch: O(n^2 (B + Q)) for B values and Q query points instead of
        O(B n^3).  Returns arrays of shape ``(B, Q)``.
        """
        self._require_fit()
        x_new = np.asarray(x_new, dtype=np.float64).reshape(1, -1)
        y_values = np.asarray(y_values, dtype=np.float64).reshape(-1)
        x_query = np.atleast_2d(np.asarray(x_query, dtype=np.float64))
        n = len(self._x)
        row = self.kernel(x_new, self._x).ravel()
        l12 = linalg.solve_triangular(self._chol, row, lower=True)
        pivot = float(self.kernel.diag(x_new)[0]) + self.noise + _JITTER - l12 @ l12
        chol = np.zeros((n + 1, n + 1))
        chol[:n, :n] = self._chol
        chol[n, :n] = l12
        chol[n, n] = np.sqrt(max(pivot, 1e-10))
        x_aug = np.vstack([self._x, x_new])
        # Each fantasized value re-standardizes the augmented responses, exactly
        # as a refit would (the predictive std scales with std(y)).
        y_aug = np.concatenate(
            [np.broadcast_to(self._y_raw, (len(y_values), n)), y_values[:, None]], axis=1
        )
        center = y_aug.mean(axis=1)
        scale = y_aug.std(axis=1)
        scale = np.where(scale == 0.0, 1.0, scale)
        normalized = (y_aug - center[:, None]) / scale[:, None]
        alpha = linalg.cho_solve((chol, True), normalized.T)  # (n+1, B)
        cross = self.kernel(x_query, x_aug)  # (Q, n+1)
        means = (cross @ alpha).T * scale[:, None] + center[:, None]
        v = linalg.solve_triangular(chol, cross.T, lower=True)
        var = np.maximum(self.kernel.diag(x_query) - np.sum(v**2, axis=0), 1e-12)
        stds = np.sqrt(var)[None, :] * scale[:, None]
        return means, stds

    def _require_fit(self) -> None:
        if self._x is None or self._chol is None:
            raise ModelError("the GP has not been fit yet")

    @property
    def num_observations(self) -> int:
        return 0 if self._x is None else len(self._x)


class CensoredGP:
    """Exact GP with EM-style handling of right-censored observations.

    Censored responses are replaced by their truncated-normal conditional mean
    under the current posterior and the GP is refit; a few iterations suffice
    for the imputations to stabilize.  ``add_observation`` is the warm-path
    shortcut: the new point is pushed into the fitted GP with a rank-1 update,
    imputing a censored response with a single EM step under the cached
    posterior (the periodic full ``fit`` re-runs the complete EM loop).
    """

    def __init__(self, kernel: Kernel | None = None, noise: float = 1e-2, em_iterations: int = 3) -> None:
        self.gp = ExactGP(kernel=kernel, noise=noise)
        self.em_iterations = em_iterations
        self._censored: np.ndarray | None = None
        self._values: np.ndarray | None = None
        self._x: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray, censored: np.ndarray) -> "CensoredGP":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        censored = np.asarray(censored, dtype=bool).reshape(-1)
        if not (len(x) == len(y) == len(censored)):
            raise ModelError("x, y and censored must have matching lengths")
        self._x, self._values, self._censored = x, y, censored
        imputed = y.copy()
        self.gp.fit(x, imputed)
        if not censored.any():
            return self
        for _ in range(self.em_iterations):
            mean, std = self.gp.predict(x[censored])
            imputed[censored] = truncated_normal_mean(mean, std, y[censored])
            # Only the responses change between EM steps: reuse the cached
            # factorization instead of refitting from scratch.
            self.gp.update_targets(imputed)
        return self

    def add_observation(self, x: np.ndarray, value: float, censored: bool = False) -> "CensoredGP":
        """Warm update: condition the fitted GP on one new observation in O(n^2)."""
        x = np.asarray(x, dtype=np.float64).reshape(1, -1)
        value = float(value)
        if self._x is None:
            return self.fit(x, np.array([value]), np.array([censored]))
        imputed = value
        if censored:
            mean, std = self.gp.predict(x)
            imputed = float(truncated_normal_mean(mean, std, np.array([value]))[0])
        self._x = np.vstack([self._x, x])
        self._values = np.append(self._values, value)
        self._censored = np.append(self._censored, bool(censored))
        self.gp.add_observation(x[0], imputed)
        return self

    # Delegation -------------------------------------------------------------
    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.gp.predict(x)

    def posterior_samples(self, x: np.ndarray, count: int, rng: np.random.Generator) -> np.ndarray:
        return self.gp.posterior_samples(x, count, rng)

    def fantasize(self, x_new: np.ndarray, censor_level: float, x_query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Condition on "x_new was censored at censor_level" and predict at x_query."""
        means, stds = self.fantasize_batch(x_new, np.array([censor_level]), x_query)
        return means[0], stds[0]

    def fantasize_batch(
        self, x_new: np.ndarray, censor_levels: np.ndarray, x_query: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched ``fantasize``: one closed-form conditioning for all levels.

        The timeout rule probes many censoring levels for the *same* candidate;
        the imputations all derive from one posterior evaluation at ``x_new``
        and the conditioning shares one extended Cholesky factor.
        """
        censor_levels = np.asarray(censor_levels, dtype=np.float64).reshape(-1)
        mean, std = self.gp.predict(np.atleast_2d(x_new))
        imputed = truncated_normal_mean(
            np.full(len(censor_levels), mean[0]), np.full(len(censor_levels), std[0]), censor_levels
        )
        return self.gp.fantasize_batch(x_new, imputed, x_query)

    @property
    def num_observations(self) -> int:
        return self.gp.num_observations

    @property
    def num_censored(self) -> int:
        return 0 if self._censored is None else int(self._censored.sum())
