"""Gaussian-process surrogates: exact GP and its censored-observation extension.

``ExactGP`` is a standard GP regressor with marginal-likelihood hyper-parameter
fitting.  ``CensoredGP`` layers the EM-style treatment of right-censored
observations (Hutter et al., which the paper builds on) on top of it: censored
responses are imputed with the truncated-normal mean under the current
posterior and the GP is refit, for a few iterations.  Both expose the same
interface the BO loop consumes: ``fit``, ``predict``, ``posterior_samples`` and
``fantasize`` (the cheap one-point conditioning used by the uncertainty-based
timeout rule).
"""

from __future__ import annotations

import numpy as np
from scipy import linalg, optimize

from repro.bo.censored import truncated_normal_mean
from repro.bo.kernels import Kernel, Matern52Kernel
from repro.exceptions import ModelError


class ExactGP:
    """Exact GP regression with a Gaussian likelihood."""

    def __init__(self, kernel: Kernel | None = None, noise: float = 1e-2) -> None:
        self.kernel: Kernel = kernel or Matern52Kernel()
        self.noise = noise
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    # ------------------------------------------------------------------ fitting
    def fit(self, x: np.ndarray, y: np.ndarray, optimize_hyperparameters: bool = True) -> "ExactGP":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if len(x) != len(y):
            raise ModelError("x and y must have the same number of rows")
        if len(x) == 0:
            raise ModelError("cannot fit a GP on zero observations")
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        self._x = x
        self._y = (y - self._y_mean) / self._y_std
        if optimize_hyperparameters and len(x) >= 3:
            self._optimize_hyperparameters()
        self._factorize()
        return self

    def _factorize(self) -> None:
        assert self._x is not None and self._y is not None
        cov = self.kernel(self._x, self._x) + (self.noise + 1e-8) * np.eye(len(self._x))
        self._chol = linalg.cholesky(cov, lower=True)
        self._alpha = linalg.cho_solve((self._chol, True), self._y)

    def _negative_log_marginal(self, params: np.ndarray) -> float:
        lengthscale, outputscale, noise = np.exp(params)
        kernel = self.kernel.with_params(lengthscale, outputscale)
        cov = kernel(self._x, self._x) + (noise + 1e-8) * np.eye(len(self._x))
        try:
            chol = linalg.cholesky(cov, lower=True)
        except linalg.LinAlgError:
            return 1e10
        alpha = linalg.cho_solve((chol, True), self._y)
        return float(
            0.5 * self._y @ alpha
            + np.log(np.diag(chol)).sum()
            + 0.5 * len(self._y) * np.log(2.0 * np.pi)
        )

    def _optimize_hyperparameters(self) -> None:
        initial = np.log([self.kernel.lengthscale, self.kernel.outputscale, self.noise])
        result = optimize.minimize(
            self._negative_log_marginal,
            initial,
            method="L-BFGS-B",
            bounds=[(-3.0, 3.0), (-4.0, 4.0), (-8.0, 1.0)],
            options={"maxiter": 40},
        )
        lengthscale, outputscale, noise = np.exp(result.x)
        self.kernel = self.kernel.with_params(float(lengthscale), float(outputscale))
        self.noise = float(noise)

    # ------------------------------------------------------------------ inference
    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation (in the original y units)."""
        self._require_fit()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        cross = self.kernel(x, self._x)
        mean = cross @ self._alpha
        v = linalg.solve_triangular(self._chol, cross.T, lower=True)
        var = self.kernel.diag(x) - np.sum(v**2, axis=0)
        var = np.maximum(var, 1e-12)
        return mean * self._y_std + self._y_mean, np.sqrt(var) * self._y_std

    def posterior_samples(self, x: np.ndarray, count: int, rng: np.random.Generator,
                          jitter: float = 1e-8) -> np.ndarray:
        """Joint posterior samples at ``x`` (shape ``(count, len(x))``)."""
        self._require_fit()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        cross = self.kernel(x, self._x)
        mean = cross @ self._alpha
        v = linalg.solve_triangular(self._chol, cross.T, lower=True)
        cov = self.kernel(x, x) - v.T @ v
        cov += jitter * np.eye(len(x))
        try:
            chol = linalg.cholesky(cov, lower=True)
        except linalg.LinAlgError:
            chol = np.diag(np.sqrt(np.maximum(np.diag(cov), 1e-12)))
        draws = rng.standard_normal((count, len(x)))
        samples = mean[None, :] + draws @ chol.T
        return samples * self._y_std + self._y_mean

    def fantasize(self, x_new: np.ndarray, y_new: float, x_query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior at ``x_query`` after conditioning on one extra observation.

        Used by the uncertainty-based timeout rule: "if this plan were censored
        at tau, what would we believe about it?"
        """
        self._require_fit()
        x = np.vstack([self._x, np.atleast_2d(x_new)])
        y = np.concatenate([self._y * self._y_std + self._y_mean, [y_new]])
        clone = ExactGP(kernel=self.kernel, noise=self.noise)
        clone.fit(x, y, optimize_hyperparameters=False)
        return clone.predict(x_query)

    def _require_fit(self) -> None:
        if self._x is None or self._chol is None:
            raise ModelError("the GP has not been fit yet")

    @property
    def num_observations(self) -> int:
        return 0 if self._x is None else len(self._x)


class CensoredGP:
    """Exact GP with EM-style handling of right-censored observations.

    Censored responses are replaced by their truncated-normal conditional mean
    under the current posterior and the GP is refit; a few iterations suffice
    for the imputations to stabilize.
    """

    def __init__(self, kernel: Kernel | None = None, noise: float = 1e-2, em_iterations: int = 3) -> None:
        self.gp = ExactGP(kernel=kernel, noise=noise)
        self.em_iterations = em_iterations
        self._censored: np.ndarray | None = None
        self._values: np.ndarray | None = None
        self._x: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray, censored: np.ndarray) -> "CensoredGP":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        censored = np.asarray(censored, dtype=bool).reshape(-1)
        if not (len(x) == len(y) == len(censored)):
            raise ModelError("x, y and censored must have matching lengths")
        self._x, self._values, self._censored = x, y, censored
        imputed = y.copy()
        self.gp.fit(x, imputed)
        if not censored.any():
            return self
        for _ in range(self.em_iterations):
            mean, std = self.gp.predict(x[censored])
            imputed[censored] = truncated_normal_mean(mean, std, y[censored])
            self.gp.fit(x, imputed, optimize_hyperparameters=False)
        return self

    # Delegation -------------------------------------------------------------
    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.gp.predict(x)

    def posterior_samples(self, x: np.ndarray, count: int, rng: np.random.Generator) -> np.ndarray:
        return self.gp.posterior_samples(x, count, rng)

    def fantasize(self, x_new: np.ndarray, censor_level: float, x_query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Condition on "x_new was censored at censor_level" and predict at x_query."""
        mean, std = self.gp.predict(np.atleast_2d(x_new))
        imputed = float(truncated_normal_mean(mean, std, np.array([censor_level]))[0])
        return self.gp.fantasize(x_new, imputed, x_query)

    @property
    def num_observations(self) -> int:
        return self.gp.num_observations

    @property
    def num_censored(self) -> int:
        return 0 if self._censored is None else int(self._censored.sum())
