"""TuRBO-style trust regions for local Bayesian optimization.

Despite the name, trust-region BO is a *global* optimization scheme (paper
footnote 4): the trust region is re-centered on the incumbent, expanded after
consecutive successes, shrunk after consecutive failures and restarted when it
collapses, which lets the search exploit locally while still escaping to new
regions over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TrustRegion:
    """State machine controlling the local search box (Eriksson et al., 2019)."""

    dim: int
    length: float = 0.8
    length_min: float = 0.5**7
    length_max: float = 1.6
    success_tolerance: int = 3
    failure_tolerance: int = 0
    success_count: int = 0
    failure_count: int = 0
    restarts: int = 0
    history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.failure_tolerance <= 0:
            self.failure_tolerance = max(5, self.dim)

    # ------------------------------------------------------------------ updates
    def update(self, improved: bool) -> None:
        """Record whether the latest evaluation improved the incumbent."""
        if improved:
            self.success_count += 1
            self.failure_count = 0
        else:
            self.failure_count += 1
            self.success_count = 0
        if self.success_count >= self.success_tolerance:
            self.length = min(self.length * 2.0, self.length_max)
            self.success_count = 0
        elif self.failure_count >= self.failure_tolerance:
            self.length = max(self.length / 2.0, 0.0)
            self.failure_count = 0
        self.history.append(self.length)
        if self.length < self.length_min:
            self.restart()

    def restart(self) -> None:
        """Collapse detected: reset the region to its initial size."""
        self.length = 0.8
        self.success_count = 0
        self.failure_count = 0
        self.restarts += 1

    # ------------------------------------------------------------------ candidate generation
    def candidates(
        self,
        center: np.ndarray,
        count: int,
        rng: np.random.Generator,
        perturbation_probability: float | None = None,
    ) -> np.ndarray:
        """Candidate points in the normalized unit cube around ``center``.

        Each candidate perturbs a random subset of dimensions (probability
        ``min(1, 20/dim)`` by default, as in TuRBO) uniformly within the trust
        region, leaving the remaining coordinates at the incumbent's value.
        """
        center = np.clip(np.asarray(center, dtype=np.float64), 0.0, 1.0)
        if perturbation_probability is None:
            perturbation_probability = min(1.0, 20.0 / max(self.dim, 1))
        half = self.length / 2.0
        lower = np.clip(center - half, 0.0, 1.0)
        upper = np.clip(center + half, 0.0, 1.0)
        samples = rng.uniform(lower, upper, size=(count, self.dim))
        mask = rng.random((count, self.dim)) < perturbation_probability
        # Guarantee at least one perturbed dimension per candidate.
        empty = ~mask.any(axis=1)
        if empty.any():
            forced = rng.integers(0, self.dim, size=int(empty.sum()))
            mask[np.flatnonzero(empty), forced] = True
        return np.where(mask, samples, center[None, :])


def global_candidates(dim: int, count: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform candidates over the whole normalized cube (the "no trust region" ablation)."""
    return rng.random((count, dim))
