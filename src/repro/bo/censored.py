"""Right-censored (Tobit) observation utilities.

A timed-out query plan is a right-censored observation: we only learn that its
latency exceeds the applied timeout (paper Section 4.3).  This module collects
the Tobit likelihood pieces shared by the surrogates:

* the censored log-likelihood ``log phi(z)^(1-I) (1 - Phi(z))^I``,
* the truncated-normal mean used by the EM-style imputation of Hutter et al.,
* Gauss-Hermite quadrature of ``E_q [log(1 - Phi(z))]`` and its derivatives,
  used by the censored SVGP ELBO of Section 4.3.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special, stats


@dataclass(frozen=True)
class Observation:
    """One (input, response) pair; ``censored`` means ``value`` is a lower bound."""

    x: np.ndarray
    value: float
    censored: bool = False


def tobit_log_likelihood(
    values: np.ndarray, censored: np.ndarray, mean: np.ndarray, std: np.ndarray
) -> float:
    """Total Tobit log-likelihood of observations under N(mean, std^2).

    Uncensored points contribute the Gaussian density; censored points
    contribute the survival function ``1 - Phi``.
    """
    std = np.maximum(std, 1e-9)
    z = (values - mean) / std
    uncensored = ~censored
    total = 0.0
    if uncensored.any():
        total += float(np.sum(stats.norm.logpdf(values[uncensored], mean[uncensored], std[uncensored])))
    if censored.any():
        total += float(np.sum(stats.norm.logsf(z[censored])))
    return total


def truncated_normal_mean(mu: np.ndarray, sigma: np.ndarray, lower: np.ndarray) -> np.ndarray:
    """E[Y | Y >= lower] for Y ~ N(mu, sigma^2) (the EM imputation target)."""
    sigma = np.maximum(np.asarray(sigma, dtype=np.float64), 1e-9)
    alpha = (np.asarray(lower, dtype=np.float64) - mu) / sigma
    # Hazard (inverse Mills ratio), computed stably through the log survival function.
    with np.errstate(invalid="ignore", over="ignore"):
        hazard = np.exp(stats.norm.logpdf(alpha) - stats.norm.logsf(alpha))
    # Far in the upper tail the ratio overflows; use the asymptotic hazard ~ alpha.
    asymptotic = np.maximum(alpha, 0.0) + 1.0 / np.maximum(np.abs(alpha), 1.0)
    hazard = np.where(np.isfinite(hazard), hazard, asymptotic)
    return mu + sigma * hazard


def gauss_hermite_points(order: int = 20) -> tuple[np.ndarray, np.ndarray]:
    """Gauss-Hermite nodes/weights rescaled for Gaussian expectations."""
    nodes, weights = special.roots_hermite(order)
    return nodes * np.sqrt(2.0), weights / np.sqrt(np.pi)


def expected_log_survival(
    mu: np.ndarray, var: np.ndarray, threshold: np.ndarray, noise_std: float, order: int = 20
) -> np.ndarray:
    """``E_{f ~ N(mu, var)}[log(1 - Phi((threshold - f)/noise_std))]`` by quadrature.

    This is the censored term of the SVGP ELBO (Section 4.3.1).
    """
    nodes, weights = gauss_hermite_points(order)
    std = np.sqrt(np.maximum(var, 1e-12))
    f = mu[:, None] + std[:, None] * nodes[None, :]
    z = (threshold[:, None] - f) / max(noise_std, 1e-9)
    log_sf = stats.norm.logsf(z)
    return log_sf @ weights


def expected_log_density(
    mu: np.ndarray, var: np.ndarray, value: np.ndarray, noise_std: float
) -> np.ndarray:
    """``E_{f ~ N(mu, var)}[log N(value; f, noise_std^2)]`` in closed form."""
    noise_var = max(noise_std, 1e-9) ** 2
    return (
        -0.5 * np.log(2.0 * np.pi * noise_var)
        - 0.5 * ((value - mu) ** 2 + np.maximum(var, 0.0)) / noise_var
    )


def censored_elbo_terms(
    mu: np.ndarray,
    var: np.ndarray,
    values: np.ndarray,
    censored: np.ndarray,
    noise_std: float,
    order: int = 20,
) -> float:
    """Expected log-likelihood part of the censored SVGP ELBO.

    Splits observations into uncensored (analytic Gaussian expectation) and
    censored (Gauss-Hermite quadrature of the log survival function), exactly
    as the derivation in the paper does.
    """
    total = 0.0
    uncensored = ~censored
    if uncensored.any():
        total += float(
            np.sum(expected_log_density(mu[uncensored], var[uncensored], values[uncensored], noise_std))
        )
    if censored.any():
        total += float(
            np.sum(
                expected_log_survival(
                    mu[censored], var[censored], values[censored], noise_std, order=order
                )
            )
        )
    return total
