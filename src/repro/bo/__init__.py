"""Bayesian-optimization substrate: kernels, GPs, censored likelihoods, TuRBO.

Surrogate-state lifecycle
-------------------------

The surrogate inside :class:`BOEngine` is *persistent and warm*: it is not
rebuilt on every observation.  The lifecycle has two tiers:

1. **Warm updates** (every observation).  ``BOEngine.fit`` pushes each new
   point into the already-fitted model via ``CensoredGP.add_observation``,
   which extends the cached Cholesky factor with a rank-1 update in O(n^2)
   (``ExactGP.add_observation``).  A censored response is imputed with a
   single EM step under the cached posterior — the truncated-normal mean given
   the current factorization — rather than re-running the full EM loop.
   Hyper-parameters are frozen during warm updates.

2. **Full refits** (every ``refit_every``-th observation, on the first fit, on
   ``fit(force=True)``, and always for the SVGP surrogate, which has no
   incremental path).  A fresh surrogate is fitted from scratch: the unscaled
   pairwise squared-distance matrix is computed once and cached, L-BFGS
   re-optimizes the kernel hyper-parameters on analytic marginal-likelihood
   gradients (re-scaling the cached distances instead of recomputing Gram
   matrices), and the complete censored-EM loop re-imputes every censored
   observation.

``refit_every`` therefore bounds hyper-parameter staleness: ``1`` recovers the
old refit-from-scratch-per-observation behavior, larger values amortize the
O(n^3) fit over cheap warm updates.  Fantasized conditioning (the
uncertainty-timeout rule) never refits at all: ``fantasize``/``fantasize_batch``
condition on hypothetical censored observations in closed form against the
cached factorization, sharing one rank-1 extension across all probed levels.
"""

from repro.bo.acquisition import (
    Acquisition,
    BatchAcquisition,
    BatchThompsonSampling,
    FantasizedThompson,
    expected_improvement,
    lower_confidence_bound,
    thompson_sample,
)
from repro.bo.candidates import CandidateGenerator, GlobalCandidates, TrustRegionCandidates
from repro.bo.surrogate import BatchFantasizeSurrogate, IncrementalSurrogate, Surrogate
from repro.bo.censored import (
    Observation,
    censored_elbo_terms,
    expected_log_survival,
    tobit_log_likelihood,
    truncated_normal_mean,
)
from repro.bo.gp import CensoredGP, ExactGP
from repro.bo.kernels import Matern52Kernel, RBFKernel, pairwise_sqdist
from repro.bo.loop import BOEngine, BOEngineConfig
from repro.bo.svgp import CensoredSVGP, SVGPConfig
from repro.bo.turbo import TrustRegion, global_candidates

__all__ = [
    "Acquisition",
    "BatchAcquisition",
    "BatchFantasizeSurrogate",
    "BatchThompsonSampling",
    "BOEngine",
    "BOEngineConfig",
    "CandidateGenerator",
    "CensoredGP",
    "CensoredSVGP",
    "ExactGP",
    "FantasizedThompson",
    "GlobalCandidates",
    "IncrementalSurrogate",
    "Matern52Kernel",
    "Observation",
    "RBFKernel",
    "SVGPConfig",
    "Surrogate",
    "TrustRegion",
    "TrustRegionCandidates",
    "censored_elbo_terms",
    "expected_improvement",
    "expected_log_survival",
    "global_candidates",
    "lower_confidence_bound",
    "pairwise_sqdist",
    "thompson_sample",
    "tobit_log_likelihood",
    "truncated_normal_mean",
]
