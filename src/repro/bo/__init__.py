"""Bayesian-optimization substrate: kernels, GPs, censored likelihoods, TuRBO."""

from repro.bo.acquisition import expected_improvement, lower_confidence_bound, thompson_sample
from repro.bo.censored import (
    Observation,
    censored_elbo_terms,
    expected_log_survival,
    tobit_log_likelihood,
    truncated_normal_mean,
)
from repro.bo.gp import CensoredGP, ExactGP
from repro.bo.kernels import Matern52Kernel, RBFKernel
from repro.bo.loop import BOEngine, BOEngineConfig
from repro.bo.svgp import CensoredSVGP, SVGPConfig
from repro.bo.turbo import TrustRegion, global_candidates

__all__ = [
    "BOEngine",
    "BOEngineConfig",
    "CensoredGP",
    "CensoredSVGP",
    "ExactGP",
    "Matern52Kernel",
    "Observation",
    "RBFKernel",
    "SVGPConfig",
    "TrustRegion",
    "censored_elbo_terms",
    "expected_improvement",
    "expected_log_survival",
    "global_candidates",
    "lower_confidence_bound",
    "thompson_sample",
    "tobit_log_likelihood",
    "truncated_normal_mean",
]
