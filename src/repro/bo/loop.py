"""The latent-space BO engine: composed surrogate + candidates + acquisition.

``BOEngine`` is the reusable optimization core that BayesQO drives.  It is
deliberately agnostic of query plans: it minimizes a scalar objective over a
box-bounded continuous domain, supports right-censored observations, and
exposes the fantasized-conditioning hook the uncertainty-based timeout rule
needs.  BayesQO maps plans to latent vectors and latencies to (log) objective
values before handing them to this engine.

The engine is an explicit composition of three layers, each behind its own
contract:

* **surrogate** (:mod:`repro.bo.surrogate`) — the probabilistic model;
  ``censored_gp`` or ``svgp``, probed for incremental-update and
  batched-fantasize capabilities by protocol ``isinstance`` checks,
* **candidate generation** (:mod:`repro.bo.candidates`) — trust-region
  perturbation around the incumbent or uniform global sampling,
* **acquisition** (:mod:`repro.bo.acquisition`) — Thompson sampling for
  single proposals; :meth:`BOEngine.suggest_batch` picks ``q`` jointly
  informative candidates via fantasized constant-liar conditioning (or q
  independent posterior draws), never q argmins of the same posterior mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bo.acquisition import (
    BatchAcquisition,
    BatchThompsonSampling,
    FantasizedThompson,
)
from repro.bo.candidates import CandidateGenerator, GlobalCandidates, TrustRegionCandidates
from repro.bo.gp import CensoredGP
from repro.bo.surrogate import BatchFantasizeSurrogate, IncrementalSurrogate, Surrogate
from repro.bo.svgp import CensoredSVGP, SVGPConfig
from repro.bo.turbo import TrustRegion
from repro.exceptions import OptimizationError
from repro.obs.tracer import NULL_TRACER

#: Names of the supported surrogate models.
SURROGATES = ("svgp", "censored_gp")
#: Batched-acquisition strategies for ``suggest_batch``.
BATCH_STRATEGIES = ("fantasize", "thompson")


@dataclass
class BOEngineConfig:
    """Knobs of the BO engine."""

    surrogate: str = "censored_gp"
    use_trust_region: bool = True
    num_candidates: int = 256
    thompson_samples: int = 1
    #: Full (hyper-parameter) refit cadence.  Between full refits, new
    #: observations are pushed into the warm surrogate with O(n^2) incremental
    #: updates; ``refit_every=1`` disables the warm path entirely.
    refit_every: int = 5
    #: How ``suggest_batch`` spreads q concurrent picks: ``"fantasize"``
    #: (constant-liar conditioning through the surrogate's rank-1 fantasize
    #: path) or ``"thompson"`` (q independent posterior sample paths).
    batch_strategy: str = "fantasize"
    svgp: SVGPConfig | None = None

    def __post_init__(self) -> None:
        if self.surrogate not in SURROGATES:
            raise OptimizationError(f"unknown surrogate {self.surrogate!r}; pick one of {SURROGATES}")
        if self.refit_every < 1:
            raise OptimizationError("refit_every must be at least 1")
        if self.batch_strategy not in BATCH_STRATEGIES:
            raise OptimizationError(
                f"unknown batch strategy {self.batch_strategy!r}; pick one of {BATCH_STRATEGIES}"
            )
        if self.svgp is not None and self.surrogate != "svgp":
            raise OptimizationError(
                f"svgp sub-config given but surrogate is {self.surrogate!r}; "
                'it only applies to surrogate="svgp"'
            )


class BOEngine:
    """Box-bounded minimization with censored observations."""

    def __init__(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        config: BOEngineConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.lower = np.asarray(lower, dtype=np.float64)
        self.upper = np.asarray(upper, dtype=np.float64)
        if self.lower.shape != self.upper.shape or (self.upper <= self.lower).any():
            raise OptimizationError("invalid search bounds")
        self.config = config or BOEngineConfig()
        self.rng = np.random.default_rng(seed)
        self.dim = len(self.lower)
        self.trust_region = TrustRegion(dim=self.dim)
        # The composed layers: generators read engine state (trust region),
        # the acquisition strategy is stateless.
        self._local_candidates: CandidateGenerator = TrustRegionCandidates(self.trust_region)
        self._global_candidates: CandidateGenerator = GlobalCandidates(self.dim)
        self._acquisition: BatchAcquisition = (
            FantasizedThompson(num_samples=self.config.thompson_samples)
            if self.config.batch_strategy == "fantasize"
            else BatchThompsonSampling(num_samples=self.config.thompson_samples)
        )
        self._x: list[np.ndarray] = []
        self._y: list[float] = []
        self._censored: list[bool] = []
        self._surrogate = None
        #: How many of the recorded observations the surrogate has seen.
        self._num_in_surrogate = 0
        #: Observations absorbed incrementally since the last full refit.
        self._observations_since_refit = 0
        #: Observability hook (explicit propagation — set by whoever drives
        #: the engine; see :mod:`repro.obs`).  Never pickled: engines ride
        #: inside checkpointed optimizer states and plan stores, and a live
        #: span buffer has no business there.
        self.tracer = NULL_TRACER

    def __getstate__(self):
        state = self.__dict__.copy()
        state["tracer"] = NULL_TRACER
        return state

    # ------------------------------------------------------------------ data handling
    def _normalize(self, x: np.ndarray) -> np.ndarray:
        return (np.atleast_2d(x) - self.lower) / (self.upper - self.lower)

    def _denormalize(self, x: np.ndarray) -> np.ndarray:
        return np.atleast_2d(x) * (self.upper - self.lower) + self.lower

    def add_observation(
        self, x: np.ndarray, value: float, censored: bool = False, update_trust_region: bool = True
    ) -> None:
        """Record one evaluated point; updates the trust region state.

        Pass ``update_trust_region=False`` for replayed observations (e.g. a
        duplicate plan whose cached latency is fed back to the surrogate): a
        replay spent no budget and says nothing new about local progress, so it
        must not count as a trust-region success or failure.
        """
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        if x.shape != self.lower.shape:
            raise OptimizationError(f"point has dimension {len(x)}, expected {self.dim}")
        previous_best = self.best_value()
        self._x.append(x)
        self._y.append(float(value))
        self._censored.append(bool(censored))
        improved = (not censored) and (previous_best is None or value < previous_best)
        if update_trust_region and len(self._y) > 1:
            self.trust_region.update(improved)

    @property
    def num_observations(self) -> int:
        return len(self._y)

    def observations(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            np.asarray(self._x, dtype=np.float64),
            np.asarray(self._y, dtype=np.float64),
            np.asarray(self._censored, dtype=bool),
        )

    def best_value(self) -> float | None:
        """Best (lowest) uncensored objective value seen so far."""
        values = [y for y, c in zip(self._y, self._censored) if not c]
        return min(values) if values else None

    def best_point(self) -> np.ndarray | None:
        best, best_x = None, None
        for x, y, censored in zip(self._x, self._y, self._censored):
            if censored:
                continue
            if best is None or y < best:
                best, best_x = y, x
        return best_x

    # ------------------------------------------------------------------ surrogate
    def _build_surrogate(self) -> Surrogate:
        if self.config.surrogate == "svgp":
            return CensoredSVGP(config=self.config.svgp or SVGPConfig())
        return CensoredGP()

    def fit(self, force: bool = False) -> None:
        """Bring the surrogate up to date with all recorded observations.

        The surrogate is kept *warm* between iterations: new observations are
        pushed into the fitted model with O(n^2) incremental updates, and a
        full from-scratch refit (with hyper-parameter optimization and the
        complete censored-EM loop) only happens every
        ``config.refit_every`` observations, on the first fit, on ``force``,
        or for surrogates without an incremental path (the SVGP).
        """
        if self.num_observations == 0:
            raise OptimizationError("cannot fit the surrogate with no observations")
        pending = self.num_observations - self._num_in_surrogate
        if not force and self._surrogate is not None and pending == 0:
            return
        incremental = (
            not force
            and pending > 0
            and self._surrogate is not None
            and isinstance(self._surrogate, IncrementalSurrogate)
            and self._observations_since_refit + pending < self.config.refit_every
        )
        with self.tracer.span(
            "bo.refit",
            category="bo",
            mode="incremental" if incremental else "full",
            observations=self.num_observations,
            pending=pending,
        ):
            if incremental:
                for index in range(self._num_in_surrogate, self.num_observations):
                    self._surrogate.add_observation(
                        self._normalize(self._x[index])[0], self._y[index], self._censored[index]
                    )
                self._observations_since_refit += pending
            else:
                x, y, censored = self.observations()
                surrogate = self._build_surrogate()
                surrogate.fit(self._normalize(x), y, censored)
                self._surrogate = surrogate
                self._observations_since_refit = 0
        self._num_in_surrogate = self.num_observations

    @property
    def surrogate(self):
        if self._surrogate is None:
            self.fit()
        return self._surrogate

    # ------------------------------------------------------------------ inference helpers
    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Surrogate posterior mean/std at raw-space points."""
        return self.surrogate.predict(self._normalize(x))

    def fantasize_censored(self, x: np.ndarray, censor_level: float) -> tuple[float, float]:
        """Posterior at ``x`` after pretending it was censored at ``censor_level``."""
        normalized = self._normalize(x)
        mean, std = self.surrogate.fantasize(normalized, censor_level, normalized)
        return float(mean[0]), float(std[0])

    @property
    def supports_batched_fantasize(self) -> bool:
        """Whether the (configured) surrogate fantasizes many levels at once.

        Capability is a property of the surrogate *type*, so an unfitted
        engine answers without forcing a fit (probing an empty engine must
        not raise — e.g. protocol ``isinstance`` checks).
        """
        surrogate = self._surrogate if self._surrogate is not None else self._build_surrogate()
        return isinstance(surrogate, BatchFantasizeSurrogate)

    def fantasize_censored_batch(
        self, x: np.ndarray, censor_levels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior at ``x`` for every hypothetical censoring level, in one call.

        The uncertainty-based timeout rule probes many levels per candidate;
        batching them shares a single rank-1 Cholesky extension instead of
        refitting the surrogate once per level.
        """
        normalized = self._normalize(x)
        levels = np.asarray(censor_levels, dtype=np.float64).reshape(-1)
        means, stds = self.surrogate.fantasize_batch(normalized, levels, normalized)
        return means[:, 0], stds[:, 0]

    # ------------------------------------------------------------------ acquisition
    def _candidate_pool(self) -> np.ndarray:
        """One acquisition round's candidate pool from the generation layer."""
        center = self.best_point()
        normalized = self._normalize(center)[0] if center is not None else None
        # With everything censored so far there is no incumbent to perturb
        # around; the trust-region generator falls back to global sampling.
        generator = (
            self._local_candidates if self.config.use_trust_region else self._global_candidates
        )
        return generator.generate(self.config.num_candidates, self.rng, center=normalized)

    def suggest(self) -> np.ndarray:
        """Propose the next raw-space point to evaluate."""
        return self.suggest_batch(1)[0]

    def suggest_batch(self, q: int) -> list[np.ndarray]:
        """Propose up to ``q`` jointly informative raw-space points.

        ``q = 1`` is bit-for-bit the classic single suggest: same candidate
        pool, same Thompson draw, same RNG stream.  Larger ``q`` hands the
        pool to the batch acquisition strategy, which spreads the picks
        (fantasized constant-liar conditioning or independent posterior
        draws) instead of returning q duplicates of the posterior argmin.
        """
        if q < 1:
            raise OptimizationError("batch size q must be at least 1")
        if self.num_observations == 0:
            return [self._denormalize(self.rng.random((1, self.dim)))[0] for _ in range(q)]
        self.fit()
        with self.tracer.span("bo.acquisition", category="bo", q=q):
            candidates = self._candidate_pool()
            if q == 1:
                indices = [self._acquisition.select(self.surrogate, candidates, self.rng)]
            else:
                indices = self._acquisition.select_batch(self.surrogate, candidates, self.rng, q)
        return [self._denormalize(candidates[index])[0] for index in indices]
