"""The latent-space BO engine: surrogate + trust region + acquisition.

``BOEngine`` is the reusable optimization core that BayesQO drives.  It is
deliberately agnostic of query plans: it minimizes a scalar objective over a
box-bounded continuous domain, supports right-censored observations, and
exposes the fantasized-conditioning hook the uncertainty-based timeout rule
needs.  BayesQO maps plans to latent vectors and latencies to (log) objective
values before handing them to this engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bo.acquisition import thompson_sample
from repro.bo.gp import CensoredGP
from repro.bo.svgp import CensoredSVGP, SVGPConfig
from repro.bo.turbo import TrustRegion, global_candidates
from repro.exceptions import OptimizationError

#: Names of the supported surrogate models.
SURROGATES = ("svgp", "censored_gp")


@dataclass
class BOEngineConfig:
    """Knobs of the BO engine."""

    surrogate: str = "censored_gp"
    use_trust_region: bool = True
    num_candidates: int = 256
    thompson_samples: int = 1
    #: Refit the surrogate from scratch every ``refit_every`` observations.
    refit_every: int = 1
    svgp: SVGPConfig | None = None

    def __post_init__(self) -> None:
        if self.surrogate not in SURROGATES:
            raise OptimizationError(f"unknown surrogate {self.surrogate!r}; pick one of {SURROGATES}")


class BOEngine:
    """Box-bounded minimization with censored observations."""

    def __init__(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        config: BOEngineConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.lower = np.asarray(lower, dtype=np.float64)
        self.upper = np.asarray(upper, dtype=np.float64)
        if self.lower.shape != self.upper.shape or (self.upper <= self.lower).any():
            raise OptimizationError("invalid search bounds")
        self.config = config or BOEngineConfig()
        self.rng = np.random.default_rng(seed)
        self.dim = len(self.lower)
        self.trust_region = TrustRegion(dim=self.dim)
        self._x: list[np.ndarray] = []
        self._y: list[float] = []
        self._censored: list[bool] = []
        self._surrogate = None
        self._observations_since_fit = 0

    # ------------------------------------------------------------------ data handling
    def _normalize(self, x: np.ndarray) -> np.ndarray:
        return (np.atleast_2d(x) - self.lower) / (self.upper - self.lower)

    def _denormalize(self, x: np.ndarray) -> np.ndarray:
        return np.atleast_2d(x) * (self.upper - self.lower) + self.lower

    def add_observation(self, x: np.ndarray, value: float, censored: bool = False) -> None:
        """Record one evaluated point; updates the trust region state."""
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        if x.shape != self.lower.shape:
            raise OptimizationError(f"point has dimension {len(x)}, expected {self.dim}")
        previous_best = self.best_value()
        self._x.append(x)
        self._y.append(float(value))
        self._censored.append(bool(censored))
        self._observations_since_fit += 1
        improved = (not censored) and (previous_best is None or value < previous_best)
        if len(self._y) > 1:
            self.trust_region.update(improved)

    @property
    def num_observations(self) -> int:
        return len(self._y)

    def observations(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            np.asarray(self._x, dtype=np.float64),
            np.asarray(self._y, dtype=np.float64),
            np.asarray(self._censored, dtype=bool),
        )

    def best_value(self) -> float | None:
        """Best (lowest) uncensored objective value seen so far."""
        values = [y for y, c in zip(self._y, self._censored) if not c]
        return min(values) if values else None

    def best_point(self) -> np.ndarray | None:
        best, best_x = None, None
        for x, y, censored in zip(self._x, self._y, self._censored):
            if censored:
                continue
            if best is None or y < best:
                best, best_x = y, x
        return best_x

    # ------------------------------------------------------------------ surrogate
    def _build_surrogate(self):
        if self.config.surrogate == "svgp":
            return CensoredSVGP(config=self.config.svgp or SVGPConfig())
        return CensoredGP()

    def fit(self, force: bool = False) -> None:
        """(Re)fit the surrogate on all observations."""
        if self.num_observations == 0:
            raise OptimizationError("cannot fit the surrogate with no observations")
        if (
            not force
            and self._surrogate is not None
            and self._observations_since_fit < self.config.refit_every
        ):
            return
        x, y, censored = self.observations()
        surrogate = self._build_surrogate()
        surrogate.fit(self._normalize(x), y, censored)
        self._surrogate = surrogate
        self._observations_since_fit = 0

    @property
    def surrogate(self):
        if self._surrogate is None:
            self.fit()
        return self._surrogate

    # ------------------------------------------------------------------ inference helpers
    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Surrogate posterior mean/std at raw-space points."""
        return self.surrogate.predict(self._normalize(x))

    def fantasize_censored(self, x: np.ndarray, censor_level: float) -> tuple[float, float]:
        """Posterior at ``x`` after pretending it was censored at ``censor_level``."""
        normalized = self._normalize(x)
        mean, std = self.surrogate.fantasize(normalized, censor_level, normalized)
        return float(mean[0]), float(std[0])

    # ------------------------------------------------------------------ acquisition
    def suggest(self) -> np.ndarray:
        """Propose the next raw-space point to evaluate."""
        if self.num_observations == 0:
            return self._denormalize(self.rng.random((1, self.dim)))[0]
        self.fit()
        center = self.best_point()
        if center is None:
            # Everything censored so far: fall back to global exploration.
            candidates = global_candidates(self.dim, self.config.num_candidates, self.rng)
        elif self.config.use_trust_region:
            candidates = self.trust_region.candidates(
                self._normalize(center)[0], self.config.num_candidates, self.rng
            )
        else:
            candidates = global_candidates(self.dim, self.config.num_candidates, self.rng)
        index = thompson_sample(
            self.surrogate, candidates, self.rng, num_samples=self.config.thompson_samples
        )
        return self._denormalize(candidates[index])[0]
