"""Candidate generation: the middle layer of the composable BO stack.

Given the current incumbent (or lack of one), a candidate generator produces
the pool of normalized points the acquisition layer scores.  Two strategies
mirror the paper's setup: TuRBO-style trust-region perturbation around the
incumbent, and uniform global sampling (the "no trust region" ablation, also
the fallback while every observation is censored).

Keeping generation behind its own protocol lets the engine swap strategies
per call — the trust region is only usable once an uncensored incumbent
exists — without the acquisition layer knowing which produced the pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.bo.turbo import TrustRegion, global_candidates


@runtime_checkable
class CandidateGenerator(Protocol):
    """Produces the normalized candidate pool for one acquisition round."""

    def generate(
        self, count: int, rng: np.random.Generator, center: np.ndarray | None = None
    ) -> np.ndarray:
        """``count`` points in the unit cube; ``center`` is the normalized
        incumbent when one exists (generators may ignore it)."""


@dataclass
class GlobalCandidates:
    """Uniform sampling over the whole normalized cube."""

    dim: int

    def generate(
        self, count: int, rng: np.random.Generator, center: np.ndarray | None = None
    ) -> np.ndarray:
        return global_candidates(self.dim, count, rng)


@dataclass
class TrustRegionCandidates:
    """TuRBO perturbation inside the (shared, stateful) trust region.

    The :class:`~repro.bo.turbo.TrustRegion` instance is owned by the engine
    — its success/failure state machine is driven by ``add_observation`` —
    and this generator only *reads* it.  Falls back to global sampling when
    no incumbent center is available (everything censored so far).
    """

    region: TrustRegion

    def generate(
        self, count: int, rng: np.random.Generator, center: np.ndarray | None = None
    ) -> np.ndarray:
        if center is None:
            return global_candidates(self.region.dim, count, rng)
        return self.region.candidates(center, count, rng)
