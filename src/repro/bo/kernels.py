"""Covariance kernels for the Gaussian-process surrogates."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError


def _scaled_sqdist(x1: np.ndarray, x2: np.ndarray, lengthscale: float) -> np.ndarray:
    """Pairwise squared Euclidean distances of length-scaled inputs."""
    a = np.atleast_2d(x1) / lengthscale
    b = np.atleast_2d(x2) / lengthscale
    sq = (a**2).sum(axis=1)[:, None] + (b**2).sum(axis=1)[None, :] - 2.0 * a @ b.T
    return np.maximum(sq, 0.0)


@dataclass
class RBFKernel:
    """Squared-exponential kernel ``s^2 exp(-r^2 / 2l^2)``."""

    lengthscale: float = 1.0
    outputscale: float = 1.0

    def __post_init__(self) -> None:
        if self.lengthscale <= 0 or self.outputscale <= 0:
            raise ModelError("kernel hyper-parameters must be positive")

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        return self.outputscale * np.exp(-0.5 * _scaled_sqdist(x1, x2, self.lengthscale))

    def diag(self, x: np.ndarray) -> np.ndarray:
        return np.full(len(np.atleast_2d(x)), self.outputscale)

    def with_params(self, lengthscale: float, outputscale: float) -> "RBFKernel":
        return RBFKernel(lengthscale=lengthscale, outputscale=outputscale)


@dataclass
class Matern52Kernel:
    """Matérn 5/2 kernel (the TuRBO default)."""

    lengthscale: float = 1.0
    outputscale: float = 1.0

    def __post_init__(self) -> None:
        if self.lengthscale <= 0 or self.outputscale <= 0:
            raise ModelError("kernel hyper-parameters must be positive")

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        r = np.sqrt(_scaled_sqdist(x1, x2, self.lengthscale))
        sqrt5_r = np.sqrt(5.0) * r
        return self.outputscale * (1.0 + sqrt5_r + 5.0 * r**2 / 3.0) * np.exp(-sqrt5_r)

    def diag(self, x: np.ndarray) -> np.ndarray:
        return np.full(len(np.atleast_2d(x)), self.outputscale)

    def with_params(self, lengthscale: float, outputscale: float) -> "Matern52Kernel":
        return Matern52Kernel(lengthscale=lengthscale, outputscale=outputscale)


Kernel = RBFKernel | Matern52Kernel
