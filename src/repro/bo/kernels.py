"""Covariance kernels for the Gaussian-process surrogates.

Every kernel here is a stationary function of the pairwise squared Euclidean
distance, so the Gram matrix factors into an *input-only* part (the unscaled
squared-distance matrix, computed once per dataset by :func:`pairwise_sqdist`)
and a cheap *hyper-parameter* part (``from_sqdist``).  The GP caches the
former; hyper-parameter optimization then re-scales the cached matrix instead
of recomputing ``O(n^2 d)`` distances on every likelihood evaluation, and
``grad_from_sqdist`` supplies the analytic Gram-matrix derivatives the
marginal-likelihood gradient needs (no finite differencing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError

_SQRT5 = np.sqrt(5.0)


def pairwise_sqdist(x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
    """Unscaled pairwise squared Euclidean distances (cacheable: no hyper-parameters)."""
    a = np.atleast_2d(np.asarray(x1, dtype=np.float64))
    b = np.atleast_2d(np.asarray(x2, dtype=np.float64))
    sq = (a**2).sum(axis=1)[:, None] + (b**2).sum(axis=1)[None, :] - 2.0 * a @ b.T
    return np.maximum(sq, 0.0)


@dataclass
class RBFKernel:
    """Squared-exponential kernel ``s^2 exp(-r^2 / 2l^2)``."""

    lengthscale: float = 1.0
    outputscale: float = 1.0

    def __post_init__(self) -> None:
        if self.lengthscale <= 0 or self.outputscale <= 0:
            raise ModelError("kernel hyper-parameters must be positive")

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        return self.from_sqdist(pairwise_sqdist(x1, x2))

    def from_sqdist(self, sqdist: np.ndarray) -> np.ndarray:
        """Gram matrix from a precomputed unscaled squared-distance matrix."""
        return self.outputscale * np.exp(-0.5 * sqdist / self.lengthscale**2)

    def grad_from_sqdist(self, sqdist: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(K, dK/d log lengthscale)``; ``dK/d log outputscale`` is ``K`` itself."""
        matrix = self.from_sqdist(sqdist)
        return matrix, matrix * sqdist / self.lengthscale**2

    def diag(self, x: np.ndarray) -> np.ndarray:
        return np.full(len(np.atleast_2d(x)), self.outputscale)

    def with_params(self, lengthscale: float, outputscale: float) -> "RBFKernel":
        return RBFKernel(lengthscale=lengthscale, outputscale=outputscale)


@dataclass
class Matern52Kernel:
    """Matérn 5/2 kernel (the TuRBO default)."""

    lengthscale: float = 1.0
    outputscale: float = 1.0

    def __post_init__(self) -> None:
        if self.lengthscale <= 0 or self.outputscale <= 0:
            raise ModelError("kernel hyper-parameters must be positive")

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        return self.from_sqdist(pairwise_sqdist(x1, x2))

    def from_sqdist(self, sqdist: np.ndarray) -> np.ndarray:
        """Gram matrix from a precomputed unscaled squared-distance matrix."""
        r = np.sqrt(sqdist) / self.lengthscale
        return self.outputscale * (1.0 + _SQRT5 * r + 5.0 * r**2 / 3.0) * np.exp(-_SQRT5 * r)

    def grad_from_sqdist(self, sqdist: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(K, dK/d log lengthscale)``; ``dK/d log outputscale`` is ``K`` itself."""
        r = np.sqrt(sqdist) / self.lengthscale
        decay = np.exp(-_SQRT5 * r)
        matrix = self.outputscale * (1.0 + _SQRT5 * r + 5.0 * r**2 / 3.0) * decay
        # d/dr collapses to -(5r/3)(1 + sqrt5 r) exp(-sqrt5 r); dr/d log l = -r.
        grad = self.outputscale * (5.0 * r**2 / 3.0) * (1.0 + _SQRT5 * r) * decay
        return matrix, grad

    def diag(self, x: np.ndarray) -> np.ndarray:
        return np.full(len(np.atleast_2d(x)), self.outputscale)

    def with_params(self, lengthscale: float, outputscale: float) -> "Matern52Kernel":
        return Matern52Kernel(lengthscale=lengthscale, outputscale=outputscale)


Kernel = RBFKernel | Matern52Kernel
