"""The surrogate-model contract of the BO stack.

:class:`~repro.bo.loop.BOEngine` is composed of three explicit layers —
surrogate, candidate generation (:mod:`repro.bo.candidates`) and acquisition
(:mod:`repro.bo.acquisition`).  This module defines the first: the structural
protocols every surrogate implementation satisfies, unifying
:class:`~repro.bo.gp.ExactGP`, :class:`~repro.bo.gp.CensoredGP` and
:class:`~repro.bo.svgp.CensoredSVGP` behind one interface so the engine (and
anything else, e.g. the uncertainty-based timeout rule) can be written
against the contract rather than a concrete model.

The protocols are ``runtime_checkable`` so capability discovery is an
``isinstance`` check: the engine probes :class:`IncrementalSurrogate` for the
warm O(n^2) update path and :class:`BatchFantasizeSurrogate` for the shared
rank-1 batched conditioning that the timeout rule and the batched acquisition
build on.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Surrogate(Protocol):
    """A probabilistic regression model over the normalized search cube.

    ``fit`` ingests the full observation set (with right-censoring flags);
    ``predict`` returns marginal posterior mean/std; ``posterior_samples``
    draws joint sample paths (Thompson sampling); ``fantasize`` conditions on
    one hypothetical censored observation in closed form and predicts at the
    query points.
    """

    def fit(self, x: np.ndarray, y: np.ndarray, censored: np.ndarray) -> "Surrogate": ...

    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]: ...

    def posterior_samples(
        self, x: np.ndarray, count: int, rng: np.random.Generator
    ) -> np.ndarray: ...

    def fantasize(
        self, x_new: np.ndarray, censor_level: float, x_query: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]: ...

    @property
    def num_observations(self) -> int: ...


@runtime_checkable
class IncrementalSurrogate(Surrogate, Protocol):
    """A surrogate with a warm single-observation update path.

    ``add_observation`` pushes one new point into the fitted model without a
    from-scratch refit (the rank-1 Cholesky extension of the exact GPs); the
    SVGP deliberately does not implement it, which is how the engine knows to
    refit it every time.
    """

    def add_observation(
        self, x: np.ndarray, value: float, censored: bool = False
    ) -> "IncrementalSurrogate": ...


@runtime_checkable
class BatchFantasizeSurrogate(Surrogate, Protocol):
    """A surrogate that can fantasize many censor levels in one conditioning.

    One rank-1 Cholesky extension (a function of ``x_new`` only) is shared by
    every probed level, so the uncertainty-timeout grid and the constant-liar
    batch acquisition cost one O(n^2) conditioning instead of one per level.
    """

    def fantasize_batch(
        self, x_new: np.ndarray, censor_levels: np.ndarray, x_query: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]: ...
