"""Sparse variational GP with the right-censored (Tobit) ELBO of Section 4.3.1.

The paper's contribution on the modelling side is the extension of SVGP
models to censored observations: starting from the standard SVGP evidence
lower bound and substituting the Tobit likelihood, the expected
log-likelihood splits into an analytic Gaussian term for uncensored points
and a ``E_q[log(1 - Phi(z))]`` term for censored points computed with
one-dimensional Gauss-Hermite quadrature.  This module implements exactly
that bound with a diagonal (mean-field) variational posterior over the
inducing values, optimized with Adam on analytic gradients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg, stats

from repro.bo.censored import gauss_hermite_points
from repro.bo.kernels import Kernel, Matern52Kernel
from repro.exceptions import ModelError


@dataclass
class SVGPConfig:
    """Hyper-parameters of the censored SVGP surrogate."""

    num_inducing: int = 32
    noise_std: float = 0.15
    train_steps: int = 150
    learning_rate: float = 0.05
    quadrature_order: int = 20
    jitter: float = 1e-6


class CensoredSVGP:
    """SVGP surrogate supporting right-censored observations."""

    def __init__(self, kernel: Kernel | None = None, config: SVGPConfig | None = None) -> None:
        self.kernel: Kernel = kernel or Matern52Kernel()
        self.config = config or SVGPConfig()
        self._x: np.ndarray | None = None
        self._values: np.ndarray | None = None
        self._censored: np.ndarray | None = None
        self._inducing: np.ndarray | None = None
        self._m: np.ndarray | None = None
        self._log_s: np.ndarray | None = None
        self._kmm_inv: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    # ------------------------------------------------------------------ fitting
    def fit(self, x: np.ndarray, y: np.ndarray, censored: np.ndarray) -> "CensoredSVGP":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        censored = np.asarray(censored, dtype=bool).reshape(-1)
        if not (len(x) == len(y) == len(censored)):
            raise ModelError("x, y and censored must have matching lengths")
        if len(x) == 0:
            raise ModelError("cannot fit an SVGP on zero observations")
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        self._x = x
        self._values = (y - self._y_mean) / self._y_std
        self._censored = censored
        self._initialize_kernel()
        self._select_inducing()
        self._initialize_variational()
        self._optimize()
        return self

    def _initialize_kernel(self) -> None:
        assert self._x is not None
        if len(self._x) >= 2:
            sample = self._x[: min(len(self._x), 200)]
            dists = np.sqrt(
                np.maximum(
                    (sample**2).sum(1)[:, None] + (sample**2).sum(1)[None, :] - 2 * sample @ sample.T,
                    0.0,
                )
            )
            positive = dists[dists > 0]
            lengthscale = float(np.median(positive)) if len(positive) else 1.0
        else:
            lengthscale = 1.0
        self.kernel = self.kernel.with_params(max(lengthscale, 1e-3), 1.0)

    def _select_inducing(self) -> None:
        assert self._x is not None
        count = min(self.config.num_inducing, len(self._x))
        rng = np.random.default_rng(0)
        order = rng.permutation(len(self._x))[:count]
        self._inducing = self._x[order].copy()
        kmm = self.kernel(self._inducing, self._inducing) + self.config.jitter * np.eye(count)
        self._kmm_inv = linalg.inv(kmm)
        self._kmm = kmm

    def _initialize_variational(self) -> None:
        assert self._inducing is not None and self._values is not None
        count = len(self._inducing)
        # Initialize the variational mean from a nearest-observation heuristic.
        self._m = np.zeros(count)
        self._log_s = np.full(count, np.log(0.5))

    # ------------------------------------------------------------------ ELBO and gradients
    def _projection(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return A = K_xm K_mm^{-1} and the diagonal of K_xx - A K_mx."""
        kxm = self.kernel(x, self._inducing)
        a = kxm @ self._kmm_inv
        k_diag = self.kernel.diag(x)
        residual = np.maximum(k_diag - np.sum(a * kxm, axis=1), 1e-10)
        return a, residual

    def _q_f(self, a: np.ndarray, residual: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        s = np.exp(self._log_s)
        mu = a @ self._m
        var = residual + (a**2) @ s
        return mu, np.maximum(var, 1e-10)

    def elbo(self) -> float:
        """Current value of the censored evidence lower bound."""
        a, residual = self._projection(self._x)
        mu, var = self._q_f(a, residual)
        expected = self._expected_log_likelihood(mu, var)[0].sum()
        return float(expected - self._kl())

    def _expected_log_likelihood(
        self, mu: np.ndarray, var: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-point expected log-likelihood and its gradients w.r.t. mu and var."""
        noise = self.config.noise_std
        values, censored = self._values, self._censored
        out = np.zeros_like(mu)
        d_mu = np.zeros_like(mu)
        d_var = np.zeros_like(mu)
        uncensored = ~censored
        if uncensored.any():
            diff = values[uncensored] - mu[uncensored]
            out[uncensored] = (
                -0.5 * np.log(2.0 * np.pi * noise**2)
                - 0.5 * (diff**2 + var[uncensored]) / noise**2
            )
            d_mu[uncensored] = diff / noise**2
            d_var[uncensored] = -0.5 / noise**2
        if censored.any():
            nodes, weights = gauss_hermite_points(self.config.quadrature_order)
            std = np.sqrt(var[censored])
            f = mu[censored, None] + std[:, None] * nodes[None, :]
            z = (values[censored, None] - f) / noise
            log_sf = stats.norm.logsf(z)
            hazard = np.exp(stats.norm.logpdf(z) - np.maximum(log_sf, -700.0))
            hazard = np.minimum(hazard, np.abs(z) + 40.0)
            g = log_sf @ weights
            g_prime = (hazard / noise) @ weights
            hazard_prime = hazard * (hazard - z)
            g_double_prime = (-hazard_prime / noise**2) @ weights
            out[censored] = g
            d_mu[censored] = g_prime
            d_var[censored] = 0.5 * g_double_prime
        return out, d_mu, d_var

    def _kl(self) -> float:
        s = np.exp(self._log_s)
        kmm_inv = self._kmm_inv
        trace = float(np.sum(np.diag(kmm_inv) * s))
        quad = float(self._m @ kmm_inv @ self._m)
        _, logdet_kmm = np.linalg.slogdet(self._kmm)
        logdet_s = float(np.sum(self._log_s))
        count = len(self._m)
        return 0.5 * (trace + quad - count + logdet_kmm - logdet_s)

    def _kl_gradients(self) -> tuple[np.ndarray, np.ndarray]:
        s = np.exp(self._log_s)
        grad_m = self._kmm_inv @ self._m
        grad_s = 0.5 * (np.diag(self._kmm_inv) - 1.0 / s)
        return grad_m, grad_s * s  # chain rule through log_s

    def _optimize(self, steps: int | None = None) -> None:
        steps = steps if steps is not None else self.config.train_steps
        a, residual = self._projection(self._x)
        lr = self.config.learning_rate
        m_m = np.zeros_like(self._m)
        v_m = np.zeros_like(self._m)
        m_s = np.zeros_like(self._log_s)
        v_s = np.zeros_like(self._log_s)
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for step in range(1, steps + 1):
            mu, var = self._q_f(a, residual)
            _, d_mu, d_var = self._expected_log_likelihood(mu, var)
            s = np.exp(self._log_s)
            grad_m = a.T @ d_mu
            grad_log_s = ((a**2).T @ d_var) * s
            kl_m, kl_log_s = self._kl_gradients()
            # Maximize the ELBO -> ascend (expected log-lik gradient minus KL gradient).
            g_m = -(grad_m - kl_m)
            g_s = -(grad_log_s - kl_log_s)
            for grad, value, m_state, v_state in (
                (g_m, self._m, m_m, v_m),
                (g_s, self._log_s, m_s, v_s),
            ):
                m_state *= beta1
                m_state += (1 - beta1) * grad
                v_state *= beta2
                v_state += (1 - beta2) * grad**2
                m_hat = m_state / (1 - beta1**step)
                v_hat = v_state / (1 - beta2**step)
                value -= lr * m_hat / (np.sqrt(v_hat) + eps)
            np.clip(self._log_s, -10.0, 5.0, out=self._log_s)

    # ------------------------------------------------------------------ inference
    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation in the original y units."""
        self._require_fit()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        a, residual = self._projection(x)
        mu, var = self._q_f(a, residual)
        return mu * self._y_std + self._y_mean, np.sqrt(var) * self._y_std

    def posterior_samples(self, x: np.ndarray, count: int, rng: np.random.Generator) -> np.ndarray:
        """Posterior function samples at ``x`` (independent across points).

        Sampling the inducing values jointly and pushing them through the
        projection keeps correlations induced by shared inducing points.
        """
        self._require_fit()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        a, residual = self._projection(x)
        s = np.exp(self._log_s)
        u_samples = self._m[None, :] + rng.standard_normal((count, len(self._m))) * np.sqrt(s)[None, :]
        means = u_samples @ a.T
        noise = rng.standard_normal((count, len(x))) * np.sqrt(residual)[None, :]
        return (means + noise) * self._y_std + self._y_mean

    def fantasize(
        self, x_new: np.ndarray, censor_level: float, x_query: np.ndarray, steps: int = 25
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior at ``x_query`` after conditioning on a censored pseudo-observation.

        Implements the "a few additional iterations of SGD" strategy from the
        paper: the new censored point is appended and the variational
        parameters are updated for a handful of steps, warm-started from the
        current fit, then restored.
        """
        self._require_fit()
        saved = (self._x, self._values, self._censored, self._m.copy(), self._log_s.copy())
        try:
            self._x = np.vstack([self._x, np.atleast_2d(x_new)])
            self._values = np.concatenate(
                [self._values, [(censor_level - self._y_mean) / self._y_std]]
            )
            self._censored = np.concatenate([self._censored, [True]])
            self._optimize(steps=steps)
            return self.predict(x_query)
        finally:
            self._x, self._values, self._censored, self._m, self._log_s = saved

    def _require_fit(self) -> None:
        if self._x is None or self._m is None:
            raise ModelError("the SVGP has not been fit yet")

    @property
    def num_observations(self) -> int:
        return 0 if self._x is None else len(self._x)

    @property
    def num_censored(self) -> int:
        return 0 if self._censored is None else int(self._censored.sum())
