"""Join trees, hint sets and the plan string language."""

from repro.plans.encoding import PlanCodec, sequence_length
from repro.plans.hints import DEFAULT_HINT_SET, HintSet, bao_hint_sets
from repro.plans.jointree import JOIN_OPS, JoinOp, JoinTree
from repro.plans.vocabulary import (
    PAD_TOKEN,
    PlanVocabulary,
    build_vocabulary,
    max_aliases_in_workload,
    vocabulary_for_workload,
)

__all__ = [
    "DEFAULT_HINT_SET",
    "HintSet",
    "JOIN_OPS",
    "JoinOp",
    "JoinTree",
    "PAD_TOKEN",
    "PlanCodec",
    "PlanVocabulary",
    "bao_hint_sets",
    "build_vocabulary",
    "max_aliases_in_workload",
    "sequence_length",
    "vocabulary_for_workload",
]
