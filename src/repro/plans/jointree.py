"""Join trees: the physical plans BayesQO searches over.

A join tree is a binary tree whose leaves are table aliases and whose
internal nodes carry a physical join operator (hash, merge or nested-loop).
This is exactly the structure the paper's plan string language encodes
(Section 4.1): join order plus physical join operators, with scans,
predicates and aggregations left to the underlying engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Sequence

from repro.db.query import Query
from repro.exceptions import PlanError


class JoinOp(str, Enum):
    """Physical join operators."""

    HASH = "hash"
    MERGE = "merge"
    NESTED_LOOP = "nl"

    @property
    def symbol(self) -> str:
        return {"hash": "⋈h", "merge": "⋈m", "nl": "⋈n"}[self.value]


#: Deterministic ordering of join operators, used by the encoder vocabulary.
JOIN_OPS: tuple[JoinOp, ...] = (JoinOp.HASH, JoinOp.MERGE, JoinOp.NESTED_LOOP)


@dataclass(frozen=True)
class JoinTree:
    """An immutable binary join tree.

    A leaf has ``alias`` set and ``left``/``right``/``op`` unset; an internal
    node has ``left``, ``right`` and ``op`` set and ``alias`` unset.
    """

    alias: str | None = None
    left: "JoinTree | None" = None
    right: "JoinTree | None" = None
    op: JoinOp | None = None

    def __post_init__(self) -> None:
        if self.alias is not None:
            if self.left is not None or self.right is not None or self.op is not None:
                raise PlanError("a leaf node must not have children or an operator")
        else:
            if self.left is None or self.right is None or self.op is None:
                raise PlanError("an internal node needs left, right and op")
            overlap = set(self.left.leaf_aliases()) & set(self.right.leaf_aliases())
            if overlap:
                raise PlanError(f"left and right subtrees share aliases: {sorted(overlap)}")

    # ------------------------------------------------------------------ constructors
    @staticmethod
    def leaf(alias: str) -> "JoinTree":
        return JoinTree(alias=alias)

    @staticmethod
    def join(left: "JoinTree", right: "JoinTree", op: JoinOp) -> "JoinTree":
        return JoinTree(left=left, right=right, op=op)

    @staticmethod
    def left_deep(aliases: Sequence[str], ops: Sequence[JoinOp] | None = None) -> "JoinTree":
        """Build a left-deep tree joining ``aliases`` in order.

        ``ops`` supplies the operator at each join (defaults to hash joins).
        """
        if not aliases:
            raise PlanError("cannot build a join tree over zero aliases")
        if ops is None:
            ops = [JoinOp.HASH] * (len(aliases) - 1)
        if len(ops) != len(aliases) - 1:
            raise PlanError(f"need {len(aliases) - 1} operators, got {len(ops)}")
        tree = JoinTree.leaf(aliases[0])
        for alias, op in zip(aliases[1:], ops):
            tree = JoinTree.join(tree, JoinTree.leaf(alias), op)
        return tree

    # ------------------------------------------------------------------ structure
    @property
    def is_leaf(self) -> bool:
        return self.alias is not None

    def leaf_aliases(self) -> list[str]:
        """All leaf aliases, left-to-right."""
        if self.is_leaf:
            return [self.alias]  # type: ignore[list-item]
        return self.left.leaf_aliases() + self.right.leaf_aliases()  # type: ignore[union-attr]

    @property
    def num_joins(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + self.left.num_joins + self.right.num_joins  # type: ignore[union-attr]

    @property
    def num_leaves(self) -> int:
        return len(self.leaf_aliases())

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())  # type: ignore[union-attr]

    def postorder(self) -> Iterator["JoinTree"]:
        """Yield every node in post-order (children before parents)."""
        if not self.is_leaf:
            yield from self.left.postorder()  # type: ignore[union-attr]
            yield from self.right.postorder()  # type: ignore[union-attr]
        yield self

    def join_nodes(self) -> list["JoinTree"]:
        return [node for node in self.postorder() if not node.is_leaf]

    def operators(self) -> list[JoinOp]:
        """Operators of all join nodes in post-order."""
        return [node.op for node in self.join_nodes()]  # type: ignore[misc]

    def join_pairs(self) -> list[tuple[frozenset[str], frozenset[str], JoinOp]]:
        """For each join node: (left alias set, right alias set, operator), post-order."""
        pairs = []
        for node in self.join_nodes():
            pairs.append(
                (
                    frozenset(node.left.leaf_aliases()),  # type: ignore[union-attr]
                    frozenset(node.right.leaf_aliases()),  # type: ignore[union-attr]
                    node.op,
                )
            )
        return pairs

    def is_left_deep(self) -> bool:
        if self.is_leaf:
            return True
        return self.right.is_leaf and self.left.is_left_deep()  # type: ignore[union-attr]

    def with_operators(self, ops: Sequence[JoinOp]) -> "JoinTree":
        """Return a copy of this tree with join operators replaced in post-order."""
        ops = list(ops)
        if len(ops) != self.num_joins:
            raise PlanError(f"need {self.num_joins} operators, got {len(ops)}")

        def rebuild(node: "JoinTree") -> "JoinTree":
            if node.is_leaf:
                return node
            left = rebuild(node.left)  # type: ignore[arg-type]
            right = rebuild(node.right)  # type: ignore[arg-type]
            return JoinTree.join(left, right, ops.pop(0))

        return rebuild(self)

    # ------------------------------------------------------------------ canonical forms
    def canonical(self) -> str:
        """Rendering unique up to structure + operators (children not commuted)."""
        if self.is_leaf:
            return str(self.alias)
        return (
            f"({self.left.canonical()} {self.op.symbol} {self.right.canonical()})"  # type: ignore[union-attr]
        )

    def logical_key(self) -> str:
        """Rendering that ignores operator choice and child order within a join.

        Two plans with the same logical key enumerate the same join order in
        the commutativity sense; used for plan-space coverage statistics.
        """
        if self.is_leaf:
            return str(self.alias)
        left = self.left.logical_key()  # type: ignore[union-attr]
        right = self.right.logical_key()  # type: ignore[union-attr]
        first, second = sorted((left, right))
        return f"({first} * {second})"

    def __str__(self) -> str:
        return self.canonical()

    # ------------------------------------------------------------------ validation
    def validate_for_query(self, query: Query) -> None:
        """Raise :class:`PlanError` unless this tree joins exactly the query's aliases."""
        plan_aliases = set(self.leaf_aliases())
        query_aliases = set(query.aliases)
        if plan_aliases != query_aliases:
            missing = sorted(query_aliases - plan_aliases)
            extra = sorted(plan_aliases - query_aliases)
            raise PlanError(
                f"plan does not cover query {query.name!r}: missing={missing} extra={extra}"
            )

    def count_cross_joins(self, query: Query) -> int:
        """Number of join nodes with no join predicate connecting their sides."""
        count = 0
        for left_set, right_set, _ in self.join_pairs():
            if not query.predicates_between(set(left_set), set(right_set)):
                count += 1
        return count
