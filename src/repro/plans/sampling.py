"""Random join-tree sampling (the paper's Section 4.5 "Random plans" strategy).

The sampler draws uniform random spanning trees of the query's join graph, so
the resulting plans never contain cross joins, and assigns physical join
operators uniformly at random.  It is used both as the Random offline
optimization baseline and as one of BayesQO's initialization strategies.
"""

from __future__ import annotations

import numpy as np

from repro.db.query import Query
from repro.exceptions import PlanError
from repro.plans.jointree import JOIN_OPS, JoinOp, JoinTree


def random_join_tree(query: Query, rng: np.random.Generator) -> JoinTree:
    """Sample a random cross-join-free join tree for ``query``.

    A random spanning tree of the join graph is grown edge by edge; every time
    an edge connects two components, the corresponding join is added to the
    plan with a uniformly random physical operator.  Aliases not reachable
    through any join predicate (disconnected queries) are attached at the end
    with hash joins.
    """
    aliases = query.aliases
    if not aliases:
        raise PlanError(f"query {query.name!r} has no tables")
    if len(aliases) == 1:
        return JoinTree.leaf(aliases[0])
    component_of = {alias: i for i, alias in enumerate(aliases)}
    components: dict[int, JoinTree] = {i: JoinTree.leaf(alias) for i, alias in enumerate(aliases)}
    edges = list(query.join_predicates)
    order = rng.permutation(len(edges))
    for index in order:
        predicate = edges[index]
        left_component = component_of[predicate.left_alias]
        right_component = component_of[predicate.right_alias]
        if left_component == right_component:
            continue
        op = JOIN_OPS[rng.integers(0, len(JOIN_OPS))]
        left_tree = components.pop(left_component)
        right_tree = components.pop(right_component)
        if rng.random() < 0.5:
            left_tree, right_tree = right_tree, left_tree
        merged = JoinTree.join(left_tree, right_tree, op)
        components[left_component] = merged
        for alias in merged.leaf_aliases():
            component_of[alias] = left_component
    # Disconnected remainder (rare): join the remaining components arbitrarily.
    while len(components) > 1:
        keys = sorted(components)
        left_tree = components.pop(keys[0])
        right_tree = components.pop(keys[1])
        merged = JoinTree.join(left_tree, right_tree, JoinOp.HASH)
        components[keys[0]] = merged
    return next(iter(components.values()))


def random_join_trees(query: Query, count: int, seed: int = 0) -> list[JoinTree]:
    """Sample ``count`` random cross-join-free join trees."""
    rng = np.random.default_rng(seed)
    return [random_join_tree(query, rng) for _ in range(count)]
