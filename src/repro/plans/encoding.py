"""The plan string language: encoding join trees to token sequences and back.

This implements Section 4.1 of the paper.  The two properties the language
guarantees are:

* **Completeness** — every join tree over the query's aliases has at least one
  encoding (``encode`` produces a canonical one), and
* **Decoding validity** — *every* token sequence decodes to a valid join tree
  for the query.  Invalid symbols are repaired deterministically by indexing
  into the list of currently-valid symbols with the invalid symbol's integer
  value; truncated sequences are completed deterministically.

The language is intentionally not injective: multiple strings may decode to
the same plan (the paper accepts this trade-off, following SELFIES).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.query import Query
from repro.exceptions import EncodingError
from repro.plans.jointree import JoinOp, JoinTree
from repro.plans.vocabulary import PlanVocabulary


def sequence_length(num_tables: int) -> int:
    """Number of tokens encoding a full plan over ``num_tables`` tables."""
    return max(3 * (num_tables - 1), 0)


@dataclass
class PlanCodec:
    """Encoder/decoder between join trees and token-id sequences.

    Parameters
    ----------
    vocabulary:
        The schema-wide token table.
    """

    vocabulary: PlanVocabulary

    # ------------------------------------------------------------------ encoding
    def encode(self, plan: JoinTree, query: Query) -> list[int]:
        """Canonical token encoding of ``plan``.

        Each join node contributes a ``(left, right, operator)`` triple in
        post-order.  A subtree is referenced by the alias symbol of its
        first (leftmost) leaf, exactly as the paper describes: the first
        occurrence of an alias denotes the base table, later occurrences
        denote the largest subtree containing it.
        """
        plan.validate_for_query(query)
        tokens: list[int] = []
        for node in plan.join_nodes():
            left_leaves = node.left.leaf_aliases()  # type: ignore[union-attr]
            right_leaves = node.right.leaf_aliases()  # type: ignore[union-attr]
            tokens.append(self.vocabulary.alias_id(left_leaves[0]))
            tokens.append(self.vocabulary.alias_id(right_leaves[0]))
            tokens.append(self.vocabulary.op_id(node.op))  # type: ignore[arg-type]
        return tokens

    def encode_padded(self, plan: JoinTree, query: Query, length: int) -> list[int]:
        """Encoding padded (or refused if too long) to exactly ``length`` tokens."""
        tokens = self.encode(plan, query)
        if len(tokens) > length:
            raise EncodingError(
                f"plan needs {len(tokens)} tokens but the padded length is {length}"
            )
        return tokens + [self.vocabulary.pad_id] * (length - len(tokens))

    # ------------------------------------------------------------------ decoding
    def decode(self, tokens: list[int], query: Query) -> JoinTree:
        """Decode any token sequence into a valid join tree for ``query``.

        The decoder maintains the forest of partially-built components and
        repairs every invalid symbol by indexing into the list of valid
        symbols at that position.  If the sequence ends before the tree is
        complete, the remaining components are joined deterministically with
        hash joins.
        """
        aliases = query.aliases
        if not aliases:
            raise EncodingError(f"query {query.name!r} has no tables to plan")
        if len(aliases) == 1:
            return JoinTree.leaf(aliases[0])
        state = _DecodeState(query, self.vocabulary)
        position = 0
        while state.num_components > 1 and position + 3 <= len(tokens):
            state.apply_triple(tokens[position : position + 3])
            position += 3
        state.complete()
        return state.result()

    def round_trip(self, plan: JoinTree, query: Query) -> JoinTree:
        """Encode then decode a plan (identity for canonical encodings)."""
        return self.decode(self.encode(plan, query), query)

    def render(self, tokens: list[int]) -> str:
        """Human-readable rendering of a token sequence."""
        return " ".join(self.vocabulary.token_of(token) for token in tokens)


class _DecodeState:
    """Forest of components built while decoding one plan string."""

    def __init__(self, query: Query, vocabulary: PlanVocabulary) -> None:
        self.query = query
        self.vocabulary = vocabulary
        # Component id -> current subtree; alias -> component id.
        self.components: dict[int, JoinTree] = {}
        self.component_of: dict[str, int] = {}
        for i, alias in enumerate(query.aliases):
            self.components[i] = JoinTree.leaf(alias)
            self.component_of[alias] = i

    # ------------------------------------------------------------------ component bookkeeping
    @property
    def num_components(self) -> int:
        return len(self.components)

    def _valid_alias_ids(self, exclude_component: int | None = None) -> list[int]:
        """Alias token ids valid at this point, sorted for determinism."""
        valid = []
        for alias, component in self.component_of.items():
            if exclude_component is not None and component == exclude_component:
                continue
            valid.append(self.vocabulary.alias_id(alias))
        return sorted(valid)

    def _repair(self, token: int, valid: list[int]) -> int:
        if token in valid:
            return token
        if not valid:
            raise EncodingError("no valid symbols available during decoding")
        return valid[token % len(valid)]

    # ------------------------------------------------------------------ decoding steps
    def apply_triple(self, triple: list[int]) -> None:
        left_token, right_token, op_token_id = triple
        left_valid = self._valid_alias_ids()
        left_token = self._repair(left_token, left_valid)
        left_alias = self.vocabulary.token_of(left_token)
        left_component = self.component_of[left_alias]

        right_valid = self._valid_alias_ids(exclude_component=left_component)
        right_token = self._repair(right_token, right_valid)
        right_alias = self.vocabulary.token_of(right_token)
        right_component = self.component_of[right_alias]

        op_token_id = self._repair(op_token_id, sorted(self.vocabulary.op_ids))
        op = self.vocabulary.op_of(op_token_id)
        self._merge(left_component, right_component, op)

    def _merge(self, left_component: int, right_component: int, op: JoinOp) -> None:
        left_tree = self.components.pop(left_component)
        right_tree = self.components.pop(right_component)
        merged = JoinTree.join(left_tree, right_tree, op)
        self.components[left_component] = merged
        for alias in merged.leaf_aliases():
            self.component_of[alias] = left_component

    def complete(self) -> None:
        """Join any remaining components deterministically (hash joins, id order)."""
        while self.num_components > 1:
            ordered = sorted(self.components)
            self._merge(ordered[0], ordered[1], JoinOp.HASH)

    def result(self) -> JoinTree:
        if self.num_components != 1:
            raise EncodingError("decoding finished with more than one component")
        return next(iter(self.components.values()))
