"""The symbol vocabulary of the plan string language.

A vocabulary is built once per schema (paper Section 4.1): one symbol per
``(table, alias ordinal)`` pair up to the maximum number of aliases of any
single table seen in the workload, plus one symbol per physical join
operator and a padding symbol used by the VAE's fixed-length sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.db.catalog import Schema, alias_name
from repro.db.query import Query
from repro.exceptions import EncodingError
from repro.plans.jointree import JOIN_OPS, JoinOp

#: Token string used for padding fixed-length sequences.
PAD_TOKEN = "<pad>"


@dataclass
class PlanVocabulary:
    """Token table shared by the encoder, the VAE and the PlanLM."""

    tokens: list[str]
    token_to_id: dict[str, int] = field(init=False)
    pad_id: int = field(init=False)

    def __post_init__(self) -> None:
        if len(self.tokens) != len(set(self.tokens)):
            raise EncodingError("vocabulary contains duplicate tokens")
        self.token_to_id = {token: i for i, token in enumerate(self.tokens)}
        if PAD_TOKEN not in self.token_to_id:
            raise EncodingError("vocabulary must contain the padding token")
        self.pad_id = self.token_to_id[PAD_TOKEN]

    # ------------------------------------------------------------------ lookups
    @property
    def size(self) -> int:
        return len(self.tokens)

    def id_of(self, token: str) -> int:
        try:
            return self.token_to_id[token]
        except KeyError as exc:
            raise EncodingError(f"token {token!r} is not in the vocabulary") from exc

    def token_of(self, token_id: int) -> str:
        if not 0 <= token_id < len(self.tokens):
            raise EncodingError(f"token id {token_id} is out of range")
        return self.tokens[token_id]

    def op_id(self, op: JoinOp) -> int:
        return self.id_of(op_token(op))

    def op_of(self, token_id: int) -> JoinOp:
        token = self.token_of(token_id)
        for op in JOIN_OPS:
            if op_token(op) == token:
                return op
        raise EncodingError(f"token {token!r} is not a join operator")

    def alias_id(self, alias: str) -> int:
        return self.id_of(alias)

    @property
    def op_ids(self) -> list[int]:
        return [self.op_id(op) for op in JOIN_OPS]

    def alias_ids(self, aliases: Iterable[str]) -> list[int]:
        return [self.alias_id(alias) for alias in aliases]

    def is_op(self, token_id: int) -> bool:
        return token_id in set(self.op_ids)


def op_token(op: JoinOp) -> str:
    """Token string of a join operator."""
    return f"<{op.value}>"


def build_vocabulary(schema: Schema, max_aliases: int = 1) -> PlanVocabulary:
    """Build the plan vocabulary for ``schema`` with up to ``max_aliases`` per table.

    The ordering is deterministic: pad, join operators, then alias tokens
    sorted by table name and ordinal.
    """
    if max_aliases < 1:
        raise EncodingError("max_aliases must be at least 1")
    tokens = [PAD_TOKEN]
    tokens.extend(op_token(op) for op in JOIN_OPS)
    for table in sorted(schema.table_names):
        for ordinal in range(1, max_aliases + 1):
            tokens.append(alias_name(table, ordinal))
    return PlanVocabulary(tokens)


def max_aliases_in_workload(queries: Iterable[Query]) -> int:
    """Highest number of aliases of any single table across a workload."""
    highest = 1
    for query in queries:
        per_table: dict[str, int] = {}
        for ref in query.table_refs:
            per_table[ref.table] = per_table.get(ref.table, 0) + 1
        if per_table:
            highest = max(highest, max(per_table.values()))
    return highest


def vocabulary_for_workload(schema: Schema, queries: Iterable[Query]) -> PlanVocabulary:
    """Vocabulary sized to the alias usage of a concrete workload."""
    return build_vocabulary(schema, max_aliases_in_workload(list(queries)))
