"""Hint sets: the coarse-grained plan steering used by Bao and by BayesQO's initializer.

A hint set switches planner features on or off — exactly the
``enable_hashjoin`` / ``enable_nestloop`` / ``enable_seqscan`` style knobs Bao
toggles on PostgreSQL.  Our default optimizer honours them by restricting the
operator choices available during plan search.

The paper's Bao baseline (and BayesQO's default initializer) exhausts **49**
hint sets: every combination of a non-empty subset of the three join operators
with a non-empty subset of the three scan methods (seq scan, index scan,
index-only scan), 7 x 7 = 49.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations
from typing import Iterable

from repro.exceptions import PlanError
from repro.plans.jointree import JOIN_OPS, JoinOp

#: Scan methods that a hint set can enable or disable.
SCAN_METHODS = ("seq", "index", "index_only")


@dataclass(frozen=True)
class HintSet:
    """A set of enabled join operators and scan methods.

    The default hint set enables everything (equivalent to no hints).
    """

    join_ops: frozenset[JoinOp] = frozenset(JOIN_OPS)
    scan_methods: frozenset[str] = frozenset(SCAN_METHODS)

    def __post_init__(self) -> None:
        if not self.join_ops:
            raise PlanError("a hint set must enable at least one join operator")
        if not self.scan_methods:
            raise PlanError("a hint set must enable at least one scan method")
        unknown = set(self.scan_methods) - set(SCAN_METHODS)
        if unknown:
            raise PlanError(f"unknown scan methods in hint set: {sorted(unknown)}")

    # ------------------------------------------------------------------ queries
    def allows_join(self, op: JoinOp) -> bool:
        return op in self.join_ops

    def allows_index_scan(self) -> bool:
        return bool({"index", "index_only"} & set(self.scan_methods))

    def allows_seq_scan(self) -> bool:
        return "seq" in self.scan_methods

    @property
    def name(self) -> str:
        joins = "+".join(sorted(op.value for op in self.join_ops))
        scans = "+".join(sorted(self.scan_methods))
        return f"joins[{joins}]/scans[{scans}]"

    def __str__(self) -> str:
        return self.name


#: The hint set with every feature enabled (PostgreSQL defaults).
DEFAULT_HINT_SET = HintSet()


def _non_empty_subsets(items: Iterable) -> list[frozenset]:
    items = list(items)
    subsets = chain.from_iterable(combinations(items, r) for r in range(1, len(items) + 1))
    return [frozenset(subset) for subset in subsets]


def bao_hint_sets() -> list[HintSet]:
    """The 49 hint sets used by Bao and by BayesQO's default initializer.

    The full hint set (everything enabled) is first, matching the convention
    that index 0 is the unhinted default plan.
    """
    join_subsets = _non_empty_subsets(JOIN_OPS)
    scan_subsets = _non_empty_subsets(SCAN_METHODS)
    hint_sets = [
        HintSet(join_ops=joins, scan_methods=scans)
        for joins in join_subsets
        for scans in scan_subsets
    ]
    hint_sets.sort(key=lambda hs: (-len(hs.join_ops), -len(hs.scan_methods), hs.name))
    return hint_sets


def hint_set_by_name(name: str) -> HintSet:
    """Look up one of the Bao hint sets by its :attr:`HintSet.name`."""
    for hint_set in bao_hint_sets():
        if hint_set.name == name:
            return hint_set
    raise PlanError(f"unknown hint set {name!r}")
