"""BayesQO: learned offline query planning via Bayesian optimization.

A full reproduction of the SIGMOD 2025 paper by Tao et al., including the
database substrate (catalog, statistics, cost-based optimizer, executor with
timeouts), the plan string language, the plan VAE, the censored-observation
Bayesian optimization stack, the baselines (Bao, Random, Balsa, LimeQO) and
the cross-query PlanLM initializer.

Typical usage::

    from repro import workloads
    from repro.core import BayesQO, BayesQOConfig

    workload = workloads.build_job_workload(seed=0)
    query = workload.queries[0]
    optimizer = BayesQO(workload.database, config=BayesQOConfig(max_executions=100))
    result = optimizer.optimize(query)
    print(result.best_latency, result.best_plan)
"""

__version__ = "1.0.0"
