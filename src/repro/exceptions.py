"""Exception hierarchy shared by every repro subsystem.

Keeping all exceptions in one module lets callers catch the broad
:class:`ReproError` while still allowing precise handling of specific
failure modes (catalog lookups, plan decoding, execution timeouts, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class CatalogError(ReproError):
    """A schema object (table, column, foreign key, index) is missing or invalid."""


class QueryError(ReproError):
    """A query references objects that do not exist or is otherwise malformed."""


class PlanError(ReproError):
    """A join tree is structurally invalid for the query it claims to plan."""


class EncodingError(ReproError):
    """A plan string could not be encoded or decoded."""


class ExecutionError(ReproError):
    """The execution engine could not run a plan."""


class OptimizationError(ReproError):
    """The offline optimization loop reached an unrecoverable state."""


class ModelError(ReproError):
    """A learned model (VAE, GP, value network, PlanLM) was misused."""
