"""The metrics registry: counters, gauges and latency histograms in one place.

Before this module every subsystem grew its own counter dataclass —
``ServeCounters``, ``SupervisorCounters``, ``FaultCounters``,
``CacheCounters`` — each with a private ``snapshot()`` and no single place to
ask "what is this process doing?".  Those dataclasses stay (they are
picklable operational state, persisted in checkpoints and plan stores); the
registry *unifies their read side*: subsystems register their snapshot
callables as **providers**, first-class latency distributions live in
registry :class:`Histogram` instruments (backed by the same reservoir
sampler the SLO trackers use,
:class:`~repro.harness.metrics.StreamingPercentiles`), and one
:meth:`MetricsRegistry.snapshot` renders the whole stack.

Determinism: histograms draw reservoir replacements from private seeded
generators (seeded by a stable digest of the instrument name), so metrics
collection never touches any RNG the optimizer or executor depends on.  The
clock is injectable for the same reason tests want it everywhere else.

Per-worker merging: registries and their instruments are picklable
(providers — arbitrary callables — are dropped on pickle) and
:meth:`MetricsRegistry.merge` folds a worker's registry into the
scheduler's: counters add, gauges last-write-wins, histograms merge their
reservoirs via :meth:`StreamingPercentiles.merge`.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.utils.seeding import stable_digest

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __getstate__(self):
        return self.value

    def __setstate__(self, state) -> None:
        self.value = state


class Gauge:
    """A point-in-time value (queue depth, in-flight executions)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __getstate__(self):
        return self.value

    def __setstate__(self, state) -> None:
        self.value = state


class Histogram:
    """A latency distribution over a bounded reservoir."""

    __slots__ = ("reservoir",)

    def __init__(self, capacity: int = 512, seed: int = 0) -> None:
        # Imported lazily: the scheduler (repro.harness.runner) imports this
        # module, and repro.harness's package init imports the scheduler — a
        # top-level import here would close that cycle mid-initialization.
        from repro.harness.metrics import StreamingPercentiles

        self.reservoir = StreamingPercentiles(capacity, seed=seed)

    def observe(self, value: float) -> None:
        self.reservoir.add(value)

    @property
    def count(self) -> int:
        return len(self.reservoir)

    def percentile(self, q: float) -> float:
        return self.reservoir.percentile(q)

    def merge(self, other: "Histogram") -> None:
        self.reservoir.merge(other.reservoir)

    def snapshot(self) -> dict:
        return self.reservoir.snapshot()

    def __getstate__(self):
        return self.reservoir

    def __setstate__(self, state) -> None:
        self.reservoir = state


class _Timer:
    """Context manager feeding an elapsed duration into a histogram."""

    __slots__ = ("_histogram", "_clock", "_start")

    def __init__(self, histogram: Histogram, clock: Callable[[], float]) -> None:
        self._histogram = histogram
        self._clock = clock

    def __enter__(self) -> "_Timer":
        self._start = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._histogram.observe(self._clock() - self._start)


class MetricsRegistry:
    """Get-or-create instruments plus pluggable subsystem providers.

    Instruments are identified by name; asking twice returns the same
    object, so subsystems can share a registry without coordination.
    Providers are zero-argument callables returning a JSON-ish dict — the
    existing ``snapshot()``/``summary()`` methods of the per-subsystem
    counter objects plug in unchanged, which is how the serve, supervision,
    fault-injection and execution-cache counters all surface through one
    :meth:`snapshot`.
    """

    def __init__(self, clock: Callable[[], float] | None = None, seed: int = 0) -> None:
        self._clock = clock or time.perf_counter
        self.seed = seed
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._providers: dict[str, Callable[[], dict]] = {}

    # ------------------------------------------------------------------ instruments
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str, capacity: int = 512) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                capacity, seed=stable_digest("metrics", self.seed, name)
            )
        return instrument

    def timer(self, name: str, capacity: int = 512) -> _Timer:
        """``with registry.timer("serve.maintenance"): ...``"""
        return _Timer(self.histogram(name, capacity), self._clock)

    # ------------------------------------------------------------------ providers
    def register_provider(self, name: str, provider: Callable[[], dict]) -> None:
        """Attach a subsystem's snapshot callable under ``name``.

        Last registration wins, so re-wiring after a resume is harmless.
        """
        self._providers[name] = provider

    # ------------------------------------------------------------------ reading
    def snapshot(self) -> dict:
        """Everything: instruments plus every provider's current snapshot.

        A provider that raises reports its error string instead of killing
        the whole snapshot — telemetry must never take the server down.
        """
        providers = {}
        for name, provider in sorted(self._providers.items()):
            try:
                providers[name] = provider()
            except Exception as exc:  # noqa: BLE001 - surfaced, not fatal
                providers[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.snapshot() for name, h in sorted(self._histograms.items())},
            "providers": providers,
        }

    # ------------------------------------------------------------------ merging
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold a (worker's) registry into this one.

        Counters add, gauges take the other side's latest value, histograms
        merge reservoirs.  Providers are process-local and do not transfer.
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = histogram
            else:
                mine.merge(histogram)

    # ------------------------------------------------------------------ pickling
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_providers"] = {}
        try:
            import pickle

            pickle.dumps(state["_clock"])
        except Exception:
            state["_clock"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        if self._clock is None:
            self._clock = time.perf_counter
