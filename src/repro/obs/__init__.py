"""Observability: causal spans, a metrics registry, and trace export.

The telemetry layer threaded through optimize/execute/serve:

* :mod:`repro.obs.tracer` — :class:`Tracer` records causal spans into a
  bounded ring buffer with **explicit context propagation** (objects hold a
  tracer reference; no globals).  :data:`NULL_TRACER` is the default
  everywhere, so tracing is strictly opt-in and tier-1 determinism is
  untouched on or off.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` unifies the
  per-subsystem counter objects (serve, supervisor, faults, execution cache)
  behind providers and adds first-class latency histograms on the same
  reservoir sampler as the SLO trackers.
* :mod:`repro.obs.export` — JSONL sink and Chrome-trace/Perfetto JSON.
* :mod:`repro.obs.report` — the text snapshot (top spans by self-time,
  per-layer latency percentiles, subsystem tables) wired into
  ``python -m repro.serve`` and :class:`~repro.harness.runner.ComparisonRun`.

Gate: ``benchmarks/bench_obs.py`` — serve-fast-path overhead ≤ 2% with
tracing disabled, ≤ 10% enabled, and a 500-arrival stream's trace must
reconstruct a full causal chain (arrival → admission → re-optimization →
store upsert → next fast-path serve).
"""

from repro.obs.export import chrome_trace, read_jsonl, write_chrome_trace, write_jsonl
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import render_report, span_stats
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanRecord, Tracer

__all__ = [
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "read_jsonl",
    "render_report",
    "span_stats",
    "write_chrome_trace",
    "write_jsonl",
]
