"""Human-readable snapshot of a trace + metrics registry.

``render_report`` is the "top" of the observability layer: given the span
buffer and a registry snapshot it prints where time went (top span names by
self-time — child time subtracted, so a parent wrapping expensive children
doesn't dominate its own table), the per-layer latency distribution (span
categories), and the subsystem tables the registry's providers contribute
(fault/retry counters, router statuses, cache hit rates, serve counters).

Wired into ``python -m repro.serve`` and
:class:`~repro.harness.runner.ComparisonRun` so both entry points can answer
"what did this run actually do?" without a trace viewer.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.obs.tracer import SpanRecord

__all__ = ["render_report", "span_stats"]


def span_stats(records: list[SpanRecord]) -> dict[str, dict]:
    """Per-span-name totals: count, total wall time, self time.

    Self time subtracts the duration of *direct* children (by parent link),
    attributing each interval to the innermost span that owns it.
    """
    child_time: dict[int, float] = defaultdict(float)
    for record in records:
        if record.parent_id is not None:
            child_time[record.parent_id] += record.duration
    stats: dict[str, dict] = {}
    for record in records:
        entry = stats.setdefault(
            record.name, {"count": 0, "total": 0.0, "self": 0.0, "category": record.category}
        )
        entry["count"] += 1
        entry["total"] += record.duration
        entry["self"] += max(record.duration - child_time.get(record.span_id, 0.0), 0.0)
    return stats


def _format_table(rows: list[tuple], header: tuple) -> list[str]:
    widths = [len(str(h)) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = ["  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header))]
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return lines


def _flatten(prefix: str, value, rows: list[tuple], depth: int = 0) -> None:
    if depth > 3:
        rows.append((prefix, repr(value)))
        return
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), sub, rows, depth + 1)
    elif isinstance(value, (list, tuple)):
        for index, sub in enumerate(value):
            _flatten(f"{prefix}[{index}]", sub, rows, depth + 1)
    elif isinstance(value, float):
        rows.append((prefix, f"{value:.6g}"))
    else:
        rows.append((prefix, value))


def render_report(
    records: list[SpanRecord],
    metrics_snapshot: dict | None = None,
    top: int = 10,
) -> str:
    """The text observability report: spans by self-time, layer latencies, tables."""
    lines: list[str] = ["== observability report =="]

    stats = span_stats(records)
    if stats:
        lines.append("")
        lines.append(f"-- top spans by self-time ({len(records)} spans buffered) --")
        ranked = sorted(stats.items(), key=lambda item: item[1]["self"], reverse=True)[:top]
        rows = [
            (
                name,
                entry["category"],
                entry["count"],
                f"{entry['self'] * 1e3:.3f}",
                f"{entry['total'] * 1e3:.3f}",
            )
            for name, entry in ranked
        ]
        lines.extend(_format_table(rows, ("span", "layer", "count", "self ms", "total ms")))

        by_category: dict[str, list[float]] = defaultdict(list)
        for record in records:
            by_category[record.category].append(record.duration)
        lines.append("")
        lines.append("-- per-layer span latency (ms) --")
        rows = []
        for category in sorted(by_category):
            durations = np.asarray(by_category[category]) * 1e3
            rows.append(
                (
                    category,
                    len(durations),
                    f"{np.percentile(durations, 50):.3f}",
                    f"{np.percentile(durations, 95):.3f}",
                    f"{np.percentile(durations, 99):.3f}",
                    f"{durations.max():.3f}",
                )
            )
        lines.extend(_format_table(rows, ("layer", "count", "p50", "p95", "p99", "max")))
    else:
        lines.append("(no spans buffered — tracer disabled or nothing ran)")

    if metrics_snapshot:
        for section in ("counters", "gauges"):
            values = metrics_snapshot.get(section) or {}
            if values:
                lines.append("")
                lines.append(f"-- {section} --")
                rows = []
                _flatten("", values, rows)
                lines.extend(_format_table(rows, ("name", "value")))
        histograms = metrics_snapshot.get("histograms") or {}
        if histograms:
            lines.append("")
            lines.append("-- histograms --")
            rows = [
                (
                    name,
                    snap.get("count", 0),
                    f"{snap.get('p50', 0.0):.6g}",
                    f"{snap.get('p95', 0.0):.6g}",
                    f"{snap.get('p99', 0.0):.6g}",
                )
                for name, snap in histograms.items()
            ]
            lines.extend(_format_table(rows, ("name", "count", "p50", "p95", "p99")))
        for name, provider in (metrics_snapshot.get("providers") or {}).items():
            lines.append("")
            lines.append(f"-- {name} --")
            rows = []
            _flatten("", provider, rows)
            if rows:
                lines.extend(_format_table(rows, ("name", "value")))
            else:
                lines.append("(empty)")

    return "\n".join(lines)
