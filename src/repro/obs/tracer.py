"""Causal spans: low-overhead tracing with explicit context propagation.

The observability layer's first principle is that it must not perturb what it
observes: tier-1 determinism (bit-for-bit trace equivalence across backends,
caching and resume) is load-bearing, so the tracer keeps **no global mutable
state** — every instrumented object holds an explicit ``tracer`` reference,
:data:`NULL_TRACER` (a do-nothing singleton) by default.  Hot paths guard on
``tracer.enabled`` so the disabled cost is one attribute read and a branch.

Spans form two kinds of links:

* **parent links** (``parent_id``) — lexical containment: an executor run
  recorded inside a re-optimization task, an admission verdict inside a
  maintenance cycle.
* **follows links** (``attrs["follows"]``) — causality across time: a serve
  arrival *follows* the store upsert that produced the plan it was answered
  with, the upsert follows the admission verdict, the verdict follows the
  arrival that tripped it.  Walking ``follows`` backwards reconstructs a
  query's full life (arrival -> admission -> re-optimization -> store upsert
  -> next fast-path serve) from a flat span list.

Process-pool workers cannot share the scheduler's buffer; they record into
their own :class:`Tracer` and ship the drained, picklable
:class:`SpanRecord` list back on the
:class:`~repro.core.protocol.ExecutionOutcome` (exactly how per-worker
``CacheStats`` already travel).  The scheduler folds them in with
:meth:`Tracer.adopt`, which re-issues span ids so worker-local ids can never
collide with scheduler ids.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from typing import Callable, Iterable

__all__ = ["SpanRecord", "Span", "Tracer", "NullTracer", "NULL_TRACER"]


class SpanRecord:
    """One finished span: a named interval plus its causal links.

    A plain ``__slots__`` object rather than a dataclass — records are
    created on hot paths and cross process boundaries, so construction cost
    and picklability both matter.  ``attrs`` is a small dict of primitives
    (query name, proposal id, cache hit, the ``follows`` link, ...).
    """

    __slots__ = ("span_id", "parent_id", "name", "category", "start", "end", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        category: str,
        start: float,
        end: float,
        attrs: dict,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start = start
        self.end = end
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return self.end - self.start

    def replace(self, **changes) -> "SpanRecord":
        fields = {slot: getattr(self, slot) for slot in self.__slots__}
        fields.update(changes)
        return SpanRecord(**fields)

    def to_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    # __slots__ classes have no __dict__; spell the pickle protocol out.
    def __getstate__(self):
        return self.to_dict()

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def __eq__(self, other) -> bool:
        if not isinstance(other, SpanRecord):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"SpanRecord({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"dur={self.duration:.6f}, attrs={self.attrs})"
        )


def _link_id(parent) -> int | None:
    """The span id a ``parent=`` argument refers to (span, record, id or None)."""
    if parent is None or isinstance(parent, int):
        return parent
    return getattr(parent, "span_id", None)


class Span:
    """An open span; closes (and records itself) on ``__exit__`` or :meth:`done`."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "category", "start", "attrs")

    def __init__(self, tracer: "Tracer", span_id: int, parent_id: int | None,
                 name: str, category: str, start: float, attrs: dict) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start = start
        self.attrs = attrs

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)

    def done(self) -> SpanRecord:
        record = SpanRecord(
            self.span_id, self.parent_id, self.name, self.category,
            self.start, self._tracer._clock(), self.attrs,
        )
        self._tracer._records.append(record)
        return record

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.done()


class Tracer:
    """Records spans into a bounded in-memory ring buffer.

    Parameters
    ----------
    capacity:
        Ring size; the oldest records fall off first.  Bounded by
        construction so a long-lived server cannot leak memory through its
        own telemetry.
    clock:
        Injectable time source (``time.perf_counter`` by default).  Tests
        inject a fake clock for deterministic durations.
    """

    enabled = True

    def __init__(self, capacity: int = 65536, clock: Callable[[], float] | None = None) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be at least 1")
        self.capacity = capacity
        self._clock = clock or time.perf_counter
        self._records: deque[SpanRecord] = deque(maxlen=capacity)
        # ``next()`` on an itertools.count is a single C call — atomic under
        # the GIL, so ids stay unique across threads without a lock on the
        # hot path.
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ recording
    def _new_id(self) -> int:
        return next(self._ids)

    def now(self) -> float:
        """The tracer's clock — for callers measuring a start before a branch."""
        return self._clock()

    def span(self, name: str, *, category: str = "app", parent=None, **attrs) -> Span:
        """Open a span (use as a context manager or call ``done()``)."""
        return Span(
            self, next(self._ids), _link_id(parent), name, category, self._clock(), attrs
        )

    def record(self, name: str, start: float, *, category: str = "app",
               parent=None, end: float | None = None, **attrs) -> SpanRecord:
        """Record a finished span directly — the cheapest enabled-path shape.

        The caller supplies ``start`` (read via :meth:`now` before the traced
        work); ``end`` defaults to the current clock.  Link helpers are
        inlined: this is the microsecond serve path.
        """
        record = SpanRecord(
            next(self._ids),
            parent if parent is None or type(parent) is int else parent.span_id,
            name, category,
            start, self._clock() if end is None else end, attrs,
        )
        self._records.append(record)
        return record

    def instant(self, name: str, *, category: str = "app", parent=None, **attrs) -> SpanRecord:
        """A zero-duration marker (scheduler decisions, admission verdicts)."""
        now = self._clock()
        record = SpanRecord(next(self._ids), _link_id(parent), name, category, now, now, attrs)
        self._records.append(record)
        return record

    # ------------------------------------------------------------------ merging
    def adopt(self, records: Iterable[SpanRecord], parent=None) -> list[SpanRecord]:
        """Fold spans recorded by another tracer (a worker) into this buffer.

        Every adopted record gets a fresh id from *this* tracer so worker-local
        ids can never collide; links *within* the batch are remapped, roots are
        re-parented under ``parent``.  Returns the adopted records.
        """
        parent_id = _link_id(parent)
        mapping: dict[int, int] = {}
        adopted = []
        for record in records:
            new_id = self._new_id()
            mapping[record.span_id] = new_id
            new_parent = mapping.get(record.parent_id, parent_id)
            attrs = record.attrs
            follows = attrs.get("follows")
            if follows is not None and follows in mapping:
                attrs = dict(attrs, follows=mapping[follows])
            adopted.append(record.replace(span_id=new_id, parent_id=new_parent, attrs=attrs))
        self._records.extend(adopted)
        return adopted

    # ------------------------------------------------------------------ reading
    def spans(self) -> list[SpanRecord]:
        """A snapshot of the buffered records, oldest first."""
        return list(self._records)

    def drain(self) -> list[SpanRecord]:
        """Pop everything buffered (how workers ship spans on outcomes)."""
        records = list(self._records)
        self._records.clear()
        return records

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------ pickling
    # Tracers can end up attached to picklable objects (a checkpointed
    # optimizer); the id counter must not poison those pickles.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_records"] = list(self._records)
        state["_ids"] = self._peek_next_id()
        # An injected bound-method/lambda clock would not pickle; fall back.
        try:
            import pickle

            pickle.dumps(state["_clock"])
        except Exception:
            state["_clock"] = None
        return state

    def _peek_next_id(self) -> int:
        # itertools.count has no non-consuming peek; burning one id on
        # pickle is harmless (ids only need to be unique and increasing).
        return next(self._ids)

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        if self._clock is None:
            self._clock = time.perf_counter
        self._records = deque(state["_records"], maxlen=self.capacity)
        self._ids = itertools.count(state["_ids"])


class _NullSpan:
    """The shared do-nothing span the null tracer hands out."""

    __slots__ = ()
    span_id = None
    parent_id = None

    def annotate(self, **attrs) -> None:
        pass

    def done(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: records nothing, costs (almost) nothing.

    Instrumented hot paths check ``tracer.enabled`` and skip even argument
    construction; cooler paths may call ``span()``/``instant()``
    unconditionally and get inert objects back.
    """

    enabled = False
    capacity = 0

    def now(self) -> float:
        return 0.0

    def span(self, name: str, **kwargs) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, start: float, **kwargs) -> None:
        return None

    def instant(self, name: str, **kwargs) -> None:
        return None

    def adopt(self, records, parent=None) -> list:
        return []

    def spans(self) -> list:
        return []

    def drain(self) -> list:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: The shared default tracer.  Instances of :class:`NullTracer` are all
#: equivalent; this one exists so default arguments don't allocate.
NULL_TRACER = NullTracer()
