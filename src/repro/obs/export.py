"""Span exporters: JSONL sink and Chrome-trace/Perfetto JSON.

The ring buffer is the in-memory representation; these functions turn a
span list into artifacts:

* :func:`write_jsonl` — one JSON object per line, append-friendly, the
  machine-readable archive format (loss-free: :func:`read_jsonl` round-trips
  back to :class:`~repro.obs.tracer.SpanRecord`).
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome trace-event
  JSON (``traceEvents`` with complete ``ph: "X"`` events, microsecond
  timestamps) that https://ui.perfetto.dev and ``chrome://tracing`` open
  directly.  Span categories become trace categories, span attrs (including
  the causal ``follows`` ids) land in ``args``, so a serve stream or chaos
  run can be inspected visually without any custom tooling.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.tracer import SpanRecord

__all__ = ["chrome_trace", "write_chrome_trace", "write_jsonl", "read_jsonl"]


def chrome_trace(records: Iterable[SpanRecord], process_name: str = "repro") -> dict:
    """The Chrome trace-event representation of ``records``.

    Spans of the same category share a track (``tid``), which is how a trace
    viewer lays the optimize/exec/serve layers out as parallel swimlanes.
    """
    tids: dict[str, int] = {}
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for record in records:
        tid = tids.setdefault(record.category, len(tids))
        args = {"span_id": record.span_id}
        if record.parent_id is not None:
            args["parent_id"] = record.parent_id
        for key, value in record.attrs.items():
            args[key] = value if isinstance(value, (int, float, str, bool, type(None))) else repr(value)
        events.append(
            {
                "name": record.name,
                "cat": record.category,
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": max(record.duration, 0.0) * 1e6,
                "pid": 0,
                "tid": tid,
                "args": args,
            }
        )
    for category, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": category},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Iterable[SpanRecord], path: str, process_name: str = "repro") -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(records, process_name), handle)


def write_jsonl(records: Iterable[SpanRecord], path: str, append: bool = False) -> None:
    with open(path, "a" if append else "w") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict()) + "\n")


def read_jsonl(path: str) -> list[SpanRecord]:
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(SpanRecord(**json.loads(line)))
    return records
