"""The long-lived plan server: microsecond fast path + background maintenance.

The offline/online split of the paper's Figure 2, made operational.  A
:class:`PlanServer` answers a query stream:

* **Fast path** — a known fingerprint resolves to its stored plan with one
  dictionary lookup.  No optimizer, no planner, no executor is invoked; the
  serve itself costs microseconds, which is what lets the store amortize
  thousands of offline plan executions over millions of serves.
* **Miss path** — an unknown fingerprint falls back to the default planner
  *once*, and the produced plan is promoted into the store immediately: the
  second arrival of any query is already a store hit.  The admission policy
  (:mod:`repro.serve.admission`) then decides whether the fingerprint's
  popularity earns it real optimization budget.
* **Telemetry** — clients report the latency each served plan actually
  achieved (:meth:`PlanServer.report`).  Observations feed per-entry rolling
  windows and a reservoir-sampled SLO tracker
  (:class:`~repro.harness.metrics.StreamingPercentiles`); when a window's
  median diverges from the store's recorded latency by more than
  ``drift_factor`` — the stale-plan signal of :mod:`repro.workloads.drift` —
  the entry is flagged for re-optimization.
* **Maintenance** — :meth:`PlanServer.run_maintenance` drains the admission
  policy's triage list: each task builds the configured technique from the
  registry, drives it through the standard ask/tell protocol with plan
  executions routed through an :mod:`repro.exec` backend
  (:class:`~repro.core.config.ExecutionServiceConfig`), warm-starting
  regressed entries from the stored observation history via
  :func:`repro.core.reoptimize.warm_start_plans`, and folds the finished run
  back into the store.

Everything the server decides from — store entries, admission counters, SLO
reservoirs, arrival counts — persists through :meth:`PlanServer.checkpoint`
and :meth:`PlanServer.resume`, so a server killed mid-stream continues the
remaining arrivals bit-for-bit.
"""

from __future__ import annotations

import copy
import inspect
from dataclasses import dataclass, field, replace

from repro.core.config import ExecutionServiceConfig
from repro.core.protocol import BudgetSpec, PlanProposal
from repro.core.registry import TechniqueContext, get_technique
from repro.core.reoptimize import warm_start_plans
from repro.db.engine import Database
from repro.db.query import Query
from repro.exceptions import OptimizationError
from repro.exec import ExecutionBackend, ExecutionRequest, backend_health, make_backend
from repro.harness.metrics import StreamingPercentiles
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.plans.jointree import JoinTree
from repro.serve.admission import AdmissionConfig, AdmissionPolicy, AdmissionTask
from repro.serve.store import PlanStore, StoreEntry

if False:  # pragma: no cover - typing only
    from repro.core.optimizer import SchemaModel
    from repro.workloads.base import Workload

#: Timeout of server-side warm-start seed executions (matches the generous
#: first-execution timeout the Bao baseline uses).
WARM_START_TIMEOUT = 600.0


def data_signature(database: Database) -> tuple:
    """Cheap deterministic identity of a database's *data* snapshot.

    Outcome-cache event logs replay recorded charges verbatim; replaying logs
    recorded on one snapshot against another would report the old snapshot's
    latencies.  The store therefore tags its exported logs with this
    signature — per-table row counts plus the executor's noise seeding — and
    :meth:`PlanServer.resume` only primes a database whose signature matches.
    """
    rows = tuple(sorted((name, rel.num_rows) for name, rel in database.relations.items()))
    return (rows, database.executor.noise_sigma, database.executor.seed)


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the serving layer."""

    #: Registry technique driven by background maintenance ("bao" by default:
    #: no schema model needed and a naturally bounded search space).
    technique: str = "bao"
    #: Latency SLO observed executions are judged against (``inf`` disables
    #: SLO-based admission pressure).
    slo_latency: float = float("inf")
    #: Window-median / recorded-latency ratio that flags an entry as drifted.
    drift_factor: float = 1.5
    #: Observations a window needs before the drift detector may fire.
    drift_min_observations: int = 2
    #: Per-entry rolling window length (observations since last optimization).
    observation_window: int = 32
    #: Fastest distinct history plans seeded into a warm-started
    #: re-optimization (plus the incumbent plan itself).
    warm_start_history: int = 4
    #: Budget of one background optimization task (techniques flagged
    #: ``ignores_execution_cap`` drop the count axis, as in the harness).
    budget: BudgetSpec = field(default_factory=BudgetSpec)
    #: Where maintenance plan executions run; ``None`` = inline.
    exec_config: ExecutionServiceConfig | None = None
    #: Admission policy knobs.
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Reservoir size of the SLO percentile trackers.
    slo_reservoir: int = 512
    seed: int = 0

    def __post_init__(self) -> None:
        if self.drift_factor < 1.0:
            raise OptimizationError("drift_factor must be at least 1")
        if self.drift_min_observations < 1:
            raise OptimizationError("drift_min_observations must be at least 1")
        if self.observation_window < 1:
            raise OptimizationError("observation_window must be at least 1")
        if self.warm_start_history < 0:
            raise OptimizationError("warm_start_history must be non-negative")
        if self.slo_latency <= 0:
            raise OptimizationError("slo_latency must be positive")


@dataclass(frozen=True)
class ServeDecision:
    """What the server answered one arrival with."""

    query: Query
    plan: JoinTree
    #: ``"store"`` (fast path) or ``"default"`` (first-sight planner fallback).
    source: str
    fingerprint: tuple


@dataclass
class ServeCounters:
    """Cumulative serving statistics (picklable; persisted with the store)."""

    arrivals: int = 0
    fast_path: int = 0
    misses: int = 0
    #: Default-planner invocations — incremented on the miss path only; the
    #: fast path never plans, optimizes or executes anything.
    planner_calls: int = 0
    reports: int = 0
    slo_violations: int = 0
    drift_flags: int = 0
    optimizations: int = 0
    maintenance_executions: int = 0

    @property
    def fast_path_rate(self) -> float:
        return self.fast_path / self.arrivals if self.arrivals else 0.0

    def snapshot(self) -> dict:
        return {
            "arrivals": self.arrivals,
            "fast_path": self.fast_path,
            "misses": self.misses,
            "planner_calls": self.planner_calls,
            "fast_path_rate": self.fast_path_rate,
            "reports": self.reports,
            "slo_violations": self.slo_violations,
            "drift_flags": self.drift_flags,
            "optimizations": self.optimizations,
            "maintenance_executions": self.maintenance_executions,
        }


@dataclass(frozen=True)
class MaintenanceRecord:
    """One finished background optimization task."""

    query_name: str
    reason: str
    technique: str
    executions: int
    best_latency: float
    #: Whether the run's best plan replaced the incumbent in the store.
    adopted: bool
    warm_started: bool
    #: Arrival index the maintenance cycle ran at (stamped by the serve
    #: loop; -1 when maintenance was invoked outside a stream).
    arrival_index: int = -1


class PlanServer:
    """Serves plans for a query stream out of a persistent store.

    Parameters
    ----------
    database:
        The live database clients execute against.  Swapped wholesale on
        data drift via :meth:`update_database`.
    store / admission:
        Persistent state; fresh instances by default.  Pass the objects a
        previous session persisted to continue its stream (or use
        :meth:`resume`, which wires all of it from one file).
    config:
        Serving knobs (:class:`ServeConfig`).
    workload / schema_model:
        Optional context for techniques that need them (BayesQO's schema
        model; workload-aware factories).
    tracer / metrics:
        Telemetry sinks (:mod:`repro.obs`).  Defaults — a no-op tracer and a
        private registry — keep the fast path at its untraced cost; with a
        real tracer every arrival, admission verdict, re-optimization and
        store upsert emits a span, linked into per-fingerprint causal chains
        via ``follows`` attributes.
    """

    def __init__(
        self,
        database: Database,
        *,
        store: PlanStore | None = None,
        admission: AdmissionPolicy | None = None,
        config: ServeConfig | None = None,
        workload: "Workload | None" = None,
        schema_model: "SchemaModel | None" = None,
        tracer=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.database = database
        self.workload = workload
        self.schema_model = schema_model
        self.store = store or PlanStore(observation_window=self.config.observation_window)
        self.admission = admission or AdmissionPolicy(config=self.config.admission)
        self.counters = ServeCounters()
        #: SLO tracking: latency percentiles over everything served from the
        #: store vs everything served from the default planner.
        self.slo_store = StreamingPercentiles(self.config.slo_reservoir, seed=self.config.seed)
        self.slo_default = StreamingPercentiles(
            self.config.slo_reservoir, seed=self.config.seed + 1
        )
        self._backend: ExecutionBackend | None = None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Last chain event per fingerprint, as ``(span_id, is_arrival)`` — the
        # `follows` causal link that stitches arrival -> admission ->
        # re-optimization -> upsert -> next serve into one chain.  The
        # is_arrival flag is what lets the fast path skip recording repeat
        # arrivals.  Ephemeral observability state, not persisted.
        self._follow: dict = {}
        # Lambdas re-read the attributes live: resume() swaps counter
        # objects wholesale after construction.  Providers are dropped on
        # pickle, so the closures never reach a checkpoint.
        self.metrics.register_provider("serve", lambda: self.counters.snapshot())
        self.metrics.register_provider("admission", lambda: self.admission.summary())
        self.metrics.register_provider("backend_health", self.health_report)

    # ------------------------------------------------------------------ serving
    def serve(self, query: Query) -> ServeDecision:
        """Answer one arrival.

        Fast path: fingerprint -> stored plan, one dict lookup.  Miss path:
        default planner once, plan promoted into the store so every repeat
        arrival of this fingerprint is a fast-path serve.
        """
        # Hot path: telemetry records only *causally novel* arrivals — the
        # first serve of a fingerprint, and the first after each admission /
        # re-optimization / upsert event.  A repeat arrival whose last chain
        # event is already an arrival adds no causal information, so the
        # enabled steady state costs one dict probe, no span construction.
        tracer = self.tracer
        self.counters.arrivals += 1
        entry = self.store.get(query)
        if entry is not None and entry.best_plan is not None:
            entry.serves += 1
            self.counters.fast_path += 1
            self.admission.note_arrival(entry.fingerprint, entry.optimized)
            if tracer.enabled:
                last = self._follow.get(entry.fingerprint)
                if last is None or not last[1]:
                    self._note_serve(tracer, query, "store", entry.fingerprint, last)
            return ServeDecision(
                query=query, plan=entry.best_plan, source="store",
                fingerprint=entry.fingerprint,
            )
        entry = self.store.ensure(query)
        self.counters.misses += 1
        self.counters.planner_calls += 1
        entry.best_plan = self.database.plan(query)
        entry.source = "default"
        self.admission.note_arrival(entry.fingerprint, entry.optimized)
        if tracer.enabled:
            last = self._follow.get(entry.fingerprint)
            if last is None or not last[1]:
                self._note_serve(tracer, query, "default", entry.fingerprint, last)
        return ServeDecision(
            query=query, plan=entry.best_plan, source="default",
            fingerprint=entry.fingerprint,
        )

    def _note_serve(self, tracer, query: Query, source: str, fingerprint: tuple, last) -> None:
        """Record one causally novel arrival, chained to the last chain event."""
        record = tracer.instant(
            "serve.arrival",
            category="serve",
            query=query.name,
            source=source,
            follows=None if last is None else last[0],
        )
        self._follow[fingerprint] = (record.span_id, True)

    def report(self, decision: ServeDecision, latency: float, timed_out: bool = False) -> None:
        """Client telemetry: the served plan ran in ``latency`` seconds.

        Feeds the per-entry drift window, the SLO reservoirs and the
        admission policy's violation counters; flags the entry for
        re-optimization when the window median exceeds ``drift_factor`` times
        the store's recorded latency.
        """
        self.counters.reports += 1
        entry = self.store.get_fingerprint(decision.fingerprint)
        if entry is None:
            return
        (self.slo_store if decision.source == "store" else self.slo_default).add(latency)
        self.metrics.histogram(f"serve.latency.{decision.source}").observe(latency)
        slo_violated = not timed_out and latency > self.config.slo_latency
        if timed_out:
            slo_violated = True
        if slo_violated:
            self.counters.slo_violations += 1
        self.admission.note_latency(entry.fingerprint, slo_violated)
        if timed_out:
            return
        entry.observe(latency)
        if entry.recorded_latency == float("inf"):
            # First observation of a freshly promoted default plan: it *is*
            # the drift baseline until optimization replaces it.
            entry.recorded_latency = latency
            return
        median = entry.observed_median()
        if (
            median is not None
            and len(entry.observed) >= self.config.drift_min_observations
            and median > self.config.drift_factor * entry.recorded_latency
        ):
            self.admission.flag_regression(entry.fingerprint, median / entry.recorded_latency)
            self.counters.drift_flags += 1

    # ------------------------------------------------------------------ drift
    def update_database(self, database: Database) -> None:
        """Swap the live database (a drift event).

        Stored plans and recorded latencies deliberately stay: they are the
        *record* the drift detector compares fresh observations against.  The
        maintenance backend is rebuilt lazily against the new data.
        """
        self.database = database
        if self._backend is not None:
            self._backend.close()
            self._backend = None

    # ------------------------------------------------------------------ maintenance
    def _known_queries(self) -> list[Query]:
        if self.workload is not None:
            return list(self.workload.queries)
        return [entry.query for entry in self.store.entries.values()]

    def backend(self) -> ExecutionBackend:
        """The maintenance execution backend, built lazily from the config."""
        if self._backend is None:
            config = self.config.exec_config or ExecutionServiceConfig()
            self._backend = make_backend(
                config, self.database, self._known_queries(), tracer=self.tracer
            )
        return self._backend

    def close(self) -> None:
        """Release the maintenance backend's pools.  Idempotent."""
        if self._backend is not None:
            self._backend.close()
            self._backend = None

    def __enter__(self) -> "PlanServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _technique_context(self) -> TechniqueContext:
        return TechniqueContext(
            database=self.database,
            workload=self.workload,
            schema_model=self.schema_model,
            seed=self.config.seed,
        )

    @staticmethod
    def _detached_optimizer_state(optimizer) -> object:
        """A picklable snapshot of a finished optimizer, detached from its
        live context — the database/workload/schema-model references would
        drag full relation arrays into every store pickle, and they are stale
        after drift anyway (re-optimization always rebuilds against the
        current database)."""
        clone = copy.copy(optimizer)
        for attr in ("database", "workload", "schema_model"):
            if hasattr(clone, attr):
                setattr(clone, attr, None)
        if hasattr(clone, "tracer"):
            # Live tracer buffers must never ride into store pickles.
            clone.tracer = NULL_TRACER
        return clone

    @staticmethod
    def _supports_initial_plans(optimizer) -> bool:
        try:
            return "initial_plans" in inspect.signature(optimizer.start).parameters
        except (TypeError, ValueError):
            return False

    def run_maintenance(self, limit: int | None = None) -> list[MaintenanceRecord]:
        """Drain the admission triage list: optimize what earned budget.

        "Background" is architectural, not concurrent: maintenance runs
        between serves (never *on* the serve path) and its plan executions go
        through the configured :mod:`repro.exec` backend, which is where real
        concurrency lives.  Returns one record per finished task.
        """
        records = []
        tracer = self.tracer
        with tracer.span("serve.maintenance", category="serve") as mspan:
            for task in self.admission.triage(limit):
                entry = self.store.get_fingerprint(task.fingerprint)
                if entry is None:
                    continue
                follows = None
                if tracer.enabled:
                    # The admission verdict follows the fingerprint's last
                    # arrival; the re-optimization span follows the verdict.
                    last = self._follow.get(task.fingerprint)
                    verdict = tracer.instant(
                        "serve.admission",
                        category="serve",
                        parent=mspan,
                        query=entry.query.name,
                        reason=task.reason,
                        score=task.score,
                        follows=None if last is None else last[0],
                    )
                    self._follow[task.fingerprint] = (verdict.span_id, False)
                    follows = verdict.span_id
                records.append(
                    self._optimize_entry(entry, task, parent=mspan, follows=follows)
                )
            mspan.annotate(tasks=len(records))
        if records:
            self.store.sync_cache(self.database)
        return records

    def _optimize_entry(
        self,
        entry: StoreEntry,
        task: AdmissionTask,
        parent=None,
        follows: "int | None" = None,
    ) -> MaintenanceRecord:
        tracer = self.tracer
        reopt_start = tracer.now() if tracer.enabled else 0.0
        spec = get_technique(self.config.technique)
        optimizer = spec.factory(self._technique_context())
        if hasattr(optimizer, "tracer"):
            optimizer.tracer = tracer
        budget = self.config.budget
        if spec.ignores_execution_cap:
            budget = replace(budget, max_executions=None)
        query = entry.query
        backend = self.backend()
        # The re-optimization recipe of Section 5.5, fed from the *stored*
        # history instead of a live session: the incumbent plan and its
        # fastest runners-up anchor the search in what past optimization
        # discovered, re-measured against the current (possibly drifted)
        # data.  Optimizers whose ``start`` takes ``initial_plans`` (BayesQO)
        # fold the seeds into their model; for the rest the server executes
        # the seeds itself and merges them into the run's trace.
        warm_started = False
        seeds: list = []
        if entry.optimized and entry.best_plan is not None:
            seeds = warm_start_plans(
                self.database,
                query,
                entry.best_plan,
                history=entry.fastest_history_plans(self.config.warm_start_history),
                include_bao=False,
            )
            warm_started = bool(seeds)
        start_kwargs: dict = {}
        inline_seeds = seeds
        if seeds and self._supports_initial_plans(optimizer):
            start_kwargs["initial_plans"] = warm_start_plans(
                self.database,
                query,
                entry.best_plan,
                history=entry.fastest_history_plans(self.config.warm_start_history),
            )
            inline_seeds = []
        seed_records: list[tuple] = []
        for plan, label in inline_seeds:
            request = ExecutionRequest(query=query, plan=plan, timeout=WARM_START_TIMEOUT)
            outcome = backend.submit(request).result()
            self.counters.maintenance_executions += 1
            seed_records.append((plan, outcome.latency, outcome.timed_out, outcome.timeout, label))
        state = optimizer.start(query, budget=budget, **start_kwargs)
        while state.budget_left():
            proposal = optimizer.suggest(state)
            if proposal is None:
                break
            outcome = backend.submit(self._request(proposal, query)).result()
            self.counters.maintenance_executions += 1
            optimizer.observe(state, outcome)
        result = optimizer.finish(state)
        for plan, latency, censored, timeout, label in seed_records:
            result.record(plan, latency, censored, timeout, source=label)
        entry.record_run(result.trace, technique=spec.name)
        entry.optimizer = self._detached_optimizer_state(optimizer)
        best = result.best_latency_or(float("inf"))
        # The incumbent's worth *on the current data* is what fresh
        # observations say, not the (possibly pre-drift) recorded latency.
        median = entry.observed_median()
        incumbent = median if median is not None else entry.recorded_latency
        adopted = best < incumbent
        if adopted:
            entry.best_plan = result.best_plan
            entry.recorded_latency = best
        elif median is not None:
            # Keep the incumbent but refresh its drift baseline to the
            # current data, so the detector re-arms at post-drift reality.
            entry.recorded_latency = median
        entry.optimized = True
        entry.observed.clear()
        self.admission.note_optimized(entry.fingerprint)
        self.counters.optimizations += 1
        if tracer.enabled:
            # The span is recorded after the fact (one ring append instead of
            # re-indenting the task under a context manager); inner bo/exec
            # spans therefore sit beside it, while the chain links — reopt
            # follows the admission verdict, the upsert nests under the reopt
            # and becomes what the fingerprint's next serve follows — are
            # what the causal reconstruction walks.
            rspan = tracer.record(
                "serve.reoptimize",
                reopt_start,
                category="serve",
                parent=parent,
                query=query.name,
                reason=task.reason,
                technique=spec.name,
                executions=result.num_executions,
                adopted=adopted,
                follows=follows,
            )
            upsert = tracer.instant(
                "store.upsert",
                category="serve",
                parent=rspan,
                query=query.name,
                adopted=adopted,
                best_latency=best,
            )
            self._follow[entry.fingerprint] = (upsert.span_id, False)
        return MaintenanceRecord(
            query_name=query.name,
            reason=task.reason,
            technique=spec.name,
            executions=result.num_executions,
            best_latency=best,
            adopted=adopted,
            warm_started=warm_started,
        )

    def _request(self, proposal: PlanProposal, query: Query) -> ExecutionRequest:
        target = proposal.query if proposal.query is not None else query
        return ExecutionRequest(
            query=target,
            plan=proposal.plan,
            timeout=proposal.timeout,
            proposal_id=proposal.proposal_id,
        )

    # ------------------------------------------------------------------ persistence
    def checkpoint(self, path: str) -> None:
        """Persist everything the server decides from, atomically."""
        self.store.sync_cache(self.database)
        self.store.server_state = {
            "admission": self.admission,
            "counters": self.counters,
            "slo_store": self.slo_store,
            "slo_default": self.slo_default,
            "data_signature": data_signature(self.database),
        }
        self.store.save(path)

    @classmethod
    def resume(
        cls,
        path: str,
        database: Database,
        *,
        config: ServeConfig | None = None,
        workload: "Workload | None" = None,
        schema_model: "SchemaModel | None" = None,
    ) -> "PlanServer":
        """Rebuild a server from a persisted store.

        Restores entries, admission counters, SLO reservoirs and serve
        counters; primes ``database``'s execution cache from the stored
        outcome logs when (and only when) the data signature matches — event
        logs recorded on a different snapshot would replay the wrong
        latencies.
        """
        store = PlanStore.load(path)
        if store is None:
            raise OptimizationError(f"no plan store at {path!r}")
        server = cls(
            database,
            store=store,
            config=config,
            workload=workload,
            schema_model=schema_model,
        )
        state = store.server_state
        if "admission" in state:
            server.admission = state["admission"]
        if "counters" in state:
            server.counters = state["counters"]
        if "slo_store" in state:
            server.slo_store = state["slo_store"]
        if "slo_default" in state:
            server.slo_default = state["slo_default"]
        if state.get("data_signature") == data_signature(database):
            store.prime(database)
        return server

    # ------------------------------------------------------------------ reporting
    def health_report(self) -> dict:
        """Execution-infrastructure health behind the serve layer.

        The same layer walk the harness session reports
        (:func:`repro.exec.backend_health`) plus the live database's
        execution-cache counters — previously gathered during maintenance
        but absent from every serve snapshot.  Empty sections are simply
        missing keys: a server that never ran maintenance has no backend.
        """
        report = backend_health(self._backend)
        cache = getattr(self.database, "execution_cache", None)
        if cache is not None:
            report["execution_cache"] = cache.counters.snapshot()
        return report

    def summary(self) -> dict:
        return {
            "counters": self.counters.snapshot(),
            "store": self.store.summary(),
            "admission": self.admission.summary(),
            "slo_store": self.slo_store.snapshot(),
            "slo_default": self.slo_default.snapshot(),
            "health": self.health_report(),
        }
