"""End-to-end plan-serving demo: ``python -m repro.serve``.

Builds a small Stack-like workload, starts a :class:`~repro.serve.server.PlanServer`
on the rolled-back 2017 snapshot, and drives a seeded Zipf/bursty stream with a
mid-stream drift event to the full database.  Prints the serve counters, the
maintenance log and the SLO percentiles, then demonstrates checkpoint/resume.
"""

from __future__ import annotations

import argparse
import os
import tempfile

from repro.core.protocol import BudgetSpec
from repro.serve.server import PlanServer, ServeConfig
from repro.serve.traffic import DriftEvent, TrafficConfig, TrafficGenerator, drive_stream
from repro.workloads.drift import rollback_to_date
from repro.workloads.stack import STACK_DATE_2017, build_stack_workload


def main() -> None:
    parser = argparse.ArgumentParser(description="plan-serving demo")
    parser.add_argument("--arrivals", type=int, default=200)
    parser.add_argument("--queries", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("building workload ...")
    workload = build_stack_workload(
        scale=0.05, seed=args.seed, num_templates=6, num_queries=args.queries
    )
    future = workload.database
    past = rollback_to_date(future, STACK_DATE_2017)

    config = ServeConfig(
        technique="bao",
        budget=BudgetSpec(max_executions=16),
        drift_factor=1.3,
        seed=args.seed,
    )
    traffic = TrafficConfig(
        num_arrivals=args.arrivals,
        seed=args.seed,
        drift_events=(DriftEvent(index=args.arrivals // 2, cutoff=None),),
    )
    generator = TrafficGenerator(workload.queries, traffic)

    print(
        f"stream: {len(generator)} arrivals, {generator.distinct_queries()} distinct "
        f"queries, drift at arrival {args.arrivals // 2}"
    )
    with PlanServer(past, config=config, workload=workload) as server:
        result = drive_stream(server, generator, future, maintenance_every=25)
        summary = server.summary()

        counters = summary["counters"]
        print("\nserve counters:")
        for key, value in counters.items():
            print(f"  {key:>24}: {value:.3f}" if isinstance(value, float) else f"  {key:>24}: {value}")

        print("\nmaintenance log:")
        for record in result.maintenance:
            print(
                f"  {record.query_name:<12} reason={record.reason:<9} "
                f"technique={record.technique} executions={record.executions} "
                f"best={record.best_latency:.4f} adopted={record.adopted} "
                f"warm_started={record.warm_started}"
            )

        print("\nSLO percentiles (store-served):")
        for key, value in summary["slo_store"].items():
            print(f"  {key:>8}: {value:.4f}" if isinstance(value, float) else f"  {key:>8}: {value}")

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "plan_store.pkl")
            server.checkpoint(path)
            print(f"\ncheckpointed store to {path} ({os.path.getsize(path)} bytes)")
            resumed = PlanServer.resume(path, server.database, config=config, workload=workload)
            print(
                f"resumed: {len(resumed.store)} entries, "
                f"{resumed.counters.arrivals} arrivals on record"
            )
            resumed.close()


if __name__ == "__main__":
    main()
