"""End-to-end plan-serving demo: ``python -m repro.serve``.

Builds a small Stack-like workload, starts a :class:`~repro.serve.server.PlanServer`
on the rolled-back 2017 snapshot, and drives a seeded Zipf/bursty stream with a
mid-stream drift event to the full database.  Prints the serve counters, the
maintenance log, the SLO percentiles and the telemetry report, then
demonstrates checkpoint/resume.  ``--trace PATH`` additionally exports the
stream's spans as a Chrome/Perfetto trace (open in ``ui.perfetto.dev``).
"""

from __future__ import annotations

import argparse
import os
import tempfile

from repro.core.protocol import BudgetSpec
from repro.obs import Tracer, render_report, write_chrome_trace
from repro.serve.server import PlanServer, ServeConfig
from repro.serve.traffic import DriftEvent, TrafficConfig, TrafficGenerator, drive_stream
from repro.utils import get_logger
from repro.workloads.drift import rollback_to_date
from repro.workloads.stack import STACK_DATE_2017, build_stack_workload

logger = get_logger("repro.serve")


def main() -> None:
    parser = argparse.ArgumentParser(description="plan-serving demo")
    parser.add_argument("--arrivals", type=int, default=200)
    parser.add_argument("--queries", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trace", metavar="PATH", default=None, help="write a Chrome/Perfetto trace JSON"
    )
    args = parser.parse_args()

    logger.info("building workload ...")
    workload = build_stack_workload(
        scale=0.05, seed=args.seed, num_templates=6, num_queries=args.queries
    )
    future = workload.database
    past = rollback_to_date(future, STACK_DATE_2017)

    config = ServeConfig(
        technique="bao",
        budget=BudgetSpec(max_executions=16),
        drift_factor=1.3,
        seed=args.seed,
    )
    traffic = TrafficConfig(
        num_arrivals=args.arrivals,
        seed=args.seed,
        drift_events=(DriftEvent(index=args.arrivals // 2, cutoff=None),),
    )
    generator = TrafficGenerator(workload.queries, traffic)

    logger.info(
        "stream: %d arrivals, %d distinct queries, drift at arrival %d",
        len(generator),
        generator.distinct_queries(),
        args.arrivals // 2,
    )
    tracer = Tracer()
    with PlanServer(past, config=config, workload=workload, tracer=tracer) as server:
        result = drive_stream(server, generator, future, maintenance_every=25)
        summary = server.summary()

        counters = summary["counters"]
        print("\nserve counters:")
        for key, value in counters.items():
            print(f"  {key:>24}: {value:.3f}" if isinstance(value, float) else f"  {key:>24}: {value}")

        print("\nmaintenance log:")
        for record in result.maintenance:
            print(
                f"  {record.query_name:<12} reason={record.reason:<9} "
                f"technique={record.technique} executions={record.executions} "
                f"best={record.best_latency:.4f} adopted={record.adopted} "
                f"warm_started={record.warm_started}"
            )

        print("\nSLO percentiles (store-served):")
        for key, value in summary["slo_store"].items():
            print(f"  {key:>8}: {value:.4f}" if isinstance(value, float) else f"  {key:>8}: {value}")

        print()
        print(render_report(tracer.spans(), server.metrics.snapshot()))

        if args.trace is not None:
            write_chrome_trace(tracer.spans(), args.trace, process_name="repro.serve")
            logger.info("wrote Chrome trace to %s (open in ui.perfetto.dev)", args.trace)

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "plan_store.pkl")
            server.checkpoint(path)
            logger.info("checkpointed store to %s (%d bytes)", path, os.path.getsize(path))
            resumed = PlanServer.resume(path, server.database, config=config, workload=workload)
            print(
                f"\nresumed: {len(resumed.store)} entries, "
                f"{resumed.counters.arrivals} arrivals on record"
            )
            resumed.close()


if __name__ == "__main__":
    main()
