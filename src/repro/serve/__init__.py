"""Plan serving: a long-lived server answering query streams from a store.

The paper's offline/online split made operational.  The pieces:

* :mod:`repro.serve.store` — the persistent, fingerprint-keyed plan store
  (best plans, observation histories, optimizer state, outcome-cache logs)
  under a versioned atomic-write on-disk format.
* :mod:`repro.serve.server` — :class:`PlanServer`: microsecond fast path for
  known fingerprints, default-planner fallback + promotion on first sight,
  latency telemetry, drift detection, checkpoint/resume.
* :mod:`repro.serve.admission` — popularity/regression/SLO-weighted triage
  deciding which fingerprints earn background optimization budget.
* :mod:`repro.serve.traffic` — deterministic Zipf/bursty/drifting stream
  generation and :func:`drive_stream`, the serve loop.

``python -m repro.serve`` runs a small end-to-end demo.
"""

from repro.serve.admission import AdmissionConfig, AdmissionPolicy, AdmissionTask
from repro.serve.server import (
    MaintenanceRecord,
    PlanServer,
    ServeConfig,
    ServeCounters,
    ServeDecision,
    data_signature,
)
from repro.serve.store import (
    STORE_FORMAT_VERSION,
    PlanStore,
    StoredObservation,
    StoreEntry,
    StoreFormatError,
)
from repro.serve.traffic import (
    Arrival,
    DriftEvent,
    ServeRecord,
    StreamResult,
    TrafficConfig,
    TrafficGenerator,
    drive_stream,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionPolicy",
    "AdmissionTask",
    "Arrival",
    "DriftEvent",
    "MaintenanceRecord",
    "PlanServer",
    "PlanStore",
    "STORE_FORMAT_VERSION",
    "ServeConfig",
    "ServeCounters",
    "ServeDecision",
    "ServeRecord",
    "StoreEntry",
    "StoreFormatError",
    "StoredObservation",
    "StreamResult",
    "TrafficConfig",
    "TrafficGenerator",
    "data_signature",
    "drive_stream",
]
