"""Admission/triage: which fingerprints earn background optimization budget.

A server facing a heavy query stream cannot optimize everything — offline
optimization costs thousands of plan executions per query, and most arrivals
are one-off or already well served.  The admission policy is the gate: it
watches every arrival and decides, at each maintenance cycle, which few
fingerprints to spend budget on.

Three signals feed the score, mirroring the economics of the paper's
amortization argument (optimization pays for itself only on queries that
repeat):

* **popularity** — arrivals since the entry was last optimized.  A Zipf-heavy
  stream concentrates mass on few fingerprints; those amortize fastest.
* **regression** — the drift detector flagged the entry (observed latency
  diverged from the store's record), with the severity ratio as weight.
* **SLO pressure** — the fraction of this fingerprint's observations that
  violated the server's latency SLO.  A plan can be "not drifted" and still
  chronically over budget; tail latency cares.

Scores and orderings are fully deterministic (ties break on first-arrival
order), and the policy is a plain picklable object: it persists inside the
plan store's ``server_state``, so a resumed server triages the remaining
stream exactly as the uninterrupted one would have.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import OptimizationError


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the triage score and the per-cycle optimization budget."""

    #: Optimization tasks dispatched per maintenance cycle.
    max_tasks_per_cycle: int = 2
    #: Arrivals a *new* fingerprint needs before it can earn budget — a
    #: one-off query never amortizes its optimization cost.
    min_arrivals: int = 2
    #: Arrivals of a fingerprint to ignore after optimizing it, so a freshly
    #: tuned entry does not immediately re-enter triage on noise.
    cooldown_arrivals: int = 8
    #: Score weight of an unoptimized (default-plan) entry.
    unseen_weight: float = 1.0
    #: Score weight multiplying a flagged regression's severity ratio.
    regression_weight: float = 4.0
    #: Score weight multiplying the SLO violation rate.
    slo_weight: float = 2.0

    def __post_init__(self) -> None:
        if self.max_tasks_per_cycle < 1:
            raise OptimizationError("max_tasks_per_cycle must be at least 1")
        if self.min_arrivals < 1:
            raise OptimizationError("min_arrivals must be at least 1")
        if self.cooldown_arrivals < 0:
            raise OptimizationError("cooldown_arrivals must be non-negative")


@dataclass(frozen=True)
class AdmissionTask:
    """One triage verdict: optimize this fingerprint, for this reason."""

    fingerprint: tuple
    reason: str  # "unseen" | "regressed" | "slo"
    score: float


@dataclass
class _FingerprintStats:
    """Per-fingerprint counters the score reads."""

    order: int  # first-arrival order, the deterministic tie-break
    arrivals: int = 0
    arrivals_since_opt: int = 0
    observations: int = 0
    slo_violations: int = 0
    optimized: bool = False
    #: Drift severity ratio (observed / recorded); 0 when not flagged.
    regression: float = 0.0

    @property
    def violation_rate(self) -> float:
        return self.slo_violations / self.observations if self.observations else 0.0


@dataclass
class AdmissionPolicy:
    """The triage gate: note arrivals/latencies, emit per-cycle task lists."""

    config: AdmissionConfig = field(default_factory=AdmissionConfig)
    stats: dict[tuple, _FingerprintStats] = field(default_factory=dict)

    def _stats_for(self, fingerprint: tuple) -> _FingerprintStats:
        stats = self.stats.get(fingerprint)
        if stats is None:
            stats = _FingerprintStats(order=len(self.stats))
            self.stats[fingerprint] = stats
        return stats

    # ------------------------------------------------------------------ signals
    def note_arrival(self, fingerprint: tuple, optimized: bool) -> None:
        """One arrival of ``fingerprint``; ``optimized`` mirrors its entry."""
        stats = self._stats_for(fingerprint)
        stats.arrivals += 1
        stats.arrivals_since_opt += 1
        stats.optimized = optimized

    def note_latency(self, fingerprint: tuple, slo_violated: bool) -> None:
        """One observed execution latency for ``fingerprint``."""
        stats = self._stats_for(fingerprint)
        stats.observations += 1
        if slo_violated:
            stats.slo_violations += 1

    def flag_regression(self, fingerprint: tuple, severity: float) -> None:
        """The drift detector saw observed latency at ``severity``x the record."""
        stats = self._stats_for(fingerprint)
        stats.regression = max(stats.regression, float(severity))

    def note_optimized(self, fingerprint: tuple) -> None:
        """An optimization run finished: reset the signals it answered."""
        stats = self._stats_for(fingerprint)
        stats.optimized = True
        stats.arrivals_since_opt = 0
        stats.regression = 0.0
        stats.observations = 0
        stats.slo_violations = 0

    # ------------------------------------------------------------------ triage
    def _score(self, stats: _FingerprintStats) -> tuple[float, str]:
        config = self.config
        popularity = float(stats.arrivals_since_opt)
        best = (0.0, "")
        if not stats.optimized:
            best = max(best, (config.unseen_weight * popularity, "unseen"))
        if stats.regression > 0.0:
            best = max(best, (config.regression_weight * stats.regression * popularity, "regressed"))
        if stats.violation_rate > 0.0:
            best = max(best, (config.slo_weight * stats.violation_rate * popularity, "slo"))
        return best

    def triage(self, limit: int | None = None) -> list[AdmissionTask]:
        """The fingerprints most worth optimizing right now, best first.

        At most ``limit`` (default: the config's per-cycle budget) tasks;
        fingerprints inside their post-optimization cooldown or below the
        popularity floor are never admitted.
        """
        if limit is None:
            limit = self.config.max_tasks_per_cycle
        candidates: list[tuple[float, int, tuple, str]] = []
        for fingerprint, stats in self.stats.items():
            if stats.arrivals < self.config.min_arrivals:
                continue
            if stats.optimized and stats.arrivals_since_opt < self.config.cooldown_arrivals:
                continue
            score, reason = self._score(stats)
            if score <= 0.0:
                continue
            candidates.append((score, stats.order, fingerprint, reason))
        candidates.sort(key=lambda item: (-item[0], item[1]))
        return [
            AdmissionTask(fingerprint=fingerprint, reason=reason, score=score)
            for score, _, fingerprint, reason in candidates[:limit]
        ]

    # ------------------------------------------------------------------ reporting
    def summary(self) -> dict:
        return {
            "fingerprints": len(self.stats),
            "flagged_regressions": sum(1 for s in self.stats.values() if s.regression > 0),
            "unoptimized": sum(1 for s in self.stats.values() if not s.optimized),
        }
