"""The persistent plan store: what the serving layer knows across sessions.

Everything the offline tuner learns about a query — the best plan it found,
the full observation history that found it, the finished optimizer object and
the execution cache's replayable outcome logs — is worth exactly nothing if
it dies with the process.  The store is the first layer of the system that
lives *across* sessions: a fingerprint-keyed map of :class:`StoreEntry`
records persisted with the same atomic-write machinery as session
checkpoints (:mod:`repro.harness.checkpoint`), under an explicit, versioned
on-disk format.

Keys are PR 5's **content-based query fingerprints**
(:func:`repro.db.plan_cache.query_fingerprint`): two Query objects describing
the same tables/joins/filters share one entry regardless of name, and two
same-named queries with different filters never collide — the property a
server facing ad-hoc client queries needs.

The store also carries the exported outcome-cache event logs
(:meth:`~repro.db.plan_cache.ExecutionCache.export_outcomes`), so
:meth:`PlanStore.prime` can warm a fresh :class:`~repro.db.engine.Database`'s
execution cache on restore: the first post-restart execution of every known
plan is an outcome replay, not a from-scratch run.

Unlike checkpoint files — where corruption silently means "start over" — a
*version mismatch* on a readable store raises :class:`StoreFormatError`.  A
checkpoint protects one run; the store is long-lived operational state, and
silently discarding it because the format drifted is exactly the failure mode
the versioned header (and the CI assertion on :data:`STORE_FORMAT_VERSION`)
exists to make loud.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.db.engine import Database
from repro.db.plan_cache import query_fingerprint
from repro.db.query import Query
from repro.exceptions import ReproError
from repro.harness.checkpoint import atomic_pickle_save, tolerant_pickle_load
from repro.plans.jointree import JoinTree

#: On-disk format version.  Bump this (and only this) when the payload layout
#: changes — the tier-1 suite asserts the constant and a freshly written
#: file's header agree, so silent format drift fails CI loudly.
STORE_FORMAT_VERSION = 1


class StoreFormatError(ReproError):
    """A plan-store file was readable but its format version does not match."""


@dataclass
class StoredObservation:
    """One plan execution from an optimization run, as the store remembers it."""

    plan: JoinTree
    latency: float
    censored: bool
    timeout: float | None
    source: str


@dataclass
class StoreEntry:
    """Everything the server knows about one query fingerprint.

    ``best_plan`` is what the fast path serves; ``recorded_latency`` is the
    latency the store *expects* that plan to achieve (the drift baseline).
    ``observed`` is the rolling window of latencies seen since the entry was
    last (re-)optimized — the drift detector reads it, and re-optimization
    resets it.  ``history`` is the full observation history of every
    optimization run that touched this entry, in execution order; its fastest
    uncensored plans are the warm-start seeds for re-optimization.
    ``optimizer`` holds the finished optimizer object of the last run (models,
    RNGs) for inspection and future transfer-learning — it is *state*, not a
    live optimizer: after drift it would be stale, so re-optimization always
    rebuilds against the current database and warm-starts from ``history``.
    """

    fingerprint: tuple
    query: Query
    best_plan: JoinTree | None = None
    recorded_latency: float = float("inf")
    #: Where the served plan came from: "default" (planner fallback promoted
    #: on first miss) or the optimizing technique's name.
    source: str = "default"
    #: Whether an optimization run (not just the default planner) produced
    #: ``best_plan``.
    optimized: bool = False
    history: list[StoredObservation] = field(default_factory=list)
    optimizer: object | None = None
    #: Fast-path serves of this entry, over its lifetime.
    serves: int = 0
    #: Rolling latency window since the last (re-)optimization.
    observed: deque = field(default_factory=lambda: deque(maxlen=32))
    #: How many times this entry has been (re-)optimized.
    optimizations: int = 0

    def observe(self, latency: float) -> None:
        self.observed.append(float(latency))

    def observed_median(self) -> float | None:
        """Median of the current observation window (``None`` when empty)."""
        if not self.observed:
            return None
        ordered = sorted(self.observed)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    def record_run(self, records, technique: str) -> None:
        """Append one optimization run's trace records to the history."""
        for record in records:
            self.history.append(
                StoredObservation(
                    plan=record.plan,
                    latency=record.latency,
                    censored=record.censored,
                    timeout=record.timeout,
                    source=record.source,
                )
            )
        self.optimizations += 1
        self.source = technique

    def fastest_history_plans(self, count: int) -> list[JoinTree]:
        """The ``count`` fastest distinct uncensored plans from the history.

        Excludes the current best plan (the warm start passes it separately,
        with its own ``init:past_plan`` label) and preserves deterministic
        ordering: latency ascending, earlier observation wins ties.
        """
        best_key = self.best_plan.canonical() if self.best_plan is not None else None
        seen: set = set()
        ranked: list[tuple[float, int, JoinTree]] = []
        for index, obs in enumerate(self.history):
            if obs.censored:
                continue
            key = obs.plan.canonical()
            if key == best_key or key in seen:
                continue
            seen.add(key)
            ranked.append((obs.latency, index, obs.plan))
        ranked.sort(key=lambda item: (item[0], item[1]))
        return [plan for _, _, plan in ranked[:count]]


class PlanStore:
    """Fingerprint-keyed persistent map of :class:`StoreEntry` records.

    ``server_state`` is an opaque slot the :class:`~repro.serve.server.PlanServer`
    uses to persist its own mutable state (admission counters, SLO trackers,
    arrival counts) alongside the entries, so a resumed server continues the
    stream bit-for-bit.
    """

    def __init__(self, observation_window: int = 32) -> None:
        self.observation_window = observation_window
        self.entries: dict[tuple, StoreEntry] = {}
        #: Outcome-cache event logs exported at the last sync (see
        #: :meth:`sync_cache` / :meth:`prime`).
        self.cache_events: list = []
        self.server_state: dict = {}

    # ------------------------------------------------------------------ lookup
    def get(self, query: Query) -> StoreEntry | None:
        return self.entries.get(query_fingerprint(query))

    def get_fingerprint(self, fingerprint: tuple) -> StoreEntry | None:
        return self.entries.get(fingerprint)

    def ensure(self, query: Query) -> StoreEntry:
        """The entry for ``query``, created (empty) on first sight."""
        fingerprint = query_fingerprint(query)
        entry = self.entries.get(fingerprint)
        if entry is None:
            entry = StoreEntry(
                fingerprint=fingerprint,
                query=query,
                observed=deque(maxlen=self.observation_window),
            )
            self.entries[fingerprint] = entry
        return entry

    def __contains__(self, query: Query) -> bool:
        return query_fingerprint(query) in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------ cache interchange
    def sync_cache(self, database: Database) -> int:
        """Export ``database``'s outcome-cache event logs into the store.

        Returns the number of logs captured; 0 when the database runs
        without an execution cache.
        """
        cache = getattr(database, "execution_cache", None)
        if cache is None:
            return 0
        self.cache_events = cache.export_outcomes()
        return len(self.cache_events)

    def prime(self, database: Database) -> int:
        """Merge the stored event logs into ``database``'s execution cache.

        The import is an upsert (completed entries beat censored ones, longer
        observations beat shorter — see
        :meth:`~repro.db.plan_cache.ExecutionCache.import_outcomes`), so
        priming a warm cache never downgrades it.  Returns entries offered.
        """
        cache = getattr(database, "execution_cache", None)
        if cache is None or not self.cache_events:
            return 0
        return cache.import_outcomes(self.cache_events)

    # ------------------------------------------------------------------ persistence
    def save(self, path: str) -> None:
        """Atomically persist the store under the versioned on-disk format."""
        atomic_pickle_save(
            path,
            {
                "format": "repro.serve.store",
                "version": STORE_FORMAT_VERSION,
                "observation_window": self.observation_window,
                "entries": self.entries,
                "cache_events": self.cache_events,
                "server_state": self.server_state,
            },
        )

    @classmethod
    def load(cls, path: str) -> "PlanStore | None":
        """Load a store; ``None`` for a missing/corrupt file.

        A *readable* store whose version does not match
        :data:`STORE_FORMAT_VERSION` raises :class:`StoreFormatError` — the
        store is long-lived state, and silently starting empty because the
        format drifted would throw away every optimization the server ever
        paid for.
        """
        payload = tolerant_pickle_load(path)
        if payload is None:
            return None
        if not isinstance(payload, dict) or payload.get("format") != "repro.serve.store":
            return None
        version = payload.get("version")
        if version != STORE_FORMAT_VERSION:
            raise StoreFormatError(
                f"plan store {path!r} has format version {version!r}, "
                f"this build expects {STORE_FORMAT_VERSION}"
            )
        store = cls(observation_window=payload.get("observation_window", 32))
        store.entries = payload["entries"]
        store.cache_events = payload.get("cache_events", [])
        store.server_state = payload.get("server_state", {})
        return store

    # ------------------------------------------------------------------ reporting
    def summary(self) -> dict:
        optimized = sum(1 for entry in self.entries.values() if entry.optimized)
        return {
            "entries": len(self.entries),
            "optimized": optimized,
            "observations": sum(len(entry.history) for entry in self.entries.values()),
            "serves": sum(entry.serves for entry in self.entries.values()),
            "cache_events": len(self.cache_events),
        }
