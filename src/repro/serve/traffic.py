"""Seeded query-stream generation and the serve loop that drives a server.

A plan server only earns its keep under realistic traffic: popularity is
skewed (a few queries dominate the stream), arrivals come in bursts that
concentrate on the hot set, and the data underneath occasionally drifts.
:class:`TrafficGenerator` produces exactly that — fully deterministically,
so every benchmark run, test and resumed stream sees the same arrivals:

* **Zipf popularity** — query *rank* ``r`` arrives with weight
  ``1 / (r + 1) ** alpha``; ranks are a seeded shuffle of the query list.
* **Bursty phases** — every ``burst_every`` arrivals, a ``burst_length``-long
  phase restricts draws to the hottest ``burst_hot_fraction`` of ranks.
* **Drift events** — at a fixed arrival index the live database is replaced:
  a :class:`DriftEvent` names a rollback cutoff
  (:func:`repro.workloads.drift.rollback_to_date`), or ``cutoff=None`` for
  the full base snapshot.  A server that started on a rolled-back *past*
  snapshot experiences ``cutoff=None`` as time moving forward — tables grow,
  stored plans go stale, and the drift detector must notice.

:func:`drive_stream` is the serve loop: it walks the arrivals, fires drift
events, executes each served plan client-side (reporting the observed latency
back to the server), runs maintenance on a fixed cadence and optionally
checkpoints after every arrival.  Its ``start_index`` parameter replays the
tail of a stream against a resumed server — the bit-for-bit resume gate
compares the :class:`ServeRecord` traces of the killed and resumed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.db.engine import Database
from repro.db.query import Query
from repro.exceptions import OptimizationError
from repro.serve.server import MaintenanceRecord, PlanServer, data_signature
from repro.workloads.drift import rollback_to_date


@dataclass(frozen=True)
class DriftEvent:
    """At arrival ``index``, swap the live database to the ``cutoff`` snapshot.

    ``cutoff=None`` means the full base database (the "present"); an integer
    cutoff is passed to :func:`~repro.workloads.drift.rollback_to_date`.
    Events fire *before* the arrival at their index is served.
    """

    index: int
    cutoff: int | None = None

    def realize(self, base: Database) -> Database:
        if self.cutoff is None:
            return base
        return rollback_to_date(base, self.cutoff)


@dataclass(frozen=True)
class Arrival:
    """One query arrival in the stream."""

    index: int
    query: Query


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of the deterministic stream generator."""

    num_arrivals: int = 500
    #: Zipf popularity exponent; larger = more skew toward the hot ranks.
    zipf_alpha: float = 1.1
    seed: int = 0
    #: A burst phase starts every this-many arrivals (0 disables bursts).
    burst_every: int = 120
    #: Length of each burst phase.
    burst_length: int = 40
    #: Fraction of the (popularity-ranked) queries a burst concentrates on.
    burst_hot_fraction: float = 0.2
    #: Mid-stream data-drift events, fired by :func:`drive_stream`.
    drift_events: tuple[DriftEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.num_arrivals < 1:
            raise OptimizationError("num_arrivals must be at least 1")
        if self.zipf_alpha < 0:
            raise OptimizationError("zipf_alpha must be non-negative")
        if self.burst_every < 0 or self.burst_length < 0:
            raise OptimizationError("burst cadence/length must be non-negative")
        if not 0.0 < self.burst_hot_fraction <= 1.0:
            raise OptimizationError("burst_hot_fraction must be in (0, 1]")


class TrafficGenerator:
    """Materializes the full arrival schedule up front, deterministically.

    Same queries + same config -> the same schedule, always: the generator
    draws every index from one seeded RNG at construction, so iterating is
    pure replay (and a resumed stream can start anywhere).
    """

    def __init__(self, queries: list[Query], config: TrafficConfig | None = None) -> None:
        if not queries:
            raise OptimizationError("traffic needs at least one query")
        self.config = config or TrafficConfig()
        rng = np.random.default_rng(self.config.seed)
        # Popularity ranks are a seeded shuffle — which query is "hot" is an
        # accident of the seed, not of workload file order.
        order = rng.permutation(len(queries))
        self.ranked: list[Query] = [queries[i] for i in order]
        weights = 1.0 / np.power(np.arange(1, len(queries) + 1, dtype=float), self.config.zipf_alpha)
        self._weights = weights / weights.sum()
        hot = max(1, int(round(self.config.burst_hot_fraction * len(queries))))
        hot_weights = self._weights[:hot] / self._weights[:hot].sum()
        self._schedule: list[int] = []
        for index in range(self.config.num_arrivals):
            if self._in_burst(index):
                rank = int(rng.choice(hot, p=hot_weights))
            else:
                rank = int(rng.choice(len(queries), p=self._weights))
            self._schedule.append(rank)

    def _in_burst(self, index: int) -> bool:
        if self.config.burst_every <= 0 or self.config.burst_length <= 0:
            return False
        return index % self.config.burst_every < self.config.burst_length

    def __len__(self) -> int:
        return len(self._schedule)

    def arrivals(self, start: int = 0, stop: int | None = None) -> list[Arrival]:
        """The arrival slice ``[start, stop)`` of the schedule."""
        stop = len(self._schedule) if stop is None else min(stop, len(self._schedule))
        return [
            Arrival(index=i, query=self.ranked[self._schedule[i]])
            for i in range(start, stop)
        ]

    def distinct_queries(self) -> int:
        """Distinct queries actually appearing in the schedule."""
        return len(set(self._schedule))

    def repeat_arrivals(self) -> int:
        """Arrivals whose query already appeared earlier in the schedule."""
        return len(self._schedule) - self.distinct_queries()


@dataclass(frozen=True)
class ServeRecord:
    """One served arrival, as the resume gate compares it."""

    index: int
    query_name: str
    fingerprint: tuple
    source: str
    latency: float
    timed_out: bool


@dataclass
class StreamResult:
    """What one :func:`drive_stream` run produced."""

    records: list[ServeRecord] = field(default_factory=list)
    maintenance: list[MaintenanceRecord] = field(default_factory=list)
    drift_firings: list[int] = field(default_factory=list)

    def trace(self) -> list[tuple]:
        """The comparable serve trace (bit-for-bit resume gate)."""
        return [
            (r.index, r.query_name, r.fingerprint, r.source, r.latency, r.timed_out)
            for r in self.records
        ]


def drive_stream(
    server: PlanServer,
    traffic: TrafficGenerator,
    base_database: Database,
    *,
    start_index: int = 0,
    stop_index: int | None = None,
    maintenance_every: int = 50,
    checkpoint_path: str | None = None,
    execution_timeout: float | None = 600.0,
) -> StreamResult:
    """Walk the arrival schedule through ``server``.

    Per arrival: fire any due :class:`DriftEvent` (realized against
    ``base_database``), serve, execute the served plan client-side, report
    the observed latency, and — every ``maintenance_every`` *absolute*
    arrivals — run a maintenance cycle.  Cadence and drift both key on the
    absolute arrival index, so a resumed run (``start_index > 0``) makes the
    same decisions at the same arrivals as an uninterrupted one.

    When resuming, drift events that fired before ``start_index`` are
    re-applied first so the server faces the correct snapshot.
    """
    events = {event.index: event for event in traffic.config.drift_events}
    if start_index > 0:
        past = [event for index, event in sorted(events.items()) if index < start_index]
        if past:
            realized = past[-1].realize(base_database)
            # Keep the server's database (and its primed execution cache) when
            # the caller already resumed on the correct snapshot.
            if data_signature(realized) != data_signature(server.database):
                server.update_database(realized)
    result = StreamResult()
    for arrival in traffic.arrivals(start_index, stop_index):
        event = events.get(arrival.index)
        if event is not None:
            server.update_database(event.realize(base_database))
            result.drift_firings.append(arrival.index)
        decision = server.serve(arrival.query)
        tracer = server.tracer
        if not tracer.enabled:
            execution = server.database.execute(
                arrival.query, decision.plan, timeout=execution_timeout
            )
        else:
            # The client-side execution of the served plan — the latency the
            # SLO reservoirs and drift windows actually see.
            with tracer.span(
                "serve.execute",
                category="exec",
                query=arrival.query.name,
                source=decision.source,
            ) as span:
                execution = server.database.execute(
                    arrival.query, decision.plan, timeout=execution_timeout
                )
                span.annotate(latency=execution.latency, timed_out=execution.timed_out)
        server.report(decision, execution.latency, timed_out=execution.timed_out)
        result.records.append(
            ServeRecord(
                index=arrival.index,
                query_name=arrival.query.name,
                fingerprint=decision.fingerprint,
                source=decision.source,
                latency=execution.latency,
                timed_out=execution.timed_out,
            )
        )
        if maintenance_every > 0 and (arrival.index + 1) % maintenance_every == 0:
            result.maintenance.extend(
                replace(record, arrival_index=arrival.index)
                for record in server.run_maintenance()
            )
        if checkpoint_path is not None:
            server.checkpoint(checkpoint_path)
    return result
