"""The StackOverflow-like database and Stack workload.

The Stack benchmark (introduced with Bao) runs over a dump of the
StackExchange network.  The synthetic analogue keeps the same shape: a
``site`` dimension, ``account``/``so_user`` user tables, ``question`` /
``answer`` / ``comment`` / ``post_link`` activity tables and a ``tag`` /
``tag_question`` bridge.  Every activity table carries a ``creation_date``
column (ordinal days) which the drift simulation uses to roll the database
back in time (paper Section 5.5).
"""

from __future__ import annotations

import numpy as np

from repro.db.catalog import Column, ForeignKey, Schema, Table
from repro.db.datagen import ColumnSpec, DataGenerator, TableSpec
from repro.db.engine import Database
from repro.db.query import Query
from repro.workloads.base import Workload
from repro.workloads.generator import FilterSpec, query_from_aliases, sample_connected_aliases

#: Ordinal day bounds of the synthetic history (0 = 2008-01-01, 4300 ≈ late 2019).
STACK_DATE_MIN = 0
STACK_DATE_MAX = 4300
#: Ordinal day corresponding to the end of 2017 (the drift experiment's "past").
STACK_DATE_2017 = 3650

_BASE_ROWS = {
    "site": 40,
    "so_user": 15_000,
    "question": 24_000,
    "answer": 30_000,
    "comment": 36_000,
    "post_link": 8_000,
    "badge": 18_000,
    "tag": 1_200,
    "tag_question": 28_000,
    "account": 12_000,
}


def build_stack_schema() -> Schema:
    """The Stack-like schema (10 tables)."""
    tables = [
        Table("site", [Column("id"), Column("site_name")]),
        Table("account", [Column("id"), Column("website_visits")]),
        Table("so_user", [Column("id"), Column("site_id"), Column("account_id"),
                          Column("reputation"), Column("creation_date", "date")]),
        Table("question", [Column("id"), Column("site_id"), Column("owner_user_id"),
                           Column("score"), Column("view_count"),
                           Column("creation_date", "date")]),
        Table("answer", [Column("id"), Column("site_id"), Column("question_id"),
                         Column("owner_user_id"), Column("score"),
                         Column("creation_date", "date")]),
        Table("comment", [Column("id"), Column("site_id"), Column("post_id"),
                          Column("user_id"), Column("score"), Column("creation_date", "date")]),
        Table("post_link", [Column("id"), Column("site_id"), Column("question_id"),
                            Column("related_question_id"), Column("link_type"),
                            Column("creation_date", "date")]),
        Table("badge", [Column("id"), Column("site_id"), Column("user_id"),
                        Column("badge_class"), Column("creation_date", "date")]),
        Table("tag", [Column("id"), Column("site_id"), Column("tag_name")]),
        Table("tag_question", [Column("id"), Column("site_id"), Column("question_id"),
                               Column("tag_id")]),
    ]
    foreign_keys = [
        ForeignKey("so_user", "site_id", "site", "id"),
        ForeignKey("so_user", "account_id", "account", "id"),
        ForeignKey("question", "site_id", "site", "id"),
        ForeignKey("question", "owner_user_id", "so_user", "id"),
        ForeignKey("answer", "site_id", "site", "id"),
        ForeignKey("answer", "question_id", "question", "id"),
        ForeignKey("answer", "owner_user_id", "so_user", "id"),
        ForeignKey("comment", "site_id", "site", "id"),
        ForeignKey("comment", "post_id", "question", "id"),
        ForeignKey("comment", "user_id", "so_user", "id"),
        ForeignKey("post_link", "site_id", "site", "id"),
        ForeignKey("post_link", "question_id", "question", "id"),
        ForeignKey("badge", "site_id", "site", "id"),
        ForeignKey("badge", "user_id", "so_user", "id"),
        ForeignKey("tag", "site_id", "site", "id"),
        ForeignKey("tag_question", "site_id", "site", "id"),
        ForeignKey("tag_question", "question_id", "question", "id"),
        ForeignKey("tag_question", "tag_id", "tag", "id"),
    ]
    schema = Schema("stack", tables, foreign_keys)
    schema.index_all_join_keys()
    return schema


def _stack_table_specs(scale: float) -> dict[str, TableSpec]:
    def rows(table: str) -> int:
        return max(int(_BASE_ROWS[table] * scale), 4)

    date = ColumnSpec("date", date_min=STACK_DATE_MIN, date_max=STACK_DATE_MAX)
    return {
        "site": TableSpec(rows("site"), {"site_name": ColumnSpec("uniform", cardinality=40)}),
        "account": TableSpec(rows("account"), {
            "website_visits": ColumnSpec("categorical", cardinality=100, skew=1.6),
        }),
        "so_user": TableSpec(rows("so_user"), {
            "reputation": ColumnSpec("categorical", cardinality=500, skew=1.6),
            "creation_date": date,
        }, fk_skew=1.2),
        "question": TableSpec(rows("question"), {
            "score": ColumnSpec("categorical", cardinality=200, skew=1.7),
            "view_count": ColumnSpec("derived", cardinality=400, source_column="score", noise=0.2),
            "creation_date": date,
        }, fk_skew=1.3),
        "answer": TableSpec(rows("answer"), {
            "score": ColumnSpec("categorical", cardinality=150, skew=1.7),
            "creation_date": date,
        }, fk_skew=1.35),
        "comment": TableSpec(rows("comment"), {
            "score": ColumnSpec("categorical", cardinality=30, skew=1.8),
            "creation_date": date,
        }, fk_skew=1.4),
        "post_link": TableSpec(rows("post_link"), {
            "related_question_id": ColumnSpec("uniform", cardinality=max(int(_BASE_ROWS["question"] * scale), 4)),
            "link_type": ColumnSpec("categorical", cardinality=3, skew=0.8),
            "creation_date": date,
        }, fk_skew=1.2),
        "badge": TableSpec(rows("badge"), {
            "badge_class": ColumnSpec("categorical", cardinality=3, skew=1.0),
            "creation_date": date,
        }, fk_skew=1.45),
        "tag": TableSpec(rows("tag"), {"tag_name": ColumnSpec("categorical", cardinality=600, skew=1.3)}),
        "tag_question": TableSpec(rows("tag_question"), {}, fk_skew=1.4),
    }


STACK_FILTER_SPECS = {
    "site": FilterSpec(eq_columns=["site_name"]),
    "so_user": FilterSpec(eq_columns=["reputation"], range_columns=["creation_date"]),
    "question": FilterSpec(eq_columns=["score"], range_columns=["creation_date", "view_count"]),
    "answer": FilterSpec(eq_columns=["score"], range_columns=["creation_date"]),
    "comment": FilterSpec(eq_columns=["score"], range_columns=["creation_date"]),
    "badge": FilterSpec(eq_columns=["badge_class"], range_columns=["creation_date"]),
    "tag": FilterSpec(eq_columns=["tag_name"]),
    "post_link": FilterSpec(eq_columns=["link_type"]),
    "account": FilterSpec(eq_columns=["website_visits"]),
}


def build_stack_database(scale: float = 1.0, seed: int = 0, noise_sigma: float = 0.0) -> Database:
    """Generate a populated Stack-like database instance (the 2019 "future" snapshot)."""
    schema = build_stack_schema()
    generator = DataGenerator(schema, _stack_table_specs(scale), seed=seed)
    return Database(schema, generator.generate(), noise_sigma=noise_sigma, seed=seed)


def build_stack_workload(
    scale: float = 1.0,
    seed: int = 0,
    num_templates: int = 16,
    num_queries: int = 200,
    noise_sigma: float = 0.0,
    database: Database | None = None,
) -> Workload:
    """The Stack-like workload: ``num_queries`` queries from ``num_templates`` templates."""
    database = database or build_stack_database(scale=scale, seed=seed, noise_sigma=noise_sigma)
    schema = database.schema
    max_aliases = 2
    graph = schema.alias_k_graph(max_aliases)
    rng = np.random.default_rng((seed, 47))
    templates: list[tuple[str, list[str]]] = []
    for template_index in range(num_templates):
        size = int(rng.integers(5, 10))
        aliases = sample_connected_aliases(graph, size, rng)
        templates.append((f"STACK_Q{template_index + 1}", aliases))
    queries: list[Query] = []
    for instance in range(num_queries):
        template_name, aliases = templates[instance % num_templates]
        queries.append(
            query_from_aliases(
                schema,
                graph,
                aliases,
                name=f"{template_name}-{instance // num_templates + 1:03d}",
                rng=rng,
                relations=database.relations,
                filter_specs=STACK_FILTER_SPECS,
                filter_probability=0.6,
                template=template_name,
            )
        )
    return Workload(
        name="Stack",
        database=database,
        queries=queries,
        max_aliases=max_aliases,
        description="StackOverflow benchmark analogue with dated activity tables",
    )
