"""Workload container shared by every benchmark suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median

from repro.db.engine import Database
from repro.db.query import Query
from repro.exceptions import QueryError


@dataclass
class Workload:
    """A named set of queries over one database instance.

    Parameters
    ----------
    name:
        Workload identifier ("JOB", "CEB", "Stack", "DSB").
    database:
        The database instance the queries run against.
    queries:
        The benchmark queries.
    max_aliases:
        Alias multiplicity used when building the plan vocabulary.
    description:
        One-line provenance note.
    """

    name: str
    database: Database
    queries: list[Query]
    max_aliases: int = 1
    description: str = ""
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [query.name for query in self.queries]
        if len(names) != len(set(names)):
            raise QueryError(f"workload {self.name!r} has duplicate query names")

    # ------------------------------------------------------------------ summary statistics (Table 1)
    @property
    def num_queries(self) -> int:
        return len(self.queries)

    def median_joins(self) -> float:
        """Median number of join predicates per query."""
        if not self.queries:
            return 0.0
        return float(median(query.num_joins for query in self.queries))

    def median_tables(self) -> float:
        if not self.queries:
            return 0.0
        return float(median(query.num_tables for query in self.queries))

    def size_bytes(self) -> int:
        return self.database.info(self.name).size_bytes

    def query(self, name: str) -> Query:
        for query in self.queries:
            if query.name == name:
                return query
        raise QueryError(f"workload {self.name!r} has no query {name!r}")

    def templates(self) -> list[str]:
        """Sorted distinct template ids across the workload."""
        return sorted({query.template for query in self.queries if query.template is not None})

    def queries_for_template(self, template: str) -> list[Query]:
        return [query for query in self.queries if query.template == template]
