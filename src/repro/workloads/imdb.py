"""The IMDB-like database and the JOB- and CEB-like workloads.

The Join Order Benchmark (JOB) and the Cardinality Estimation Benchmark (CEB)
both run over the IMDB dataset.  This module builds a scaled-down synthetic
IMDB: the same table shapes (a central ``title`` fact table with many-to-many
bridge tables to companies, people, keywords and info records), Zipf-skewed
foreign keys and correlated attribute columns, so the default optimizer's
independence assumption misestimates exactly where it does on the real data.

* :func:`build_job_workload` — 113 queries, median ~7 joins per query.
* :func:`build_ceb_workload` — 234 queries from 13 templates, median ~10 joins.
"""

from __future__ import annotations

import numpy as np

from repro.db.catalog import Column, ForeignKey, Schema, Table
from repro.db.datagen import ColumnSpec, DataGenerator, TableSpec
from repro.db.engine import Database
from repro.db.query import Query
from repro.workloads.base import Workload
from repro.workloads.generator import FilterSpec, query_from_aliases, sample_connected_aliases

#: Baseline row counts (multiplied by the ``scale`` parameter).
_BASE_ROWS = {
    "title": 8_000,
    "kind_type": 7,
    "company_name": 2_000,
    "company_type": 4,
    "movie_companies": 20_000,
    "info_type": 110,
    "movie_info": 26_000,
    "movie_info_idx": 10_000,
    "name": 12_000,
    "cast_info": 40_000,
    "role_type": 12,
    "keyword": 3_000,
    "movie_keyword": 24_000,
    "aka_name": 7_000,
}


def build_imdb_schema() -> Schema:
    """The IMDB-like schema (14 tables, PK-FK references, indexed join keys)."""
    tables = [
        Table("title", [Column("id"), Column("kind_id"), Column("production_year", "date"),
                        Column("episode_count")]),
        Table("kind_type", [Column("id"), Column("kind")]),
        Table("company_name", [Column("id"), Column("country_code")]),
        Table("company_type", [Column("id"), Column("kind")]),
        Table("movie_companies", [Column("id"), Column("movie_id"), Column("company_id"),
                                  Column("company_type_id"), Column("note")]),
        Table("info_type", [Column("id"), Column("info")]),
        Table("movie_info", [Column("id"), Column("movie_id"), Column("info_type_id"),
                             Column("info")]),
        Table("movie_info_idx", [Column("id"), Column("movie_id"), Column("info_type_id"),
                                 Column("info")]),
        Table("name", [Column("id"), Column("gender"), Column("name_pcode")]),
        Table("cast_info", [Column("id"), Column("movie_id"), Column("person_id"),
                            Column("role_id"), Column("nr_order")]),
        Table("role_type", [Column("id"), Column("role")]),
        Table("keyword", [Column("id"), Column("keyword")]),
        Table("movie_keyword", [Column("id"), Column("movie_id"), Column("keyword_id")]),
        Table("aka_name", [Column("id"), Column("person_id")]),
    ]
    foreign_keys = [
        ForeignKey("title", "kind_id", "kind_type", "id"),
        ForeignKey("movie_companies", "movie_id", "title", "id"),
        ForeignKey("movie_companies", "company_id", "company_name", "id"),
        ForeignKey("movie_companies", "company_type_id", "company_type", "id"),
        ForeignKey("movie_info", "movie_id", "title", "id"),
        ForeignKey("movie_info", "info_type_id", "info_type", "id"),
        ForeignKey("movie_info_idx", "movie_id", "title", "id"),
        ForeignKey("movie_info_idx", "info_type_id", "info_type", "id"),
        ForeignKey("cast_info", "movie_id", "title", "id"),
        ForeignKey("cast_info", "person_id", "name", "id"),
        ForeignKey("cast_info", "role_id", "role_type", "id"),
        ForeignKey("movie_keyword", "movie_id", "title", "id"),
        ForeignKey("movie_keyword", "keyword_id", "keyword", "id"),
        ForeignKey("aka_name", "person_id", "name", "id"),
    ]
    schema = Schema("imdb", tables, foreign_keys)
    schema.index_all_join_keys()
    return schema


def _imdb_table_specs(scale: float) -> dict[str, TableSpec]:
    def rows(table: str) -> int:
        return max(int(_BASE_ROWS[table] * scale), 4)

    return {
        "title": TableSpec(rows("title"), {
            "kind_id": ColumnSpec("categorical", cardinality=7, skew=1.0),
            "production_year": ColumnSpec("date", date_min=1900, date_max=2023),
            "episode_count": ColumnSpec("categorical", cardinality=50, skew=1.5),
        }),
        "kind_type": TableSpec(rows("kind_type"), {"kind": ColumnSpec("uniform", cardinality=7)}),
        "company_name": TableSpec(rows("company_name"), {
            "country_code": ColumnSpec("categorical", cardinality=60, skew=1.4),
        }),
        "company_type": TableSpec(rows("company_type"), {"kind": ColumnSpec("uniform", cardinality=4)}),
        "movie_companies": TableSpec(rows("movie_companies"), {
            "note": ColumnSpec("derived", cardinality=200, source_column="company_id", noise=0.15),
        }, fk_skew=1.2),
        "info_type": TableSpec(rows("info_type"), {"info": ColumnSpec("uniform", cardinality=110)}),
        "movie_info": TableSpec(rows("movie_info"), {
            "info": ColumnSpec("derived", cardinality=500, source_column="info_type_id", noise=0.2),
        }, fk_skew=1.15),
        "movie_info_idx": TableSpec(rows("movie_info_idx"), {
            "info": ColumnSpec("derived", cardinality=100, source_column="info_type_id", noise=0.2),
        }, fk_skew=1.2),
        "name": TableSpec(rows("name"), {
            "gender": ColumnSpec("categorical", cardinality=3, skew=0.8),
            "name_pcode": ColumnSpec("categorical", cardinality=300, skew=1.1),
        }),
        "cast_info": TableSpec(rows("cast_info"), {
            "nr_order": ColumnSpec("derived", cardinality=40, source_column="role_id", noise=0.3),
        }, fk_skew=1.2),
        "role_type": TableSpec(rows("role_type"), {"role": ColumnSpec("uniform", cardinality=12)}),
        "keyword": TableSpec(rows("keyword"), {
            "keyword": ColumnSpec("categorical", cardinality=800, skew=1.3),
        }),
        "movie_keyword": TableSpec(rows("movie_keyword"), {}, fk_skew=1.25),
        "aka_name": TableSpec(rows("aka_name"), {}, fk_skew=1.2),
    }


#: Filterable columns per table, shared by JOB and CEB query generation.
#: Only low-cardinality or range predicates are used so that intermediate
#: results stay large enough for join-order choice to matter (the paper's
#: evaluation focuses on long-running queries).
IMDB_FILTER_SPECS = {
    "title": FilterSpec(eq_columns=["kind_id"], range_columns=["production_year"]),
    "company_name": FilterSpec(eq_columns=["country_code"]),
    "company_type": FilterSpec(eq_columns=["kind"]),
    "name": FilterSpec(eq_columns=["gender"]),
    "role_type": FilterSpec(eq_columns=["role"]),
    "cast_info": FilterSpec(range_columns=["nr_order"]),
    "movie_info": FilterSpec(range_columns=["info"]),
}


def build_imdb_database(scale: float = 1.0, seed: int = 0, noise_sigma: float = 0.0) -> Database:
    """Generate a populated IMDB-like database instance."""
    schema = build_imdb_schema()
    generator = DataGenerator(schema, _imdb_table_specs(scale), seed=seed)
    return Database(schema, generator.generate(), noise_sigma=noise_sigma, seed=seed)


def _job_size_distribution(rng: np.random.Generator, count: int) -> list[int]:
    """Table counts for JOB-like queries: 4..13 tables with a median of ~8."""
    sizes = rng.choice(
        np.arange(4, 14),
        size=count,
        p=np.array([0.05, 0.08, 0.12, 0.15, 0.20, 0.15, 0.10, 0.08, 0.04, 0.03]),
    )
    return [int(size) for size in sizes]


def build_job_workload(
    scale: float = 1.0,
    seed: int = 0,
    num_queries: int = 113,
    noise_sigma: float = 0.0,
    database: Database | None = None,
) -> Workload:
    """The JOB-like workload: ``num_queries`` queries over the IMDB-like database."""
    database = database or build_imdb_database(scale=scale, seed=seed, noise_sigma=noise_sigma)
    schema = database.schema
    max_aliases = 2
    graph = schema.alias_k_graph(max_aliases)
    rng = np.random.default_rng((seed, 17))
    queries: list[Query] = []
    sizes = _job_size_distribution(rng, num_queries)
    for i, size in enumerate(sizes):
        family = i // 3 + 1
        variant = "abc"[i % 3]
        aliases = sample_connected_aliases(graph, size, rng)
        queries.append(
            query_from_aliases(
                schema,
                graph,
                aliases,
                name=f"JOB_{family}{variant}",
                rng=rng,
                relations=database.relations,
                filter_specs=IMDB_FILTER_SPECS,
                filter_probability=0.65,
                template=f"JOB_T{family}",
            )
        )
    return Workload(
        name="JOB",
        database=database,
        queries=queries,
        max_aliases=max_aliases,
        description="Join Order Benchmark analogue over the synthetic IMDB database",
    )


def build_ceb_workload(
    scale: float = 1.0,
    seed: int = 0,
    num_templates: int = 13,
    queries_per_template: int = 18,
    noise_sigma: float = 0.0,
    database: Database | None = None,
) -> Workload:
    """The CEB-like workload: template-structured queries with varying literals.

    Each template fixes the joined alias set (8-13 tables); its queries differ
    only in filter literals, mirroring how CEB instantiates query templates.
    """
    database = database or build_imdb_database(scale=scale, seed=seed, noise_sigma=noise_sigma)
    schema = database.schema
    max_aliases = 2
    graph = schema.alias_k_graph(max_aliases)
    rng = np.random.default_rng((seed, 31))
    queries: list[Query] = []
    for template_index in range(num_templates):
        size = int(rng.integers(8, 14))
        aliases = sample_connected_aliases(graph, size, rng)
        template = f"CEB_T{template_index + 1}"
        for instance in range(queries_per_template):
            queries.append(
                query_from_aliases(
                    schema,
                    graph,
                    aliases,
                    name=f"{template}_{instance + 1:02d}",
                    rng=rng,
                    relations=database.relations,
                    filter_specs=IMDB_FILTER_SPECS,
                    filter_probability=0.7,
                    template=template,
                )
            )
    return Workload(
        name="CEB",
        database=database,
        queries=queries,
        max_aliases=max_aliases,
        description="Cardinality Estimation Benchmark analogue (template-structured IMDB queries)",
    )
