"""The DSB-like database and workload.

DSB (Ding et al.) extends TPC-DS with more complex data distributions.  The
synthetic analogue keeps the star/snowflake shape: ``store_sales`` /
``catalog_sales`` / ``store_returns`` fact tables joined to ``date_dim``,
``item``, ``customer``, ``customer_address``, ``store`` and ``promotion``
dimensions.  The workload has 90 queries (3 per template, 30 templates) drawn
from "agg"- and "spj"-style templates, with a median of ~5 joins per query.
"""

from __future__ import annotations

import numpy as np

from repro.db.catalog import Column, ForeignKey, Schema, Table
from repro.db.datagen import ColumnSpec, DataGenerator, TableSpec
from repro.db.engine import Database
from repro.db.query import Query
from repro.workloads.base import Workload
from repro.workloads.generator import FilterSpec, query_from_aliases, sample_connected_aliases

_BASE_ROWS = {
    "date_dim": 1_800,
    "item": 3_000,
    "customer": 12_000,
    "customer_address": 5_000,
    "customer_demographics": 2_000,
    "store": 60,
    "promotion": 300,
    "store_sales": 40_000,
    "store_returns": 9_000,
    "catalog_sales": 26_000,
    "web_sales": 16_000,
}


def build_dsb_schema() -> Schema:
    """The DSB-like snowflake schema (11 tables)."""
    tables = [
        Table("date_dim", [Column("id"), Column("d_year"), Column("d_moy"), Column("d_dow")]),
        Table("item", [Column("id"), Column("i_category"), Column("i_brand"), Column("i_price")]),
        Table("customer", [Column("id"), Column("c_current_addr_id"), Column("c_demo_id"),
                           Column("c_birth_year")]),
        Table("customer_address", [Column("id"), Column("ca_state"), Column("ca_gmt_offset")]),
        Table("customer_demographics", [Column("id"), Column("cd_gender"),
                                        Column("cd_marital_status")]),
        Table("store", [Column("id"), Column("s_state"), Column("s_number_employees")]),
        Table("promotion", [Column("id"), Column("p_channel")]),
        Table("store_sales", [Column("id"), Column("ss_sold_date_id"), Column("ss_item_id"),
                              Column("ss_customer_id"), Column("ss_store_id"),
                              Column("ss_promo_id"), Column("ss_quantity"), Column("ss_list_price")]),
        Table("store_returns", [Column("id"), Column("sr_returned_date_id"), Column("sr_item_id"),
                                Column("sr_customer_id"), Column("sr_return_quantity")]),
        Table("catalog_sales", [Column("id"), Column("cs_sold_date_id"), Column("cs_item_id"),
                                Column("cs_bill_customer_id"), Column("cs_quantity")]),
        Table("web_sales", [Column("id"), Column("ws_sold_date_id"), Column("ws_item_id"),
                            Column("ws_bill_customer_id"), Column("ws_quantity")]),
    ]
    foreign_keys = [
        ForeignKey("customer", "c_current_addr_id", "customer_address", "id"),
        ForeignKey("customer", "c_demo_id", "customer_demographics", "id"),
        ForeignKey("store_sales", "ss_sold_date_id", "date_dim", "id"),
        ForeignKey("store_sales", "ss_item_id", "item", "id"),
        ForeignKey("store_sales", "ss_customer_id", "customer", "id"),
        ForeignKey("store_sales", "ss_store_id", "store", "id"),
        ForeignKey("store_sales", "ss_promo_id", "promotion", "id"),
        ForeignKey("store_returns", "sr_returned_date_id", "date_dim", "id"),
        ForeignKey("store_returns", "sr_item_id", "item", "id"),
        ForeignKey("store_returns", "sr_customer_id", "customer", "id"),
        ForeignKey("catalog_sales", "cs_sold_date_id", "date_dim", "id"),
        ForeignKey("catalog_sales", "cs_item_id", "item", "id"),
        ForeignKey("catalog_sales", "cs_bill_customer_id", "customer", "id"),
        ForeignKey("web_sales", "ws_sold_date_id", "date_dim", "id"),
        ForeignKey("web_sales", "ws_item_id", "item", "id"),
        ForeignKey("web_sales", "ws_bill_customer_id", "customer", "id"),
    ]
    schema = Schema("dsb", tables, foreign_keys)
    schema.index_all_join_keys()
    return schema


def _dsb_table_specs(scale: float) -> dict[str, TableSpec]:
    def rows(table: str) -> int:
        return max(int(_BASE_ROWS[table] * scale), 4)

    return {
        "date_dim": TableSpec(rows("date_dim"), {
            "d_year": ColumnSpec("uniform", cardinality=6),
            "d_moy": ColumnSpec("uniform", cardinality=12),
            "d_dow": ColumnSpec("uniform", cardinality=7),
        }),
        "item": TableSpec(rows("item"), {
            "i_category": ColumnSpec("categorical", cardinality=10, skew=1.0),
            "i_brand": ColumnSpec("categorical", cardinality=400, skew=1.2),
            "i_price": ColumnSpec("categorical", cardinality=200, skew=1.1),
        }),
        "customer": TableSpec(rows("customer"), {
            "c_birth_year": ColumnSpec("uniform", cardinality=80),
        }, fk_skew=1.1),
        "customer_address": TableSpec(rows("customer_address"), {
            "ca_state": ColumnSpec("categorical", cardinality=50, skew=1.3),
            "ca_gmt_offset": ColumnSpec("categorical", cardinality=6, skew=0.9),
        }),
        "customer_demographics": TableSpec(rows("customer_demographics"), {
            "cd_gender": ColumnSpec("uniform", cardinality=2),
            "cd_marital_status": ColumnSpec("uniform", cardinality=5),
        }),
        "store": TableSpec(rows("store"), {
            "s_state": ColumnSpec("categorical", cardinality=20, skew=1.1),
            "s_number_employees": ColumnSpec("uniform", cardinality=100),
        }),
        "promotion": TableSpec(rows("promotion"), {
            "p_channel": ColumnSpec("uniform", cardinality=4),
        }),
        "store_sales": TableSpec(rows("store_sales"), {
            "ss_quantity": ColumnSpec("categorical", cardinality=100, skew=1.2),
            "ss_list_price": ColumnSpec("derived", cardinality=300, source_column="ss_item_id", noise=0.2),
        }, fk_skew=1.5),
        "store_returns": TableSpec(rows("store_returns"), {
            "sr_return_quantity": ColumnSpec("categorical", cardinality=50, skew=1.3),
        }, fk_skew=1.4),
        "catalog_sales": TableSpec(rows("catalog_sales"), {
            "cs_quantity": ColumnSpec("categorical", cardinality=100, skew=1.2),
        }, fk_skew=1.45),
        "web_sales": TableSpec(rows("web_sales"), {
            "ws_quantity": ColumnSpec("categorical", cardinality=100, skew=1.2),
        }, fk_skew=1.4),
    }


DSB_FILTER_SPECS = {
    "date_dim": FilterSpec(eq_columns=["d_year", "d_moy"]),
    "item": FilterSpec(eq_columns=["i_category", "i_brand"], range_columns=["i_price"]),
    "customer": FilterSpec(range_columns=["c_birth_year"]),
    "customer_address": FilterSpec(eq_columns=["ca_state"]),
    "customer_demographics": FilterSpec(eq_columns=["cd_gender", "cd_marital_status"]),
    "store": FilterSpec(eq_columns=["s_state"]),
    "promotion": FilterSpec(eq_columns=["p_channel"]),
    "store_sales": FilterSpec(range_columns=["ss_quantity", "ss_list_price"]),
    "store_returns": FilterSpec(range_columns=["sr_return_quantity"]),
    "catalog_sales": FilterSpec(range_columns=["cs_quantity"]),
    "web_sales": FilterSpec(range_columns=["ws_quantity"]),
}


def build_dsb_database(scale: float = 1.0, seed: int = 0, noise_sigma: float = 0.0) -> Database:
    """Generate a populated DSB-like database instance."""
    schema = build_dsb_schema()
    generator = DataGenerator(schema, _dsb_table_specs(scale), seed=seed)
    return Database(schema, generator.generate(), noise_sigma=noise_sigma, seed=seed)


def build_dsb_workload(
    scale: float = 1.0,
    seed: int = 0,
    num_templates: int = 30,
    queries_per_template: int = 3,
    noise_sigma: float = 0.0,
    database: Database | None = None,
) -> Workload:
    """The DSB-like workload: 3 generated queries from each of 30 templates."""
    database = database or build_dsb_database(scale=scale, seed=seed, noise_sigma=noise_sigma)
    schema = database.schema
    max_aliases = 2
    graph = schema.alias_k_graph(max_aliases)
    rng = np.random.default_rng((seed, 59))
    queries: list[Query] = []
    for template_index in range(num_templates):
        kind = "agg" if template_index % 2 == 0 else "spj"
        size = int(rng.integers(4, 9))
        aliases = sample_connected_aliases(graph, size, rng)
        template = f"DSB_{kind}_{template_index + 1:02d}"
        for instance in range(queries_per_template):
            queries.append(
                query_from_aliases(
                    schema,
                    graph,
                    aliases,
                    name=f"{template}_{instance + 1}",
                    rng=rng,
                    relations=database.relations,
                    filter_specs=DSB_FILTER_SPECS,
                    filter_probability=0.65,
                    template=template,
                )
            )
    return Workload(
        name="DSB",
        database=database,
        queries=queries,
        max_aliases=max_aliases,
        description="DSB analogue (TPC-DS-style snowflake with skewed distributions)",
    )
