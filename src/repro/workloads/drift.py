"""Data-drift simulation: rolling a database back to an earlier point in time.

The paper models drift on the Stack dataset by deleting every row with a
timestamp after 2017 plus the transitive closure of rows whose foreign keys
became dangling (Section 5.5).  :func:`rollback_to_date` implements exactly
that operation on any database whose tables carry a date column, and
:func:`drift_timeline` produces the sequence of intermediate snapshots used
by the runtimes-vs-date experiment (Figure 7).
"""

from __future__ import annotations

import numpy as np

from repro.db.engine import Database
from repro.db.relation import Relation

#: Default name of the timestamp column consulted by the rollback.
DATE_COLUMN = "creation_date"


def rollback_to_date(
    database: Database, cutoff: int, date_column: str = DATE_COLUMN
) -> Database:
    """Return a new database containing only rows visible at ``cutoff``.

    Rows with ``date_column > cutoff`` are deleted from every table that has
    such a column; rows in other tables whose foreign keys now dangle are then
    deleted transitively until a fixpoint is reached.
    """
    relations: dict[str, Relation] = {}
    for name, relation in database.relations.items():
        if relation.table.has_column(date_column):
            keep = np.flatnonzero(relation.column(date_column) <= cutoff)
            relations[name] = relation.with_rows(keep)
        else:
            relations[name] = relation
    relations = _enforce_referential_integrity(database, relations)
    return database.with_relations(relations)


def _enforce_referential_integrity(
    database: Database, relations: dict[str, Relation]
) -> dict[str, Relation]:
    """Delete rows whose FKs reference deleted rows, transitively."""
    changed = True
    while changed:
        changed = False
        for fk in database.schema.foreign_keys:
            referencing = relations[fk.table]
            referenced = relations[fk.ref_table]
            if referencing.num_rows == 0:
                continue
            valid_keys = referenced.column(fk.ref_column)
            mask = np.isin(referencing.column(fk.column), valid_keys)
            if not mask.all():
                relations[fk.table] = referencing.with_rows(np.flatnonzero(mask))
                changed = True
    return relations


def deletion_fraction(original: Database, rolled_back: Database) -> float:
    """Fraction of all rows removed by a rollback (the paper reports ~20%)."""
    before = sum(rel.num_rows for rel in original.relations.values())
    after = sum(rel.num_rows for rel in rolled_back.relations.values())
    if before == 0:
        return 0.0
    return 1.0 - after / before


def per_table_deletion(original: Database, rolled_back: Database) -> dict[str, float]:
    """Per-table fraction of deleted rows."""
    fractions: dict[str, float] = {}
    for name, relation in original.relations.items():
        before = relation.num_rows
        after = rolled_back.relations[name].num_rows
        fractions[name] = 0.0 if before == 0 else 1.0 - after / before
    return fractions


def drift_timeline(
    database: Database,
    start: int,
    end: int,
    steps: int,
    date_column: str = DATE_COLUMN,
) -> list[tuple[int, Database]]:
    """Snapshots at ``steps`` evenly spaced cutoffs between ``start`` and ``end``.

    The final snapshot (cutoff = ``end``) is the original database if no row
    exceeds ``end``.
    """
    cutoffs = np.linspace(start, end, steps).astype(int)
    return [(int(cutoff), rollback_to_date(database, int(cutoff), date_column)) for cutoff in cutoffs]
