"""Benchmark workloads: JOB, CEB, Stack and DSB analogues plus drift tooling."""

from repro.workloads.base import Workload
from repro.workloads.drift import (
    deletion_fraction,
    drift_timeline,
    per_table_deletion,
    rollback_to_date,
)
from repro.workloads.dsb import build_dsb_database, build_dsb_schema, build_dsb_workload
from repro.workloads.generator import (
    FilterSpec,
    RandomQuerySampler,
    query_from_aliases,
    sample_connected_aliases,
)
from repro.workloads.imdb import (
    build_ceb_workload,
    build_imdb_database,
    build_imdb_schema,
    build_job_workload,
)
from repro.workloads.stack import (
    STACK_DATE_2017,
    STACK_DATE_MAX,
    build_stack_database,
    build_stack_schema,
    build_stack_workload,
)

__all__ = [
    "FilterSpec",
    "RandomQuerySampler",
    "STACK_DATE_2017",
    "STACK_DATE_MAX",
    "Workload",
    "build_ceb_workload",
    "build_dsb_database",
    "build_dsb_schema",
    "build_dsb_workload",
    "build_imdb_database",
    "build_imdb_schema",
    "build_job_workload",
    "build_stack_database",
    "build_stack_schema",
    "build_stack_workload",
    "deletion_fraction",
    "drift_timeline",
    "per_table_deletion",
    "query_from_aliases",
    "rollback_to_date",
    "sample_connected_aliases",
]
