"""Random query generation from a schema's alias-k reference graph.

Two consumers rely on this module:

* the **VAE training-data sampler** (paper Section 4.2) draws ~many random
  PK-FK equijoin queries per schema by selecting random connected subgraphs of
  the alias-k reference graph, and
* the **workload builders** use the same machinery to materialize JOB-, CEB-,
  Stack- and DSB-like query sets with controlled join counts, templates and
  filter literals drawn from the actual data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.db.catalog import Schema, alias_table
from repro.db.query import FilterPredicate, JoinPredicate, Query, TableRef
from repro.db.relation import Relation
from repro.exceptions import QueryError


@dataclass
class FilterSpec:
    """Which columns of a table are eligible for filters and how to filter them.

    ``eq_columns`` receive equality (or small ``in``-list) predicates with
    literals sampled from the stored data; ``range_columns`` receive one-sided
    range predicates anchored at data quantiles.
    """

    eq_columns: list[str] = field(default_factory=list)
    range_columns: list[str] = field(default_factory=list)


def sample_connected_aliases(
    graph: nx.Graph, size: int, rng: np.random.Generator
) -> list[str]:
    """Sample a random connected set of ``size`` nodes from ``graph``.

    Uses randomized breadth-first expansion from a random seed node.  Raises
    :class:`QueryError` if the graph has no connected subgraph of that size
    reachable from the sampled seed after a bounded number of restarts.
    """
    if size < 1:
        raise QueryError("subgraph size must be at least 1")
    nodes = list(graph.nodes)
    if not nodes:
        raise QueryError("cannot sample from an empty graph")
    for _ in range(50):
        start = nodes[rng.integers(0, len(nodes))]
        selected = [start]
        frontier = set(graph.neighbors(start))
        while len(selected) < size and frontier:
            candidates = sorted(frontier)
            pick = candidates[rng.integers(0, len(candidates))]
            selected.append(pick)
            frontier.discard(pick)
            frontier.update(set(graph.neighbors(pick)) - set(selected))
        if len(selected) == size:
            return selected
    raise QueryError(f"could not sample a connected subgraph of size {size}")


def query_from_aliases(
    schema: Schema,
    alias_graph: nx.Graph,
    aliases: list[str],
    name: str,
    rng: np.random.Generator,
    relations: dict[str, Relation] | None = None,
    filter_specs: dict[str, FilterSpec] | None = None,
    filter_probability: float = 0.5,
    template: str | None = None,
) -> Query:
    """Build a query joining ``aliases`` with predicates for every present edge.

    Filters are added per alias with probability ``filter_probability`` using
    literals sampled from ``relations`` (so the predicates are never trivially
    empty) restricted to the columns named in ``filter_specs``.
    """
    alias_set = set(aliases)
    table_refs = [TableRef(alias, alias_table(alias)) for alias in aliases]
    join_predicates: list[JoinPredicate] = []
    for left, right, data in alias_graph.edges(data=True):
        if left not in alias_set or right not in alias_set:
            continue
        fk = data["fk"]
        left_table = alias_table(left)
        if fk.table == left_table:
            join_predicates.append(JoinPredicate(left, fk.column, right, fk.ref_column))
        else:
            join_predicates.append(JoinPredicate(left, fk.ref_column, right, fk.column))
    filters: list[FilterPredicate] = []
    if relations is not None and filter_specs is not None:
        for alias in aliases:
            if rng.random() > filter_probability:
                continue
            predicate = _sample_filter(alias, alias_table(alias), relations, filter_specs, rng)
            if predicate is not None:
                filters.append(predicate)
    query = Query(
        name=name,
        table_refs=table_refs,
        join_predicates=join_predicates,
        filters=filters,
        template=template,
    )
    query.validate_against(schema)
    return query


def _sample_filter(
    alias: str,
    table: str,
    relations: dict[str, Relation],
    filter_specs: dict[str, FilterSpec],
    rng: np.random.Generator,
) -> FilterPredicate | None:
    spec = filter_specs.get(table)
    relation = relations.get(table)
    if spec is None or relation is None or relation.num_rows == 0:
        return None
    candidates: list[tuple[str, str]] = [(column, "eq") for column in spec.eq_columns]
    candidates.extend((column, "range") for column in spec.range_columns)
    if not candidates:
        return None
    column, kind = candidates[rng.integers(0, len(candidates))]
    values = relation.column(column)
    if kind == "eq":
        literal = int(values[rng.integers(0, len(values))])
        if rng.random() < 0.3:
            extras = values[rng.integers(0, len(values), size=2)]
            in_list = sorted({literal, *(int(v) for v in extras)})
            return FilterPredicate(alias, column, "in", tuple(in_list))
        return FilterPredicate(alias, column, "=", literal)
    quantile = float(rng.uniform(0.3, 0.9))
    threshold = int(np.quantile(values, quantile))
    op = ">=" if rng.random() < 0.5 else "<="
    return FilterPredicate(alias, column, op, threshold)


@dataclass
class RandomQuerySampler:
    """Samples random PK-FK equijoin queries for VAE training data.

    Parameters
    ----------
    schema:
        The database schema.
    max_aliases:
        Alias multiplicity ``k`` of the alias-k reference graph.
    relations / filter_specs:
        Optional; when provided, sampled queries also carry filters.
    """

    schema: Schema
    max_aliases: int = 1
    relations: dict[str, Relation] | None = None
    filter_specs: dict[str, FilterSpec] | None = None
    min_tables: int = 3
    max_tables: int = 10

    def __post_init__(self) -> None:
        self._graph = self.schema.alias_k_graph(self.max_aliases)

    def sample(self, count: int, seed: int = 0) -> list[Query]:
        """Sample ``count`` random queries (named ``sampled_<i>``)."""
        rng = np.random.default_rng(seed)
        queries: list[Query] = []
        upper = min(self.max_tables, self._graph.number_of_nodes())
        for i in range(count):
            size = int(rng.integers(self.min_tables, upper + 1))
            aliases = sample_connected_aliases(self._graph, size, rng)
            queries.append(
                query_from_aliases(
                    self.schema,
                    self._graph,
                    aliases,
                    name=f"sampled_{i}",
                    rng=rng,
                    relations=self.relations,
                    filter_specs=self.filter_specs,
                )
            )
        return queries
