"""Configuration of the BayesQO offline optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bo.loop import BATCH_STRATEGIES, SURROGATES
from repro.exceptions import OptimizationError

#: Supported timeout strategies (Figure 5a's ablation arms).
TIMEOUT_STRATEGIES = ("uncertainty", "none", "percentile", "best_seen", "multiplier")
#: Supported initialization strategies (Section 4.4).
INITIALIZATION_STRATEGIES = ("bao", "default", "random", "llm", "provided")
#: Execution backends resolvable by name (see :mod:`repro.exec`).
EXECUTION_BACKENDS = ("inline", "thread", "process", "fabric")
#: Cross-query scheduling policies resolvable by name (see :mod:`repro.exec`).
SCHEDULING_POLICIES = ("round_robin", "budget_aware")


@dataclass
class BayesQOConfig:
    """All knobs of a BayesQO run.

    The defaults correspond to the configuration used for the headline
    experiments: Bao-hint initialization, the censored GP surrogate, trust
    region local BO and uncertainty-based timeouts.
    """

    # Budget -----------------------------------------------------------------
    #: Maximum number of plan executions (the paper uses 4000 per query).
    max_executions: int = 100
    #: Optional cap on the total simulated execution time (seconds).
    time_budget: float | None = None

    # Surrogate / acquisition --------------------------------------------------
    surrogate: str = "censored_gp"
    use_trust_region: bool = True
    num_candidates: int = 256
    thompson_samples: int = 1
    #: Full hyper-parameter refit cadence of the surrogate; between refits new
    #: observations are absorbed with O(n^2) warm updates (1 = always refit).
    refit_every: int = 5
    #: How ``suggest_batch`` spreads q concurrent picks: ``"fantasize"``
    #: (constant-liar conditioning) or ``"thompson"`` (independent draws).
    #: Only consulted when the harness asks for more than one plan in flight.
    batch_strategy: str = "fantasize"

    # Timeouts -----------------------------------------------------------------
    timeout_strategy: str = "uncertainty"
    #: Confidence multiplier kappa of the uncertainty rule.
    timeout_kappa: float = 1.0
    #: Upper cap on any timeout, as a multiple of the best latency seen so far.
    timeout_max_multiplier: float = 16.0
    #: Percentile used by the "percentile" strategy (0 reproduces "best seen").
    timeout_percentile: float = 10.0
    #: Multiplier used by the "multiplier" strategy (Balsa uses 1.5).
    timeout_multiplier: float = 1.5
    #: Whether censored observations are fed back to the surrogate (ablation).
    learn_from_timeouts: bool = True

    # Initialization -----------------------------------------------------------
    initialization: str = "bao"
    #: Number of random/LLM initialization plans when those strategies are used.
    num_initial_plans: int = 50

    # Reproducibility ----------------------------------------------------------
    seed: int = 0

    #: Free-form metadata recorded in results (used by the harness).
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_executions < 1:
            raise OptimizationError("max_executions must be at least 1")
        if self.refit_every < 1:
            raise OptimizationError("refit_every must be at least 1")
        if self.surrogate not in SURROGATES:
            raise OptimizationError(f"unknown surrogate {self.surrogate!r}")
        if self.batch_strategy not in BATCH_STRATEGIES:
            raise OptimizationError(
                f"unknown batch strategy {self.batch_strategy!r}; pick one of {BATCH_STRATEGIES}"
            )
        if self.timeout_strategy not in TIMEOUT_STRATEGIES:
            raise OptimizationError(
                f"unknown timeout strategy {self.timeout_strategy!r}; pick one of {TIMEOUT_STRATEGIES}"
            )
        if self.initialization not in INITIALIZATION_STRATEGIES:
            raise OptimizationError(
                f"unknown initialization {self.initialization!r}; pick one of {INITIALIZATION_STRATEGIES}"
            )
        if self.timeout_kappa < 0:
            raise OptimizationError("timeout_kappa must be non-negative")
        if not 0.0 <= self.timeout_percentile <= 100.0:
            raise OptimizationError("timeout_percentile must be in [0, 100]")
        if self.timeout_max_multiplier < 1.0:
            raise OptimizationError("timeout_max_multiplier must be at least 1")


def validate_batch_size(batch_size: int | str) -> None:
    """Shared validation of the q knob: a positive int or ``"auto"``."""
    if isinstance(batch_size, str):
        if batch_size != "auto":
            raise OptimizationError(
                f"batch_size must be a positive int or 'auto', got {batch_size!r}"
            )
    elif batch_size < 1:
        raise OptimizationError("batch_size must be at least 1")


@dataclass
class ExecutionServiceConfig:
    """How a :class:`~repro.harness.runner.WorkloadSession` executes plans.

    Selects one of the :mod:`repro.exec` backends and a cross-query
    scheduling policy.  The defaults reproduce the pre-subsystem behaviour
    exactly: inline execution on the scheduler thread, queries visited
    round-robin.
    """

    #: ``"inline"`` (scheduler thread), ``"thread"`` (overlap DBMS waiting),
    #: ``"process"`` (worker processes with warm database replicas, for
    #: CPU-bound executions), or ``"fabric"`` (shared-nothing node processes
    #: behind the lease-based socket coordinator).
    backend: str = "inline"
    #: Concurrent plan executions per backend instance.
    max_workers: int = 1
    #: ``"round_robin"`` or ``"budget_aware"`` (spend remaining budget on the
    #: queries whose surrogate predicts the largest expected improvement).
    policy: str = "round_robin"
    #: Proposals held in flight *per query* (the batched-ask q knob).  With
    #: ``q > 1`` techniques advertising ``supports_batch`` in the registry
    #: keep up to q plans executing concurrently for one query — what lets a
    #: single-query workload saturate a process pool; other techniques fall
    #: back to q=1 transparently.  ``1`` reproduces single-proposal behaviour
    #: bit-for-bit.  ``"auto"`` hands the knob to a
    #: :class:`~repro.harness.batching.BatchSizeController`, which widens q
    #: toward the backend capacity while workers idle and narrows it when
    #: per-observation improvement stalls (traces then depend on completion
    #: timing, like any q > 1 run).
    batch_size: int | str = 1
    #: One-pass batch execution of a query's in-flight q proposals: when a
    #: state issues more than one proposal in a scheduling round, they are
    #: submitted as a single backend batch and shared join subtrees execute
    #: once (``Executor.run_batch``).  Results are bit-for-bit identical to
    #: per-request submission — batching only dedups work.  At q=1 (one
    #: proposal per round) there is nothing to group and the scheduler
    #: transparently falls back to per-request submission.  Wrapper layers
    #: without a batch path (supervisor, fault injection, router) also fall
    #: back transparently.
    batch_execution: bool = True
    #: Execution memoization (see :mod:`repro.db.plan_cache`): replay
    #: repeated ``(query, plan)`` executions and reuse join-subtree
    #: intermediates across overlapping plans of the same query.  Results
    #: are bit-for-bit identical either way; ``False`` only forgoes the
    #: speedup.  ``None`` (the default) leaves the database's own
    #: ``exec_cache`` configuration untouched — the database enables
    #: caching by default; setting ``True``/``False`` here overrides it for
    #: the session's database and, through pickling, for every process-pool
    #: worker replica (each worker holds its own private cache).
    plan_cache: bool | None = None
    #: Byte budget for memoized subplan intermediates, per cache instance;
    #: ``None`` keeps the database's configured budget.
    plan_cache_bytes: int | None = None
    #: Independent backend instances; ``> 1`` fans executions out over a
    #: :class:`~repro.exec.MultiBackendRouter` with health/occupancy tracking.
    replicas: int = 1
    #: Infrastructure failures tolerated per replica before the router stops
    #: routing to it.
    max_failures: int = 3
    #: Multiprocessing start method for the process backend (``None`` prefers
    #: ``fork`` where available — worker replicas inherit the database without
    #: a per-worker pickle round-trip).
    start_method: str | None = None
    #: Whether process workers pre-plan every query at startup so the replica
    #: is warm before the first real execution.
    warmup: bool = True
    #: Node processes of the ``"fabric"`` backend (localhost shared-nothing
    #: replicas behind the lease-based coordinator, see
    #: :mod:`repro.exec.fabric`).
    fabric_nodes: int = 2
    #: Heartbeat ping cadence per node link.
    fabric_heartbeat_interval: float = 0.25
    #: Liveness deadline: a node silent this long is declared lost and its
    #: in-flight leases are reassigned.
    fabric_heartbeat_timeout: float = 2.0
    #: A :class:`~repro.exec.NetworkFaultConfig` (duck-typed, like
    #: ``fault_injection``) injecting seeded connection drops, partitions,
    #: slow links and node kills at the fabric boundary; ``None`` disables.
    fabric_network_faults: object | None = None

    # Fault tolerance ---------------------------------------------------------
    #: Wrap the backend in a :class:`~repro.exec.SupervisedBackend` (hang
    #: watchdogs, retry with backoff, pool rebuild, degradation to inline
    #: execution).  Implied by setting ``request_deadline``.
    supervised: bool = False
    #: Wall-clock seconds one execution attempt may run before the supervisor
    #: declares it hung and retries it.  ``None`` disables the watchdog.
    request_deadline: float | None = None
    #: Supervisor retries per request beyond the first attempt (only
    #: infrastructure failures are retried; genuine plan errors propagate).
    max_retries: int = 3
    #: Exponential backoff between retries: attempt k waits
    #: ``min(backoff_max, backoff_base * 2**k)`` plus deterministic jitter.
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    #: Jitter fraction on top of the backoff delay (0 disables jitter).
    backoff_jitter: float = 0.25
    #: How many times the supervisor rebuilds a broken process pool before
    #: degrading to inline execution on the scheduler thread.
    pool_rebuilds: int = 2
    #: Router probation: a replica that exhausts ``max_failures`` sits out
    #: this many seconds (doubling per relapse), then gets a half-open probe
    #: instead of being retired forever.  ``None`` restores permanent
    #: retirement.
    probation_seconds: float | None = 30.0
    #: A :class:`~repro.exec.FaultInjectionConfig` (kept duck-typed here to
    #: avoid a config -> exec import cycle); ``None`` disables injection.
    #: When set, the backend is wrapped in a
    #: :class:`~repro.exec.FaultInjectionBackend` *inside* the supervision
    #: layer, so injected faults exercise the real recovery paths.
    fault_injection: object | None = None

    # Checkpoint / resume -----------------------------------------------------
    #: Where the session persists its checkpoint (optimizer states, budget
    #: ledgers, plan-cache outcome logs).  ``None`` disables checkpointing.
    #: Checkpointed runs are pinned to the sequential scheduler so a resumed
    #: session replays bit-for-bit.
    checkpoint_path: str | None = None
    #: Persist a checkpoint every N observations (and at query boundaries).
    checkpoint_every: int = 25

    def __post_init__(self) -> None:
        if self.backend not in EXECUTION_BACKENDS:
            raise OptimizationError(
                f"unknown execution backend {self.backend!r}; pick one of {EXECUTION_BACKENDS}"
            )
        if self.policy not in SCHEDULING_POLICIES:
            raise OptimizationError(
                f"unknown scheduling policy {self.policy!r}; pick one of {SCHEDULING_POLICIES}"
            )
        if self.max_workers < 1:
            raise OptimizationError("max_workers must be at least 1")
        validate_batch_size(self.batch_size)
        if self.plan_cache_bytes is not None and self.plan_cache_bytes < 0:
            raise OptimizationError("plan_cache_bytes must be non-negative")
        if self.replicas < 1:
            raise OptimizationError("replicas must be at least 1")
        if self.max_failures < 1:
            raise OptimizationError("max_failures must be at least 1")
        if self.request_deadline is not None and self.request_deadline <= 0:
            raise OptimizationError("request_deadline must be positive")
        if self.max_retries < 0:
            raise OptimizationError("max_retries must be non-negative")
        if self.backoff_base <= 0:
            raise OptimizationError("backoff_base must be positive")
        if self.backoff_max < self.backoff_base:
            raise OptimizationError("backoff_max must be at least backoff_base")
        if self.backoff_jitter < 0:
            raise OptimizationError("backoff_jitter must be non-negative")
        if self.pool_rebuilds < 0:
            raise OptimizationError("pool_rebuilds must be non-negative")
        if self.probation_seconds is not None and self.probation_seconds <= 0:
            raise OptimizationError("probation_seconds must be positive")
        if self.fabric_nodes < 1:
            raise OptimizationError("fabric_nodes must be at least 1")
        if self.fabric_heartbeat_interval <= 0:
            raise OptimizationError("fabric_heartbeat_interval must be positive")
        if self.fabric_heartbeat_timeout <= self.fabric_heartbeat_interval:
            raise OptimizationError(
                "fabric_heartbeat_timeout must exceed fabric_heartbeat_interval"
            )
        if self.checkpoint_every < 1:
            raise OptimizationError("checkpoint_every must be at least 1")


@dataclass
class VAETrainingConfig:
    """How the per-schema latent space is built (shared across queries)."""

    latent_dim: int = 24
    embed_dim: int = 16
    hidden_dim: int = 256
    training_steps: int = 2500
    corpus_queries: int = 250
    max_tables: int = 10
    beta: float = 0.02
    seed: int = 0
