"""The ask/tell optimizer protocol shared by every technique.

Classic SMBO frameworks expose the optimizer as a steppable object so that a
harness can own the loop; this module defines that contract for the offline
query-planning setting.  Every technique (BayesQO, Bao, Random, Balsa, LimeQO)
implements the same four-phase protocol:

1. ``start(query, budget=...)`` builds a resumable :class:`OptimizerState`,
2. ``suggest(state)`` proposes the next plan to execute (a
   :class:`PlanProposal`, with its per-plan timeout already chosen), or
   ``None`` when the technique has nothing left to try,
3. ``observe(state, outcome)`` feeds the :class:`ExecutionOutcome` of the
   pending proposal back into the technique's model,
4. ``finish(state)`` returns the completed
   :class:`~repro.core.result.OptimizationResult` trace.

The caller — usually :class:`repro.harness.runner.WorkloadSession` — executes
plans against the database and enforces the :class:`BudgetSpec`.  Inverting the
loops this way is what lets the harness interleave many per-query optimizers
under one shared budget and run their plan executions concurrently.

Workload-level techniques (LimeQO decides *which query* to spend budget on
next) implement the :class:`WorkloadOptimizer` variant: ``start_workload``
over all queries at once, with each :class:`PlanProposal` naming the query it
belongs to, and a shared workload-level budget.

:func:`drive_query` / :func:`drive_workload` are the reference loop owners;
the legacy blocking ``optimize(...)`` methods on each technique are thin
deprecation shims over them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.result import OptimizationResult, TraceRecord
from repro.db.query import Query
from repro.exceptions import OptimizationError
from repro.plans.jointree import JoinTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.engine import Database
    from repro.db.executor import ExecutionResult


# --------------------------------------------------------------------- budget
@dataclass(frozen=True)
class BudgetSpec:
    """The Section 5.2 budget model: execution count and/or simulated time.

    For per-query techniques the spec is charged per query; workload-level
    techniques are charged against :meth:`scaled` (the same per-query budget
    multiplied by the number of queries), so every technique pays for plan
    executions on identical terms.  ``max_executions=None`` leaves the count
    axis unbounded (Bao's fixed 49-plan space is naturally bounded instead).
    """

    max_executions: int | None = 60
    time_budget: float | None = None

    def exhausted(self, progress) -> bool:
        """Whether ``progress`` (anything with ``num_executions`` and
        ``total_cost``) has consumed this budget."""
        if self.max_executions is not None and progress.num_executions >= self.max_executions:
            return True
        if self.time_budget is not None and progress.total_cost >= self.time_budget:
            return True
        return False

    def remaining_executions(self, progress) -> float:
        """Executions left for ``progress`` (``inf`` when the axis is unbounded)."""
        if self.max_executions is None:
            return float("inf")
        return max(0.0, float(self.max_executions - progress.num_executions))

    def remaining_time(self, progress) -> float:
        """Time budget left for ``progress`` (``inf`` when the axis is unbounded)."""
        if self.time_budget is None:
            return float("inf")
        return max(0.0, float(self.time_budget - progress.total_cost))

    def scaled(self, factor: int) -> "BudgetSpec":
        """The workload-level pool: both axes multiplied by ``factor`` queries."""
        return BudgetSpec(
            max_executions=None if self.max_executions is None else self.max_executions * factor,
            time_budget=None if self.time_budget is None else self.time_budget * factor,
        )

    def without_execution_cap(self) -> "BudgetSpec":
        """The same budget with the execution-count axis removed."""
        return replace(self, max_executions=None)


# ----------------------------------------------------------------- vocabulary
@dataclass(frozen=True)
class PlanProposal:
    """One plan the optimizer wants executed, with its chosen timeout.

    ``query`` names the query the plan belongs to — always the state's query
    for per-query optimizers, but meaningful for workload-level techniques
    that pick which query to spend budget on.  ``metadata`` carries
    technique-private context (e.g. the latent vector a plan was decoded
    from) back to ``observe``.
    """

    plan: JoinTree
    timeout: float | None = None
    source: str = "bo"
    query: Query | None = None
    metadata: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ExecutionOutcome:
    """What happened when the harness executed a proposal's plan."""

    latency: float
    timed_out: bool = False
    timeout: float | None = None

    @classmethod
    def from_execution(
        cls, execution: "ExecutionResult", timeout: float | None = None
    ) -> "ExecutionOutcome":
        return cls(
            latency=execution.latency,
            timed_out=execution.timed_out,
            timeout=timeout if timeout is not None else execution.timeout,
        )


# ---------------------------------------------------------------------- state
class _PendingProposal:
    """The one-outstanding-proposal invariant shared by both state shapes.

    At most one proposal is outstanding per state: ``suggest`` parks it in
    ``pending`` and ``observe`` consumes it, which is the invariant that makes
    interleaving states across a thread pool safe.  Subclasses provide
    ``_describe()`` (for error messages), ``_validate_proposal`` and
    ``_result_for`` (which trace the outcome lands in).
    """

    pending: PlanProposal | None

    def require_idle(self) -> None:
        """Reject a ``suggest`` while a proposal is outstanding.

        Called at the *top* of every ``suggest`` implementation, before any
        state mutation, so a protocol violation leaves the state untouched
        (no hint skipped, no RNG draw burned) and the pending proposal can
        still be observed.
        """
        if self.pending is not None:
            raise OptimizationError(
                f"{self._describe()} already has a pending proposal; "
                "observe() its outcome before suggesting again"
            )

    def park(self, proposal: PlanProposal) -> PlanProposal:
        """Record ``proposal`` as the outstanding one and return it."""
        self.require_idle()
        self._validate_proposal(proposal)
        self.pending = proposal
        return proposal

    def record_pending(self, outcome: ExecutionOutcome) -> TraceRecord:
        """Consume the pending proposal, appending its outcome to the trace."""
        proposal = self.take_pending()
        return self._result_for(proposal).record(
            proposal.plan, outcome.latency, outcome.timed_out, proposal.timeout, proposal.source
        )

    def take_pending(self) -> PlanProposal:
        if self.pending is None:
            raise OptimizationError(
                f"no pending proposal for {self._describe()}; call suggest() first"
            )
        proposal, self.pending = self.pending, None
        return proposal

    def _validate_proposal(self, proposal: PlanProposal) -> None:
        pass

    def _result_for(self, proposal: PlanProposal) -> OptimizationResult:
        raise NotImplementedError

    def _describe(self) -> str:
        raise NotImplementedError


@dataclass
class OptimizerState(_PendingProposal):
    """Resumable per-query optimizer state.

    Techniques subclass this with their private fields (surrogate engines,
    RNGs, plan caches).
    """

    query: Query
    result: OptimizationResult
    budget: BudgetSpec = field(default_factory=BudgetSpec)
    pending: PlanProposal | None = None
    #: Set when the optimizer has nothing left to suggest (hint space drained,
    #: iteration cap reached) independent of the budget.
    exhausted: bool = False

    def budget_left(self) -> bool:
        return not self.exhausted and not self.budget.exhausted(self.result)

    def _result_for(self, proposal: PlanProposal) -> OptimizationResult:
        return self.result

    def _describe(self) -> str:
        return f"state for {self.query.name!r}"


@dataclass
class WorkloadOptimizerState(_PendingProposal):
    """Resumable state of a workload-level optimizer (e.g. LimeQO).

    One state spans every query; the budget is the workload-level pool
    (:meth:`BudgetSpec.scaled`), and executions for any query charge it.
    """

    queries: list[Query]
    results: dict[str, OptimizationResult]
    budget: BudgetSpec = field(default_factory=lambda: BudgetSpec(max_executions=None))
    pending: PlanProposal | None = None
    exhausted: bool = False

    @property
    def num_executions(self) -> int:
        return sum(result.num_executions for result in self.results.values())

    @property
    def total_cost(self) -> float:
        return sum(result.total_cost for result in self.results.values())

    def budget_left(self) -> bool:
        return not self.exhausted and not self.budget.exhausted(self)

    def _validate_proposal(self, proposal: PlanProposal) -> None:
        if proposal.query is None:
            raise OptimizationError("workload-level proposals must name their query")

    def _result_for(self, proposal: PlanProposal) -> OptimizationResult:
        return self.results[proposal.query.name]

    def _describe(self) -> str:
        return "workload state"


# ------------------------------------------------------------------ protocols
@runtime_checkable
class Optimizer(Protocol):
    """A per-query steppable optimizer."""

    def start(self, query: Query, budget: BudgetSpec | None = None) -> OptimizerState:
        """Build a resumable state for one query."""

    def suggest(self, state: OptimizerState) -> PlanProposal | None:
        """Propose the next plan, or ``None`` when nothing is left to try.

        The proposal is parked in ``state.pending`` (via ``state.park``); the
        matching ``observe`` call consumes it.
        """

    def observe(self, state: OptimizerState, outcome: ExecutionOutcome) -> None:
        """Feed the pending proposal's execution outcome back to the model."""

    def finish(self, state: OptimizerState) -> OptimizationResult:
        """Close the state and return its trace."""


@runtime_checkable
class WorkloadOptimizer(Protocol):
    """A workload-level steppable optimizer (decides which query to spend on)."""

    def start_workload(
        self, queries: list[Query], budget: BudgetSpec | None = None
    ) -> WorkloadOptimizerState:
        """Build one resumable state covering every query."""

    def suggest(self, state: WorkloadOptimizerState) -> PlanProposal | None: ...

    def observe(self, state: WorkloadOptimizerState, outcome: ExecutionOutcome) -> None: ...

    def finish_workload(self, state: WorkloadOptimizerState) -> dict[str, OptimizationResult]:
        """Close the state and return per-query traces."""


# -------------------------------------------------------------------- drivers
def drive_state(optimizer, database: "Database", state) -> None:
    """Run one state's suggest/execute/observe loop until its budget is spent.

    The reference single-threaded loop owner; works for both per-query and
    workload-level states (proposals name their query in the latter case).
    """
    while state.budget_left():
        proposal = optimizer.suggest(state)
        if proposal is None:
            state.exhausted = True
            break
        query = proposal.query if proposal.query is not None else state.query
        execution = database.execute(query, proposal.plan, timeout=proposal.timeout)
        optimizer.observe(state, ExecutionOutcome.from_execution(execution, proposal.timeout))


def drive_query(
    optimizer,
    database: "Database",
    query: Query,
    budget: BudgetSpec | None = None,
    **start_kwargs,
) -> OptimizationResult:
    """Start, drive and finish one per-query optimizer run."""
    state = optimizer.start(query, budget=budget, **start_kwargs)
    drive_state(optimizer, database, state)
    return optimizer.finish(state)


def drive_workload(
    optimizer,
    database: "Database",
    queries: list[Query],
    budget: BudgetSpec | None = None,
) -> dict[str, OptimizationResult]:
    """Start, drive and finish one workload-level optimizer run."""
    state = optimizer.start_workload(queries, budget=budget)
    drive_state(optimizer, database, state)
    return optimizer.finish_workload(state)
