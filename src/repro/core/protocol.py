"""The ask/tell optimizer protocol shared by every technique.

Classic SMBO frameworks expose the optimizer as a steppable object so that a
harness can own the loop; this module defines that contract for the offline
query-planning setting.  Every technique (BayesQO, Bao, Random, Balsa, LimeQO)
implements the same four-phase protocol:

1. ``start(query, budget=...)`` builds a resumable :class:`OptimizerState`,
2. ``suggest(state)`` proposes the next plan to execute (a
   :class:`PlanProposal`, with its per-plan timeout already chosen), or
   ``None`` when the technique has nothing left to try,
3. ``observe(state, outcome)`` feeds the :class:`ExecutionOutcome` of a
   pending proposal back into the technique's model,
4. ``finish(state)`` returns the completed
   :class:`~repro.core.result.OptimizationResult` trace.

The caller — usually :class:`repro.harness.runner.WorkloadSession` — executes
plans against the database and enforces the :class:`BudgetSpec`.  Inverting the
loops this way is what lets the harness interleave many per-query optimizers
under one shared budget and run their plan executions concurrently.

Batched proposals
-----------------

Techniques that can keep several plans in flight for *one* query implement
the :class:`BatchOptimizer` extension: ``suggest_batch(state, q)`` returns up
to ``q`` proposals, each carrying a unique ``proposal_id``, and ``observe``
resolves them individually and **out of order** (the outcome names the
proposal it answers via ``ExecutionOutcome.proposal_id``; an outcome without
an id resolves the sole outstanding proposal, which is the q=1 case).  The
registry advertises the capability with its ``supports_batch`` flag; callers
fall back to plain ``suggest`` — exactly one proposal outstanding at a time —
for everything else, so ``q=1`` behaviour is bit-for-bit what it always was.

Workload-level techniques (LimeQO decides *which query* to spend budget on
next) implement the :class:`WorkloadOptimizer` variant: ``start_workload``
over all queries at once, with each :class:`PlanProposal` naming the query it
belongs to, and a shared workload-level budget.

:func:`drive_query` / :func:`drive_workload` are the reference loop owners;
the legacy blocking ``optimize(...)`` methods on each technique are thin
deprecation shims over them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.result import OptimizationResult, TraceRecord
from repro.db.plan_cache import CacheStats
from repro.db.query import Query
from repro.exceptions import OptimizationError
from repro.plans.jointree import JoinTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.engine import Database
    from repro.db.executor import ExecutionResult


# --------------------------------------------------------------------- budget
@dataclass(frozen=True)
class BudgetSpec:
    """The Section 5.2 budget model: execution count and/or simulated time.

    For per-query techniques the spec is charged per query; workload-level
    techniques are charged against :meth:`scaled` (the same per-query budget
    multiplied by the number of queries), so every technique pays for plan
    executions on identical terms.  ``max_executions=None`` leaves the count
    axis unbounded (Bao's fixed 49-plan space is naturally bounded instead).
    """

    max_executions: int | None = 60
    time_budget: float | None = None

    def exhausted(self, progress) -> bool:
        """Whether ``progress`` (anything with ``num_executions`` and
        ``total_cost``) has consumed this budget."""
        if self.max_executions is not None and progress.num_executions >= self.max_executions:
            return True
        if self.time_budget is not None and progress.total_cost >= self.time_budget:
            return True
        return False

    def remaining_executions(self, progress) -> float:
        """Executions left for ``progress`` (``inf`` when the axis is unbounded)."""
        if self.max_executions is None:
            return float("inf")
        return max(0.0, float(self.max_executions - progress.num_executions))

    def remaining_time(self, progress) -> float:
        """Time budget left for ``progress`` (``inf`` when the axis is unbounded)."""
        if self.time_budget is None:
            return float("inf")
        return max(0.0, float(self.time_budget - progress.total_cost))

    def scaled(self, factor: int) -> "BudgetSpec":
        """The workload-level pool: both axes multiplied by ``factor`` queries."""
        return BudgetSpec(
            max_executions=None if self.max_executions is None else self.max_executions * factor,
            time_budget=None if self.time_budget is None else self.time_budget * factor,
        )

    def without_execution_cap(self) -> "BudgetSpec":
        """The same budget with the execution-count axis removed."""
        return replace(self, max_executions=None)


# ----------------------------------------------------------------- vocabulary
@dataclass(frozen=True)
class PlanProposal:
    """One plan the optimizer wants executed, with its chosen timeout.

    ``query`` names the query the plan belongs to — always the state's query
    for per-query optimizers, but meaningful for workload-level techniques
    that pick which query to spend budget on.  ``metadata`` carries
    technique-private context (e.g. the latent vector a plan was decoded
    from) back to ``observe``.  ``proposal_id`` is assigned when the proposal
    is parked in its state (unique per state), and is what lets batched
    callers resolve outcomes out of order.
    """

    plan: JoinTree
    timeout: float | None = None
    source: str = "bo"
    query: Query | None = None
    metadata: dict = field(default_factory=dict)
    proposal_id: int | None = None


@dataclass(frozen=True)
class ExecutionOutcome:
    """What happened when the harness executed a proposal's plan.

    ``proposal_id`` names the proposal this outcome answers; ``None`` (the
    q=1 default) resolves the sole outstanding proposal of the state.
    ``cache`` carries the execution-memoization stats of the run that
    produced this outcome (``None`` when caching is off or the executing
    database predates the cache layer); it crosses process boundaries as a
    plain frozen dataclass, which is how per-worker cache activity surfaces
    to the scheduler.
    """

    latency: float
    timed_out: bool = False
    timeout: float | None = None
    proposal_id: int | None = None
    cache: CacheStats | None = None
    #: How many execution attempts it took to produce this outcome (1 =
    #: first try).  Stamped by the supervision layer
    #: (:class:`~repro.exec.supervisor.SupervisedBackend`); purely
    #: observational — traces and budget charging ignore it.
    attempts: int = 1
    #: Spans recorded by the executing actor's own tracer
    #: (:class:`~repro.obs.tracer.SpanRecord` tuple) — how a process-pool
    #: worker's telemetry rides back to the scheduler, exactly like ``cache``.
    #: Empty unless tracing is enabled on the executing side; purely
    #: observational.
    spans: tuple = ()

    @classmethod
    def from_execution(
        cls,
        execution: "ExecutionResult",
        timeout: float | None = None,
        proposal_id: int | None = None,
    ) -> "ExecutionOutcome":
        return cls(
            latency=execution.latency,
            timed_out=execution.timed_out,
            timeout=timeout if timeout is not None else execution.timeout,
            proposal_id=proposal_id,
            # getattr: duck-typed ExecutionResults (test fakes, wrappers) may
            # predate the cache field.
            cache=getattr(execution, "cache", None),
        )


# ---------------------------------------------------------------------- state
class _ProposalLedger:
    """Multi-proposal bookkeeping shared by both state shapes.

    ``suggest``/``suggest_batch`` park proposals in ``outstanding`` (a dict
    keyed by per-state proposal id) and ``observe`` consumes them — by id, in
    any order, or implicitly when exactly one is outstanding.  Single-proposal
    techniques keep the historical invariant through :meth:`park`, which
    refuses to issue while anything is outstanding; the :attr:`pending`
    property preserves the old one-slot view for them.  Subclasses provide
    ``_describe()`` (for error messages), ``_validate_proposal`` and
    ``_result_for`` (which trace the outcome lands in).
    """

    outstanding: dict[int, PlanProposal]
    proposal_counter: int

    @property
    def pending(self) -> PlanProposal | None:
        """The sole outstanding proposal (the single-proposal view).

        ``None`` when nothing is outstanding; raises when several proposals
        are in flight — batched callers must resolve by ``proposal_id``.
        """
        if not self.outstanding:
            return None
        if len(self.outstanding) > 1:
            raise OptimizationError(
                f"{self._describe()} has {len(self.outstanding)} proposals outstanding; "
                "resolve them by proposal_id"
            )
        return next(iter(self.outstanding.values()))

    @property
    def outstanding_count(self) -> int:
        return len(self.outstanding)

    def require_idle(self) -> None:
        """Reject a single-proposal ``suggest`` while a proposal is outstanding.

        Called at the *top* of every ``suggest`` implementation, before any
        state mutation, so a protocol violation leaves the state untouched
        (no hint skipped, no RNG draw burned) and the pending proposal can
        still be observed.
        """
        if self.outstanding:
            raise OptimizationError(
                f"{self._describe()} already has a pending proposal; "
                "observe() its outcome before suggesting again"
            )

    def park(self, proposal: PlanProposal) -> PlanProposal:
        """Record ``proposal`` as the *sole* outstanding one and return it."""
        self.require_idle()
        return self.enqueue(proposal)

    def enqueue(self, proposal: PlanProposal) -> PlanProposal:
        """Record one more outstanding proposal (the batched parking path).

        Assigns the proposal its per-state id and returns the stored (id-
        stamped) proposal — callers must hand *that* object to the executor
        so the outcome can name it.
        """
        self._validate_proposal(proposal)
        proposal = dataclasses.replace(proposal, proposal_id=self.proposal_counter)
        self.proposal_counter += 1
        self.outstanding[proposal.proposal_id] = proposal
        return proposal

    def resolve(self, outcome: ExecutionOutcome) -> tuple[PlanProposal, TraceRecord]:
        """Consume the proposal ``outcome`` answers, appending it to the trace.

        Resolution is by ``outcome.proposal_id`` when set; otherwise the sole
        outstanding proposal is taken (the q=1 path).  Returns the consumed
        proposal together with the trace record, so ``observe``
        implementations can read technique-private metadata.
        """
        proposal = self.take_pending(outcome.proposal_id)
        record = self._result_for(proposal).record(
            proposal.plan, outcome.latency, outcome.timed_out, proposal.timeout, proposal.source
        )
        return proposal, record

    def record_pending(self, outcome: ExecutionOutcome) -> TraceRecord:
        """Consume a pending proposal, appending its outcome to the trace."""
        return self.resolve(outcome)[1]

    def take_pending(self, proposal_id: int | None = None) -> PlanProposal:
        if not self.outstanding:
            raise OptimizationError(
                f"no pending proposal for {self._describe()}; call suggest() first"
            )
        if proposal_id is None:
            if len(self.outstanding) > 1:
                raise OptimizationError(
                    f"{self._describe()} has {len(self.outstanding)} proposals outstanding; "
                    "the outcome must name its proposal_id"
                )
            proposal_id = next(iter(self.outstanding))
        try:
            return self.outstanding.pop(proposal_id)
        except KeyError:
            raise OptimizationError(
                f"no outstanding proposal {proposal_id!r} for {self._describe()}"
            ) from None

    def _validate_proposal(self, proposal: PlanProposal) -> None:
        pass

    def _result_for(self, proposal: PlanProposal) -> OptimizationResult:
        raise NotImplementedError

    def _describe(self) -> str:
        raise NotImplementedError


#: Backwards-compatible alias (the PR 2 name for the bookkeeping mixin).
_PendingProposal = _ProposalLedger


@dataclass
class OptimizerState(_ProposalLedger):
    """Resumable per-query optimizer state.

    Techniques subclass this with their private fields (surrogate engines,
    RNGs, plan caches).
    """

    query: Query
    result: OptimizationResult
    budget: BudgetSpec = field(default_factory=BudgetSpec)
    outstanding: dict = field(default_factory=dict)
    proposal_counter: int = 0
    #: Set when the optimizer has nothing left to suggest (hint space drained,
    #: iteration cap reached) independent of the budget.
    exhausted: bool = False

    @property
    def progress(self):
        """What the budget is charged against (``num_executions``/``total_cost``)."""
        return self.result

    def budget_left(self) -> bool:
        return not self.exhausted and not self.budget.exhausted(self.progress)

    def _result_for(self, proposal: PlanProposal) -> OptimizationResult:
        return self.result

    def _describe(self) -> str:
        return f"state for {self.query.name!r}"


@dataclass
class WorkloadOptimizerState(_ProposalLedger):
    """Resumable state of a workload-level optimizer (e.g. LimeQO).

    One state spans every query; the budget is the workload-level pool
    (:meth:`BudgetSpec.scaled`), and executions for any query charge it.
    """

    queries: list[Query]
    results: dict[str, OptimizationResult]
    budget: BudgetSpec = field(default_factory=lambda: BudgetSpec(max_executions=None))
    outstanding: dict = field(default_factory=dict)
    proposal_counter: int = 0
    exhausted: bool = False

    @property
    def num_executions(self) -> int:
        return sum(result.num_executions for result in self.results.values())

    @property
    def total_cost(self) -> float:
        return sum(result.total_cost for result in self.results.values())

    @property
    def progress(self):
        """The budget is charged against the whole-workload totals."""
        return self

    def budget_left(self) -> bool:
        return not self.exhausted and not self.budget.exhausted(self.progress)

    def _validate_proposal(self, proposal: PlanProposal) -> None:
        if proposal.query is None:
            raise OptimizationError("workload-level proposals must name their query")

    def _result_for(self, proposal: PlanProposal) -> OptimizationResult:
        return self.results[proposal.query.name]

    def _describe(self) -> str:
        return "workload state"


# ------------------------------------------------------------------ protocols
@runtime_checkable
class Optimizer(Protocol):
    """A per-query steppable optimizer."""

    def start(self, query: Query, budget: BudgetSpec | None = None) -> OptimizerState:
        """Build a resumable state for one query."""

    def suggest(self, state: OptimizerState) -> PlanProposal | None:
        """Propose the next plan, or ``None`` when nothing is left to try.

        The proposal is parked in the state's ledger (via ``state.park``);
        the matching ``observe`` call consumes it.
        """

    def observe(self, state: OptimizerState, outcome: ExecutionOutcome) -> None:
        """Feed a pending proposal's execution outcome back to the model."""

    def finish(self, state: OptimizerState) -> OptimizationResult:
        """Close the state and return its trace."""


@runtime_checkable
class BatchOptimizer(Optimizer, Protocol):
    """An optimizer that can keep several proposals in flight per state.

    Advertised through the registry's ``supports_batch`` flag; callers that
    find the flag unset (or ``q == 1``) use plain :meth:`Optimizer.suggest`,
    which keeps q=1 behaviour bit-for-bit identical to the single-proposal
    protocol.
    """

    def suggest_batch(self, state: OptimizerState, q: int) -> list[PlanProposal]:
        """Propose up to ``q`` *additional* plans, each with a unique
        ``proposal_id``.  An empty list means nothing is left to try (the
        batched analogue of ``suggest`` returning ``None``)."""


@runtime_checkable
class WorkloadOptimizer(Protocol):
    """A workload-level steppable optimizer (decides which query to spend on)."""

    def start_workload(
        self, queries: list[Query], budget: BudgetSpec | None = None
    ) -> WorkloadOptimizerState:
        """Build one resumable state covering every query."""

    def suggest(self, state: WorkloadOptimizerState) -> PlanProposal | None: ...

    def observe(self, state: WorkloadOptimizerState, outcome: ExecutionOutcome) -> None: ...

    def finish_workload(self, state: WorkloadOptimizerState) -> dict[str, OptimizationResult]:
        """Close the state and return per-query traces."""


# -------------------------------------------------------------------- drivers
def issue_allowance(state, q: int) -> int:
    """How many more proposals ``state`` may put in flight right now.

    Batched issue is gated so the execution-count budget can never be
    overshot: budget is charged per *completed* outcome, so a state with
    ``k`` proposals already outstanding may only issue up to
    ``remaining_executions - k`` more (and never more than ``q`` total in
    flight).  With ``q=1`` this reduces to the historical
    ``1 if state.budget_left() else 0``.  Works for both per-query and
    workload-level states (each charges a different ``progress`` object).

    The *time* axis cannot be pre-charged — execution durations are unknown
    at issue time — so a time-budgeted run may complete up to ``q - 1``
    in-flight executions past the deadline, exactly as any parallel executor
    overshoots a wall-clock cutoff.  Comparisons that must be overshoot-free
    across techniques should budget on the execution-count axis.
    """
    if not state.budget_left():
        return 0
    in_flight = state.outstanding_count
    slots = q - in_flight
    remaining = state.budget.remaining_executions(state.progress) - in_flight
    return max(0, int(min(slots, remaining)))


def suggest_proposals(optimizer, state, count: int) -> list[PlanProposal]:
    """Ask ``optimizer`` for up to ``count`` proposals for ``state``.

    Uses ``suggest_batch`` when the optimizer implements it and more than one
    proposal is wanted; otherwise the plain single-proposal ``suggest`` (the
    bit-for-bit q=1 path).
    """
    if count <= 0:
        return []
    # Topping up a partially filled batch (proposals already outstanding)
    # must also go through suggest_batch: plain suggest requires an idle
    # state, which is exactly the invariant batching relaxes.
    if hasattr(optimizer, "suggest_batch") and (count > 1 or state.outstanding_count > 0):
        return list(optimizer.suggest_batch(state, count))
    proposal = optimizer.suggest(state)
    return [] if proposal is None else [proposal]


def drive_state(optimizer, database: "Database", state, q: int = 1) -> None:
    """Run one state's suggest/execute/observe loop until its budget is spent.

    The reference single-threaded loop owner; works for both per-query and
    workload-level states (proposals name their query in the latter case).
    With ``q > 1`` (and an optimizer implementing ``suggest_batch``) up to
    ``q`` proposals are issued per round and their outcomes observed in
    submission order — the reference semantics the concurrent scheduler in
    :mod:`repro.harness.runner` must agree with.
    """
    if q < 1:
        raise OptimizationError("q must be at least 1")
    if q == 1:
        while state.budget_left():
            proposal = optimizer.suggest(state)
            if proposal is None:
                state.exhausted = True
                break
            query = proposal.query if proposal.query is not None else state.query
            execution = database.execute(query, proposal.plan, timeout=proposal.timeout)
            optimizer.observe(
                state, ExecutionOutcome.from_execution(execution, proposal.timeout)
            )
        return
    # Proposals drain synchronously here, so the ledger is empty at every
    # loop top and the allowance is simply min(q, remaining budget).
    while True:
        proposals = suggest_proposals(optimizer, state, issue_allowance(state, q))
        if not proposals:
            if state.budget_left():
                state.exhausted = True
            break
        for proposal in proposals:
            query = proposal.query if proposal.query is not None else state.query
            execution = database.execute(query, proposal.plan, timeout=proposal.timeout)
            optimizer.observe(
                state,
                ExecutionOutcome.from_execution(
                    execution, proposal.timeout, proposal_id=proposal.proposal_id
                ),
            )


def drive_query(
    optimizer,
    database: "Database",
    query: Query,
    budget: BudgetSpec | None = None,
    **start_kwargs,
) -> OptimizationResult:
    """Start, drive and finish one per-query optimizer run."""
    state = optimizer.start(query, budget=budget, **start_kwargs)
    drive_state(optimizer, database, state)
    return optimizer.finish(state)


def drive_workload(
    optimizer,
    database: "Database",
    queries: list[Query],
    budget: BudgetSpec | None = None,
) -> dict[str, OptimizationResult]:
    """Start, drive and finish one workload-level optimizer run."""
    state = optimizer.start_workload(queries, budget=budget)
    drive_state(optimizer, database, state)
    return optimizer.finish_workload(state)
