"""Re-optimization after data drift (Section 5.5).

When the data shifts, a previously optimized plan may become stale.  The
paper shows that re-running BayesQO with the *past* plan added to the Bao
initialization both converges faster and finds better plans than starting
from scratch.  :func:`reoptimize` packages that recipe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.initialization import InitialPlan, bao_initialization
from repro.core.optimizer import BayesQO
from repro.core.protocol import BudgetSpec, drive_query
from repro.core.result import OptimizationResult
from repro.db.query import Query
from repro.plans.jointree import JoinTree


@dataclass
class ReoptimizationOutcome:
    """What re-optimization produced, alongside the stale plan's current latency."""

    result: OptimizationResult
    past_plan_latency: float
    improved: bool

    @property
    def best_latency(self) -> float:
        return self.result.best_latency


def reoptimize(
    optimizer: BayesQO,
    query: Query,
    past_plan: JoinTree,
    max_executions: int | None = None,
    time_budget: float | None = None,
    include_bao: bool = True,
) -> ReoptimizationOutcome:
    """Re-optimize ``query`` on the optimizer's (drifted) database.

    The initialization set is the Bao hint plans plus the past plan, so the
    search starts from both the current optimizer's view of the data and the
    previously discovered fast plan.
    """
    initial: list[InitialPlan] = []
    if include_bao:
        initial.extend(bao_initialization(optimizer.database, query))
    initial.append((past_plan, "init:past_plan"))
    result = drive_query(
        optimizer,
        optimizer.database,
        query,
        BudgetSpec(max_executions=max_executions, time_budget=time_budget),
        initial_plans=initial,
    )
    past_execution = optimizer.database.execute(query, past_plan, timeout=600.0)
    improved = result.best_latency < past_execution.latency
    return ReoptimizationOutcome(
        result=result, past_plan_latency=past_execution.latency, improved=improved
    )
