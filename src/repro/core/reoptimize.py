"""Re-optimization after data drift (Section 5.5).

When the data shifts, a previously optimized plan may become stale.  The
paper shows that re-running BayesQO with the *past* plan added to the Bao
initialization both converges faster and finds better plans than starting
from scratch.  :func:`reoptimize` packages that recipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.initialization import InitialPlan, bao_initialization
from repro.core.optimizer import BayesQO
from repro.core.protocol import BudgetSpec, drive_query
from repro.core.result import OptimizationResult
from repro.db.engine import Database
from repro.db.query import Query
from repro.plans.jointree import JoinTree


def warm_start_plans(
    database: Database,
    query: Query,
    past_plan: JoinTree,
    history: Iterable[JoinTree] = (),
    include_bao: bool = True,
) -> list[InitialPlan]:
    """The initialization set of a warm-started re-optimization run.

    Bao's hint plans anchor the search in the *current* optimizer's view of
    the (possibly drifted) data; ``history`` plans — e.g. the fastest
    previously executed plans deserialized from a plan store — and the past
    best plan anchor it in what offline optimization already discovered.
    Duplicates of ``past_plan`` in ``history`` are dropped so the past plan
    keeps its distinct ``init:past_plan`` source label in the trace.
    """
    initial: list[InitialPlan] = []
    if include_bao:
        initial.extend(bao_initialization(database, query))
    past_key = past_plan.canonical()
    seen = {past_key}
    for plan in history:
        key = plan.canonical()
        if key in seen:
            continue
        seen.add(key)
        initial.append((plan, "init:history"))
    initial.append((past_plan, "init:past_plan"))
    return initial


@dataclass
class ReoptimizationOutcome:
    """What re-optimization produced, alongside the stale plan's current latency."""

    result: OptimizationResult
    past_plan_latency: float
    improved: bool

    @property
    def best_latency(self) -> float:
        return self.result.best_latency


def reoptimize(
    optimizer: BayesQO,
    query: Query,
    past_plan: JoinTree,
    max_executions: int | None = None,
    time_budget: float | None = None,
    include_bao: bool = True,
    history: Iterable[JoinTree] = (),
) -> ReoptimizationOutcome:
    """Re-optimize ``query`` on the optimizer's (drifted) database.

    The initialization set is the Bao hint plans plus the past plan, so the
    search starts from both the current optimizer's view of the data and the
    previously discovered fast plan.  ``history`` adds further known-good
    plans (e.g. the fastest runners-up from a stored observation history) as
    ``init:history`` entries — the plan-server warm start, where the caller
    holds a deserialized record of a finished run rather than a live session.
    """
    initial = warm_start_plans(
        optimizer.database, query, past_plan, history=history, include_bao=include_bao
    )
    result = drive_query(
        optimizer,
        optimizer.database,
        query,
        BudgetSpec(max_executions=max_executions, time_budget=time_budget),
        initial_plans=initial,
    )
    past_execution = optimizer.database.execute(query, past_plan, timeout=600.0)
    improved = result.best_latency < past_execution.latency
    return ReoptimizationOutcome(
        result=result, past_plan_latency=past_execution.latency, improved=improved
    )
