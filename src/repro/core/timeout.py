"""Timeout selection policies (Section 4.3.1).

Every candidate plan gets a per-plan timeout before it is executed.  The
paper's contribution is the *uncertainty-based* rule: choose the smallest
timeout ``tau`` such that, after conditioning the surrogate on "this plan was
censored at ``tau``", the incumbent is still confidently better than the
candidate (``y* <= mu'(tau) - kappa * sigma'(tau)``).  The fixed-percentile,
best-seen and constant-multiplier policies from prior work are provided as
ablation arms (Figure 5a), together with a no-timeout policy.

The uncertainty rule's only model dependency is the small
:class:`SupportsFantasize` protocol — "condition on a hypothetical censoring
and report the posterior" — not the concrete BO engine.  Any surrogate
wrapper satisfying it (a fake in tests, a different engine, a remote model)
plugs straight into the policy, and this module imports nothing from
:mod:`repro.bo`.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import OptimizationError

#: Cap on the batched uncertainty-timeout grid: resolution saturates at 1024
#: intervals (<0.3% of the log-tau range) however large ``bisection_steps`` is.
_MAX_GRID_INTERVALS = 1024


@runtime_checkable
class SupportsFantasize(Protocol):
    """What the uncertainty-based timeout rule needs from a model.

    Structurally satisfied by :class:`~repro.bo.loop.BOEngine` (over any
    surrogate) and easy to fake in tests.  Models whose
    ``supports_batched_fantasize`` is true additionally satisfy
    :class:`SupportsBatchedFantasize`; everything else falls back to the
    sequential bisection path.
    """

    @property
    def num_observations(self) -> int:
        """How many observations back the posterior."""
        ...

    @property
    def supports_batched_fantasize(self) -> bool:
        """Whether :class:`SupportsBatchedFantasize` is also satisfied."""
        ...

    def fantasize_censored(self, x: np.ndarray, censor_level: float) -> tuple[float, float]:
        """Posterior (mean, std) at ``x`` after pretending it was censored
        at ``censor_level``."""
        ...


@runtime_checkable
class SupportsBatchedFantasize(SupportsFantasize, Protocol):
    """A model that can probe every censoring level in one conditioning."""

    def fantasize_censored_batch(
        self, x: np.ndarray, censor_levels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior (means, stds) at ``x`` for every hypothetical censoring
        level, sharing one rank-1 extension."""
        ...


def _interpolated_percentile(sorted_values: list[float], percentile: float) -> float:
    """Linear-interpolation percentile of an already-sorted list (matches numpy)."""
    if not 0.0 <= percentile <= 100.0:
        raise OptimizationError(f"percentile must be in [0, 100], got {percentile}")
    rank = (len(sorted_values) - 1) * percentile / 100.0
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(sorted_values[lower])
    weight = rank - lower
    return float(sorted_values[lower] * (1.0 - weight) + sorted_values[upper] * weight)


class TimeoutPolicy:
    """Interface: map (model state, candidate point) to a timeout in seconds."""

    def select(
        self,
        engine: SupportsFantasize | None,
        candidate: np.ndarray | None,
        best_latency: float | None,
        observed_latencies: list[float],
    ) -> float | None:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass
class NoTimeout(TimeoutPolicy):
    """Never time out (the "No Timeouts" ablation arm)."""

    def select(self, engine, candidate, best_latency, observed_latencies) -> float | None:
        return None


@dataclass
class BestSeenTimeout(TimeoutPolicy):
    """Timeout equal to the best latency observed so far (the 0th percentile)."""

    fallback: float = 60.0

    def select(self, engine, candidate, best_latency, observed_latencies) -> float | None:
        if best_latency is None:
            return self.fallback
        return best_latency


@dataclass
class PercentileTimeout(TimeoutPolicy):
    """Timeout at a fixed percentile of the uncensored latencies seen so far.

    ``observed_latencies`` grows append-only over an optimization run, so the
    policy maintains a sorted mirror incrementally (``bisect.insort``) instead
    of re-sorting the full list on every call.  The consumed prefix is kept to
    detect a different history (a new run reusing the policy) and rebuild the
    mirror — an O(n) list comparison, still far cheaper than re-sorting.
    """

    percentile: float = 10.0
    fallback: float = 60.0
    _sorted: list = field(default_factory=list, repr=False, compare=False)
    _prefix: list = field(default_factory=list, repr=False, compare=False)

    def select(self, engine, candidate, best_latency, observed_latencies) -> float | None:
        if not observed_latencies:
            self._sorted.clear()
            self._prefix.clear()
            return self.fallback
        consumed = len(self._prefix)
        if observed_latencies[:consumed] != self._prefix:
            self._sorted = sorted(float(value) for value in observed_latencies)
            self._prefix = list(observed_latencies)
            return _interpolated_percentile(self._sorted, self.percentile)
        for value in observed_latencies[consumed:]:
            bisect.insort(self._sorted, float(value))
        self._prefix.extend(observed_latencies[consumed:])
        return _interpolated_percentile(self._sorted, self.percentile)


@dataclass
class MultiplierTimeout(TimeoutPolicy):
    """Timeout at a constant multiple of the best latency (Balsa uses 1.5x)."""

    multiplier: float = 1.5
    fallback: float = 60.0

    def select(self, engine, candidate, best_latency, observed_latencies) -> float | None:
        if best_latency is None:
            return self.fallback
        return self.multiplier * best_latency


@dataclass
class UncertaintyTimeout(TimeoutPolicy):
    """The paper's uncertainty-based timeout rule.

    Finds (by bisection over the log-latency axis, exploiting monotonicity of
    the fantasized lower confidence bound in ``tau``) the smallest timeout such
    that conditioning on a censoring at ``tau`` leaves the incumbent confidently
    better than the candidate.
    """

    kappa: float = 1.0
    max_multiplier: float = 16.0
    fallback: float = 60.0
    bisection_steps: int = 8

    def select(self, engine, candidate, best_latency, observed_latencies) -> float | None:
        if best_latency is None:
            return self.fallback
        if engine is None or candidate is None or engine.num_observations < 3:
            return self.max_multiplier * best_latency
        best_log = math.log(max(best_latency, 1e-9))
        low = best_log
        high = math.log(best_latency * self.max_multiplier)
        if getattr(engine, "supports_batched_fantasize", False):
            return self._select_batched(engine, candidate, low, high, best_log)
        return self._select_sequential(engine, candidate, low, high, best_log)

    def _select_sequential(
        self, engine: SupportsFantasize, candidate: np.ndarray, low: float, high: float,
        best_log: float,
    ) -> float:
        """Bisection fallback for surrogates without a batched fantasize path."""
        if not self._confident(engine, candidate, high, best_log):
            # Even the largest allowed timeout would not make us confident:
            # spend the full cap (learning the most we are willing to pay for).
            return math.exp(high)
        for _ in range(self.bisection_steps):
            mid = 0.5 * (low + high)
            if self._confident(engine, candidate, mid, best_log):
                high = mid
            else:
                low = mid
        return math.exp(high)

    def _select_batched(
        self, engine: SupportsFantasize, candidate: np.ndarray, low: float, high: float,
        best_log: float,
    ) -> float:
        """Evaluate every bisection level in one vectorized fantasize call.

        A grid at the bisection resolution (``2**bisection_steps`` intervals,
        capped so a large ``bisection_steps`` cannot blow the batch up) costs
        one batched conditioning instead of ``bisection_steps + 1`` sequential
        surrogate refits, and picks the same boundary: the smallest level at
        which the fantasized LCB still favors the incumbent.
        """
        intervals = min(2**self.bisection_steps, _MAX_GRID_INTERVALS)
        levels = np.linspace(low, high, intervals + 1)
        means, stds = engine.fantasize_censored_batch(candidate, levels)
        confident = best_log <= means - self.kappa * stds
        if not confident[-1]:
            return math.exp(high)
        return math.exp(float(levels[int(np.argmax(confident))]))

    def _confident(
        self, engine: SupportsFantasize, candidate: np.ndarray, log_tau: float, best_log: float
    ) -> bool:
        mean, std = engine.fantasize_censored(candidate, log_tau)
        return best_log <= mean - self.kappa * std


def build_timeout_policy(
    strategy: str,
    kappa: float = 1.0,
    max_multiplier: float = 16.0,
    percentile: float = 10.0,
    multiplier: float = 1.5,
) -> TimeoutPolicy:
    """Factory mapping a configuration string to a policy instance."""
    if strategy == "uncertainty":
        return UncertaintyTimeout(kappa=kappa, max_multiplier=max_multiplier)
    if strategy == "none":
        return NoTimeout()
    if strategy == "percentile":
        return PercentileTimeout(percentile=percentile)
    if strategy == "best_seen":
        return BestSeenTimeout()
    if strategy == "multiplier":
        return MultiplierTimeout(multiplier=multiplier)
    raise OptimizationError(f"unknown timeout strategy {strategy!r}")
