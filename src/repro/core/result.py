"""Result and trace types for offline optimization runs.

Every technique in this repository (BayesQO, Bao, Random, Balsa, LimeQO)
reports its work as an :class:`OptimizationResult`: a sequence of plan
executions, each with its (possibly censored) latency and its position on the
shared budget axis.  The cost and best-latency formulas follow the problem
definition of Section 3:

``Cost(S_t) = sum_i I_i * TO(P_i) + (1 - I_i) * L(P_i)``
``Latency(S_t) = min_i { L(P_i) if not censored else infinity }``
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import OptimizationError
from repro.plans.jointree import JoinTree


@dataclass
class TraceRecord:
    """One plan execution inside an optimization run."""

    step: int
    plan: JoinTree
    latency: float
    censored: bool
    timeout: float | None
    cumulative_cost: float
    source: str = "bo"

    @property
    def observed_cost(self) -> float:
        """The budget consumed by this execution (timeout if censored)."""
        if self.censored:
            return self.timeout if self.timeout is not None else self.latency
        return self.latency


@dataclass
class OptimizationResult:
    """The full trace of one offline optimization run for one query."""

    query_name: str
    technique: str
    trace: list[TraceRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ recording
    def record(
        self,
        plan: JoinTree,
        latency: float,
        censored: bool,
        timeout: float | None,
        source: str = "bo",
    ) -> TraceRecord:
        """Append one execution to the trace, maintaining the cumulative cost."""
        cost = (timeout if timeout is not None else latency) if censored else latency
        record = TraceRecord(
            step=len(self.trace),
            plan=plan,
            latency=latency,
            censored=censored,
            timeout=timeout,
            cumulative_cost=self.total_cost + cost,
            source=source,
        )
        self.trace.append(record)
        return record

    # ------------------------------------------------------------------ aggregate views
    @property
    def total_cost(self) -> float:
        """Total optimization budget consumed so far (Cost(S_t))."""
        return self.trace[-1].cumulative_cost if self.trace else 0.0

    @property
    def num_executions(self) -> int:
        return len(self.trace)

    @property
    def best_record(self) -> TraceRecord:
        uncensored = [record for record in self.trace if not record.censored]
        if not uncensored:
            raise OptimizationError(
                f"run for {self.query_name!r} has no successfully executed plan"
            )
        return min(uncensored, key=lambda record: record.latency)

    @property
    def best_latency(self) -> float:
        """Latency(S_t): the fastest successfully executed plan."""
        return self.best_record.latency

    @property
    def best_plan(self) -> JoinTree:
        return self.best_record.plan

    def best_latency_or(self, fallback: float) -> float:
        """Best latency, or ``fallback`` when every execution was censored."""
        try:
            return self.best_latency
        except OptimizationError:
            return fallback

    def best_latency_over_time(self) -> list[tuple[float, float]]:
        """(cumulative cost, best latency so far) after every execution.

        Executions before the first success carry ``inf`` as the best latency,
        matching the problem definition.
        """
        points: list[tuple[float, float]] = []
        best = float("inf")
        for record in self.trace:
            if not record.censored:
                best = min(best, record.latency)
            points.append((record.cumulative_cost, best))
        return points

    def best_latency_at_cost(self, budget: float) -> float:
        """Best latency achievable within a given budget (inf if none)."""
        best = float("inf")
        for record in self.trace:
            if record.cumulative_cost > budget:
                break
            if not record.censored:
                best = min(best, record.latency)
        return best

    def improvement_over(self, baseline_latency: float) -> float:
        """Percentage reduction in latency relative to ``baseline_latency``.

        A value of 80 means the best plan runs in 20% of the baseline's time;
        negative values mean the technique did worse than the baseline.
        """
        if baseline_latency <= 0:
            raise OptimizationError("baseline latency must be positive")
        return 100.0 * (1.0 - self.best_latency / baseline_latency)

    def trace_signature(self) -> list[tuple]:
        """Comparable trace summary: (plan, latency, censored, timeout, source).

        Two runs are equivalent iff their signatures match; used by the
        protocol-conformance tests and the scheduler benchmark to check
        sequential vs interleaved (and legacy vs session) runs.
        """
        return [
            (record.plan.canonical(), record.latency, record.censored,
             record.timeout, record.source)
            for record in self.trace
        ]

    def sources(self) -> dict[str, int]:
        """Execution counts per source label (init:bao, bo, random, ...)."""
        counts: dict[str, int] = {}
        for record in self.trace:
            counts[record.source] = counts.get(record.source, 0) + 1
        return counts
