"""BayesQO: the offline query optimizer (Sections 3 and 4 of the paper).

The optimizer ties every substrate together.  It implements the ask/tell
:class:`~repro.core.protocol.Optimizer` protocol; for a given query it:

1. proposes initialization plans (Bao hint sets by default) for execution,
2. embeds executed plans into the VAE latent space and feeds their (log)
   latencies — censored for timed-out plans — to the BO engine,
3. repeatedly asks the engine for a new latent point, decodes it to a plan and
   chooses a per-plan timeout with the uncertainty rule; the caller executes
   the plan against the read snapshot and tells the outcome back,
4. reports the full trace when the caller's budget is exhausted.

The loop itself is owned by the caller — usually a
:class:`~repro.harness.runner.WorkloadSession` that interleaves many queries —
and :meth:`BayesQO.optimize` survives as a compatibility shim over
:func:`~repro.core.protocol.drive_query`.
"""

from __future__ import annotations

import math
import time
import warnings
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.bo.loop import BOEngine, BOEngineConfig
from repro.core.config import BayesQOConfig, VAETrainingConfig
from repro.core.initialization import InitialPlan, PlanGenerator, build_initial_plans
from repro.core.protocol import (
    BudgetSpec,
    ExecutionOutcome,
    OptimizerState,
    PlanProposal,
    drive_query,
)
from repro.core.registry import TechniqueContext, register_technique
from repro.core.result import OptimizationResult
from repro.core.timeout import TimeoutPolicy, build_timeout_policy
from repro.db.engine import Database
from repro.db.query import Query
from repro.exceptions import OptimizationError
from repro.obs.tracer import NULL_TRACER
from repro.plans.encoding import PlanCodec
from repro.plans.jointree import JoinTree
from repro.plans.vocabulary import PlanVocabulary, vocabulary_for_workload
from repro.vae.dataset import build_plan_corpus
from repro.vae.latent import LatentSpace
from repro.vae.training import train_vae
from repro.workloads.base import Workload

#: Floor applied before taking logs of latencies.
_MIN_LATENCY = 1e-6


@dataclass
class OverheadBreakdown:
    """Wall-clock seconds spent in each part of the BO loop (Figure 9)."""

    surrogate_update: float = 0.0
    calculate_timeout: float = 0.0
    vae_sampling: float = 0.0
    generate_candidates: float = 0.0
    iterations: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "surrogate_update": self.surrogate_update,
            "calculate_timeout": self.calculate_timeout,
            "vae_sampling": self.vae_sampling,
            "generate_candidates": self.generate_candidates,
        }

    def per_iteration(self) -> dict[str, float]:
        count = max(self.iterations, 1)
        return {name: value / count for name, value in self.as_dict().items()}


@dataclass
class SchemaModel:
    """The per-schema artifacts shared by every query: vocabulary, codec, latent space."""

    vocabulary: PlanVocabulary
    codec: PlanCodec
    latent_space: LatentSpace
    vae_report: object | None = None


def train_schema_model(
    database: Database,
    workload_queries: list[Query] | None = None,
    vae_config: VAETrainingConfig | None = None,
    max_aliases: int | None = None,
) -> SchemaModel:
    """Build the vocabulary, plan corpus and VAE for one schema (done once per schema)."""
    from repro.plans.vocabulary import build_vocabulary, max_aliases_in_workload

    vae_config = vae_config or VAETrainingConfig()
    if workload_queries:
        aliases = max(max_aliases or 1, max_aliases_in_workload(workload_queries))
        max_tables = max(
            vae_config.max_tables, max(query.num_tables for query in workload_queries)
        )
    else:
        aliases = max_aliases or 1
        max_tables = vae_config.max_tables
    vocabulary = build_vocabulary(database.schema, aliases)
    corpus = build_plan_corpus(
        database,
        vocabulary,
        max_aliases=aliases,
        num_queries=vae_config.corpus_queries,
        max_tables=max_tables,
        seed=vae_config.seed,
    )
    model, report = train_vae(
        corpus,
        latent_dim=vae_config.latent_dim,
        embed_dim=vae_config.embed_dim,
        hidden_dim=vae_config.hidden_dim,
        beta=vae_config.beta,
        steps=vae_config.training_steps,
        seed=vae_config.seed,
    )
    codec = PlanCodec(vocabulary)
    latent_space = LatentSpace.from_corpus(model, codec, corpus.sequences)
    return SchemaModel(vocabulary=vocabulary, codec=codec, latent_space=latent_space, vae_report=report)


@dataclass
class BayesQOState(OptimizerState):
    """Resumable BayesQO state: engine, timeout policy and execution caches.

    ``iterations`` counts BO loop steps (including duplicate-plan replays that
    consume no budget) against ``iteration_cap`` so a degenerate latent space
    cannot spin forever.
    """

    engine: BOEngine | None = None
    policy: TimeoutPolicy | None = None
    #: Remaining initialization plans (executed before the BO phase starts).
    init_queue: deque = field(default_factory=deque)
    #: Best uncensored latency among initialization executions (drives the
    #: initialization-phase timeout rule).
    init_best: float | None = None
    #: plan canonical -> (latency, censored, timeout) for duplicate replays.
    executed: dict = field(default_factory=dict)
    #: Uncensored latencies in observation order (for percentile timeouts).
    observed_latencies: list = field(default_factory=list)
    iterations: int = 0
    iteration_cap: int = 0


class BayesQO:
    """The offline query optimizer."""

    def __init__(
        self,
        database: Database,
        schema_model: SchemaModel,
        config: BayesQOConfig | None = None,
        plan_generator: PlanGenerator | None = None,
    ) -> None:
        self.database = database
        self.schema_model = schema_model
        self.config = config or BayesQOConfig()
        self.plan_generator = plan_generator
        self.overhead = OverheadBreakdown()
        #: Observability hook (:mod:`repro.obs`): set by the scheduler/server
        #: driving this optimizer; forwarded to each per-query engine in
        #: :meth:`start` so surrogate refits and acquisition rounds appear in
        #: the trace.  Never pickled (checkpoints and plan stores persist
        #: optimizers; a live span buffer must not ride along).
        self.tracer = NULL_TRACER

    def __getstate__(self):
        state = self.__dict__.copy()
        state["tracer"] = NULL_TRACER
        return state

    # ------------------------------------------------------------------ construction helpers
    @classmethod
    def for_workload(
        cls,
        workload: Workload,
        config: BayesQOConfig | None = None,
        vae_config: VAETrainingConfig | None = None,
        plan_generator: PlanGenerator | None = None,
        schema_model: SchemaModel | None = None,
    ) -> "BayesQO":
        """Build a BayesQO instance (training the per-schema VAE if needed)."""
        schema_model = schema_model or train_schema_model(
            workload.database, workload.queries, vae_config, max_aliases=workload.max_aliases
        )
        return cls(workload.database, schema_model, config=config, plan_generator=plan_generator)

    # ------------------------------------------------------------------ ask/tell protocol
    def start(
        self,
        query: Query,
        budget: BudgetSpec | None = None,
        initial_plans: list[InitialPlan] | None = None,
    ) -> BayesQOState:
        """Build a resumable per-query state (engine, timeout policy, init plans)."""
        config = self.config
        # Unset budget axes fall back to the configuration's own budget, the
        # same resolution the legacy optimize(max_executions=, time_budget=)
        # signature applied.
        budget = BudgetSpec(
            max_executions=(
                budget.max_executions
                if budget is not None and budget.max_executions is not None
                else config.max_executions
            ),
            time_budget=(
                budget.time_budget
                if budget is not None and budget.time_budget is not None
                else config.time_budget
            ),
        )
        latent = self.schema_model.latent_space
        engine = BOEngine(
            *latent.bounds(),
            config=BOEngineConfig(
                surrogate=config.surrogate,
                use_trust_region=config.use_trust_region,
                num_candidates=config.num_candidates,
                thompson_samples=config.thompson_samples,
                refit_every=config.refit_every,
                batch_strategy=config.batch_strategy,
            ),
            seed=config.seed,
        )
        engine.tracer = self.tracer
        policy = build_timeout_policy(
            config.timeout_strategy,
            kappa=config.timeout_kappa,
            max_multiplier=config.timeout_max_multiplier,
            percentile=config.timeout_percentile,
            multiplier=config.timeout_multiplier,
        )
        if initial_plans is None:
            plans = build_initial_plans(
                config.initialization,
                self.database,
                query,
                count=config.num_initial_plans,
                seed=config.seed,
                generator=self.plan_generator,
            )
        else:
            plans = initial_plans
        if not plans:
            raise OptimizationError(f"no initialization plans produced for query {query.name!r}")
        return BayesQOState(
            query=query,
            result=OptimizationResult(query_name=query.name, technique="BayesQO"),
            budget=budget,
            engine=engine,
            policy=policy,
            init_queue=deque(plans),
            iteration_cap=budget.max_executions * 5,
        )

    def _next_init_proposal(self, state: BayesQOState) -> PlanProposal:
        """Build and enqueue the next initialization-phase proposal.

        Shared by the single and batched ask so the init timeout rule (600s
        before the first uncensored latency, ``init_best *
        timeout_max_multiplier`` after) cannot drift between them.
        """
        plan, source = state.init_queue.popleft()
        timeout = (
            600.0
            if state.init_best is None
            else state.init_best * self.config.timeout_max_multiplier
        )
        # The phase marker (not the caller-chosen source label) is what
        # observe() keys on: initial_plans may carry any source string.
        return state.enqueue(
            PlanProposal(
                plan=plan, timeout=timeout, source=source, query=state.query,
                metadata={"phase": "init"},
            )
        )

    def _consider_candidate(
        self, state: BayesQOState, candidate: np.ndarray, plan: JoinTree, in_flight: set
    ) -> PlanProposal | None:
        """One BO-loop step for a decoded candidate: replay, skip, or enqueue.

        Duplicates of *executed* plans reuse the cached observation without
        spending budget.  The replay must not touch the trust region — it is
        not a fresh success or failure, and counting it as one would
        spuriously shrink (or grow) the region; censored replays obey the
        same learn_from_timeouts gate as fresh executions.  Plans already
        *in flight* (batched ask) are skipped outright: there is nothing to
        learn until their outcome lands.  Novel plans get a policy-chosen
        timeout and are enqueued.  Shared by the single and batched ask.
        """
        state.iterations += 1
        self.overhead.iterations += 1
        engine, query = state.engine, state.query
        key = plan.canonical()
        if key in state.executed:
            latency, censored, _ = state.executed[key]
            if not censored or self.config.learn_from_timeouts:
                self._observe(
                    engine, query, plan, latency, censored, None, x=candidate,
                    update_trust_region=False,
                )
            return None
        if key in in_flight:
            return None
        best_latency = self._best_latency(state.result)
        start = time.perf_counter()
        timeout = state.policy.select(engine, candidate, best_latency, state.observed_latencies)
        self.overhead.calculate_timeout += time.perf_counter() - start
        in_flight.add(key)
        return state.enqueue(
            PlanProposal(
                plan=plan,
                timeout=timeout,
                source="bo",
                query=query,
                metadata={"latent": candidate},
            )
        )

    def suggest(self, state: BayesQOState) -> PlanProposal | None:
        """Propose the next plan: initialization plans first, then BO candidates."""
        state.require_idle()
        if state.init_queue:
            return self._next_init_proposal(state)
        engine, query = state.engine, state.query
        while state.iterations < state.iteration_cap:
            start = time.perf_counter()
            engine.fit()
            self.overhead.surrogate_update += time.perf_counter() - start

            start = time.perf_counter()
            candidate = engine.suggest()
            self.overhead.generate_candidates += time.perf_counter() - start

            start = time.perf_counter()
            plan = self.schema_model.latent_space.decode_vector(candidate, query)
            self.overhead.vae_sampling += time.perf_counter() - start

            proposal = self._consider_candidate(state, candidate, plan, set())
            if proposal is not None:
                return proposal
        return None

    def suggest_batch(self, state: BayesQOState, q: int) -> list[PlanProposal]:
        """Propose up to ``q`` plans to hold in flight for this query.

        The batched ask: initialization plans are issued first (a batch never
        mixes phases, so the engine only speaks once every init plan is at
        least in flight); afterwards the engine picks ``q`` jointly
        informative latent candidates in one acquisition round
        (:meth:`BOEngine.suggest_batch`) and the VAE decodes them in a single
        vectorized pass.  Plans already executed are replayed from the cache
        exactly as in :meth:`suggest`; plans already *in flight* are skipped
        without burning budget.  ``q <= 1`` on an idle state delegates to
        :meth:`suggest`, so single-proposal traces stay bit-for-bit
        identical; a top-up ask (proposals already outstanding) always takes
        the batch path, which does not require idleness.
        """
        if q <= 1 and state.outstanding_count == 0:
            proposal = self.suggest(state)
            return [] if proposal is None else [proposal]
        proposals: list[PlanProposal] = []
        if state.init_queue:
            while state.init_queue and len(proposals) < q:
                proposals.append(self._next_init_proposal(state))
            return proposals
        engine, query = state.engine, state.query
        in_flight = {proposal.plan.canonical() for proposal in state.outstanding.values()}
        while len(proposals) < q and state.iterations < state.iteration_cap:
            # A top-up ask may arrive before any init outcome was observed;
            # the engine proposes random latent points until it has data, and
            # fitting an empty surrogate would raise.
            if engine.num_observations:
                start = time.perf_counter()
                engine.fit()
                self.overhead.surrogate_update += time.perf_counter() - start

            start = time.perf_counter()
            candidates = engine.suggest_batch(q - len(proposals))
            self.overhead.generate_candidates += time.perf_counter() - start

            start = time.perf_counter()
            plans = self.schema_model.latent_space.decode_vectors(
                np.asarray(candidates), query
            )
            self.overhead.vae_sampling += time.perf_counter() - start

            for candidate, plan in zip(candidates, plans):
                if len(proposals) >= q or state.iterations >= state.iteration_cap:
                    break
                proposal = self._consider_candidate(state, candidate, plan, in_flight)
                if proposal is not None:
                    proposals.append(proposal)
        return proposals

    def observe(self, state: BayesQOState, outcome: ExecutionOutcome) -> None:
        """Record a pending proposal's outcome and update the surrogate.

        Resolution is by ``outcome.proposal_id`` (out-of-order safe for
        batched callers); an outcome without an id answers the sole
        outstanding proposal.
        """
        proposal, record = state.resolve(outcome)
        state.executed[record.plan.canonical()] = (
            record.latency, record.censored, record.timeout,
        )
        if proposal.metadata.get("phase") == "init":
            # Initialization observations always reach the surrogate and
            # drive the init-phase timeout via the best uncensored latency.
            self._observe(
                state.engine, state.query, record.plan, record.latency, record.censored,
                state.observed_latencies,
            )
            if not record.censored:
                state.init_best = (
                    record.latency
                    if state.init_best is None
                    else min(state.init_best, record.latency)
                )
            return
        if record.censored and not self.config.learn_from_timeouts:
            return
        self._observe(
            state.engine, state.query, record.plan, record.latency, record.censored,
            state.observed_latencies, x=proposal.metadata.get("latent"),
        )

    def finish(self, state: BayesQOState) -> OptimizationResult:
        """Close the state and return the execution trace."""
        return state.result

    def predicted_improvement(self, state: BayesQOState) -> float:
        """Surrogate-predicted headroom of ``state``, for budget-aware scheduling.

        The score is an expected-improvement proxy in log-latency space: how
        far a one-sigma lower confidence bound of the posterior, evaluated at
        the observed points, dips below the incumbent best.  Queries whose
        posterior has collapsed around the incumbent (nothing left to gain)
        score near zero; queries that are still uncertain — or still in their
        initialization phase, returned as ``inf`` — score high.

        Deliberately RNG-free and ``suggest``-free: scoring a state must not
        advance its acquisition stream, so the plan sequence of every query is
        identical under every scheduling policy.
        """
        engine = state.engine
        if engine is None or state.init_queue or engine.num_observations == 0:
            return float("inf")
        best = engine.best_value()
        if best is None:
            return float("inf")
        # fit() is idempotent here: suggest() performs the identical call on
        # the identical observation set, so scoring never changes the refit
        # cadence a pure round-robin schedule would have produced.  It is
        # still surrogate work, so it lands in the Figure-9 breakdown bucket
        # suggest() would otherwise have charged.
        start = time.perf_counter()
        engine.fit()
        self.overhead.surrogate_update += time.perf_counter() - start
        x, _, _ = engine.observations()
        mean, std = engine.predict(x)
        return float(max(0.0, best - float(np.min(mean - std))))

    # ------------------------------------------------------------------ legacy driver
    def optimize(
        self,
        query: Query,
        initial_plans: list[InitialPlan] | None = None,
        max_executions: int | None = None,
        time_budget: float | None = None,
    ) -> OptimizationResult:
        """Run offline optimization for one query and return the execution trace.

        .. deprecated:: PR 2
            Compatibility shim over the ask/tell protocol
            (:meth:`start`/:meth:`suggest`/:meth:`observe`/:meth:`finish`).
            New code should drive the optimizer through a
            :class:`~repro.harness.runner.WorkloadSession`, which owns the
            loop and can interleave many queries under one budget.
        """
        warnings.warn(
            "BayesQO.optimize() is deprecated; drive the optimizer through a "
            "WorkloadSession (or repro.core.protocol.drive_query)",
            DeprecationWarning,
            stacklevel=2,
        )
        # start() resolves unset axes against the configuration's own budget.
        budget = BudgetSpec(max_executions=max_executions, time_budget=time_budget)
        return drive_query(self, self.database, query, budget, initial_plans=initial_plans)

    # ------------------------------------------------------------------ bookkeeping
    def _best_latency(self, result: OptimizationResult) -> float | None:
        try:
            return result.best_latency
        except OptimizationError:
            return None

    def _observe(
        self,
        engine: BOEngine,
        query: Query,
        plan: JoinTree,
        latency: float,
        censored: bool,
        observed_latencies: list[float] | None,
        x: np.ndarray | None = None,
        update_trust_region: bool = True,
    ) -> None:
        if x is None:
            x = self.schema_model.latent_space.embed_plan(plan, query)
        engine.add_observation(
            x, math.log(max(latency, _MIN_LATENCY)), censored, update_trust_region=update_trust_region
        )
        if observed_latencies is not None and not censored:
            observed_latencies.append(latency)


@register_technique(
    "bayesqo",
    needs_schema_model=True,
    predicts_improvement=True,
    supports_batch=True,
    description="BayesQO: latent-space BO with censored observations (the paper's system)",
)
def _build_bayesqo(context: TechniqueContext) -> BayesQO:
    if context.schema_model is None:
        raise OptimizationError("bayesqo needs a trained SchemaModel in the technique context")
    config = context.bayes_config or BayesQOConfig(seed=context.seed)
    return BayesQO(context.database, context.schema_model, config=config)
