"""Initialization strategies for the BO search (Section 4.4).

BayesQO admits any set of ``(plan, label)`` pairs as initialization points.
The strategies shipped here mirror the paper: the 49 Bao hint-set plans
(the default), the single default-optimizer plan, random cross-join-free
plans, and plans sampled from a cross-query model (the PlanLM, standing in
for the fine-tuned LLM).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.db.engine import Database
from repro.db.query import Query
from repro.exceptions import OptimizationError
from repro.plans.hints import bao_hint_sets
from repro.plans.jointree import JoinTree
from repro.plans.sampling import random_join_tree

#: An initialization point: a plan plus a provenance label.
InitialPlan = tuple[JoinTree, str]


class PlanGenerator(Protocol):
    """Anything that can propose plans for a query (the PlanLM implements this)."""

    def generate_plans(self, query: Query, count: int) -> list[JoinTree]:  # pragma: no cover
        ...


def bao_initialization(database: Database, query: Query) -> list[InitialPlan]:
    """The 49 hint-set plans (deduplicated), guaranteed to contain Bao's best plan."""
    plans: list[InitialPlan] = []
    seen: set[str] = set()
    for hint_set in bao_hint_sets():
        plan = database.plan(query, hint_set)
        key = plan.canonical()
        if key in seen:
            continue
        seen.add(key)
        plans.append((plan, "init:bao"))
    return plans


def default_initialization(database: Database, query: Query) -> list[InitialPlan]:
    """A single initialization point: the default optimizer's plan."""
    return [(database.plan(query), "init:default")]


def random_initialization(query: Query, count: int, seed: int = 0) -> list[InitialPlan]:
    """``count`` random cross-join-free plans."""
    rng = np.random.default_rng(seed)
    plans: list[InitialPlan] = []
    seen: set[str] = set()
    attempts = 0
    while len(plans) < count and attempts < count * 10:
        attempts += 1
        plan = random_join_tree(query, rng)
        key = plan.canonical()
        if key in seen:
            continue
        seen.add(key)
        plans.append((plan, "init:random"))
    return plans


def llm_initialization(generator: PlanGenerator, query: Query, count: int) -> list[InitialPlan]:
    """Plans sampled from a cross-query plan generator (the LLM strategy)."""
    plans: list[InitialPlan] = []
    seen: set[str] = set()
    for plan in generator.generate_plans(query, count):
        key = plan.canonical()
        if key in seen:
            continue
        seen.add(key)
        plans.append((plan, "init:llm"))
    return plans


def build_initial_plans(
    strategy: str,
    database: Database,
    query: Query,
    count: int = 50,
    seed: int = 0,
    generator: PlanGenerator | None = None,
    provided: list[JoinTree] | None = None,
) -> list[InitialPlan]:
    """Dispatch on the configuration's ``initialization`` string."""
    if strategy == "bao":
        return bao_initialization(database, query)
    if strategy == "default":
        return default_initialization(database, query)
    if strategy == "random":
        return random_initialization(query, count, seed=seed)
    if strategy == "llm":
        if generator is None:
            raise OptimizationError("the 'llm' initialization needs a plan generator")
        plans = llm_initialization(generator, query, count)
        if not plans:
            # The generator produced nothing usable; fall back to the default plan.
            return default_initialization(database, query)
        return plans
    if strategy == "provided":
        if not provided:
            raise OptimizationError("the 'provided' initialization needs explicit plans")
        return [(plan, "init:provided") for plan in provided]
    raise OptimizationError(f"unknown initialization strategy {strategy!r}")
