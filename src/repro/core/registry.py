"""The technique registry: name -> factory + capability flags.

Replaces the harness's hardcoded ``TECHNIQUES`` tuple.  Each technique module
registers itself with :func:`register_technique`, declaring its capabilities:

* ``workload_level`` — the technique optimizes a whole workload at once
  (implements :class:`~repro.core.protocol.WorkloadOptimizer`; LimeQO) rather
  than one query at a time,
* ``needs_schema_model`` — the technique requires the per-schema VAE/latent
  space (BayesQO); the harness trains it lazily and shares one instance,
* ``ignores_execution_cap`` — the technique's search space is naturally
  bounded, so only the time axis of the budget applies (Bao's 49 hint sets),
* ``order_sensitive`` — the technique shares mutable state (RNG, model)
  across per-query states (Balsa), so the harness must schedule its queries
  sequentially to keep results deterministic,
* ``predicts_improvement`` — the technique can score a per-query state's
  expected headroom from its surrogate posterior (exposes
  ``predicted_improvement(state)``; BayesQO); the budget-aware scheduling
  policy (:class:`repro.exec.BudgetAwarePriority`) uses the score to decide
  which query to spend the next plan execution on,
* ``supports_batch`` — the technique implements the
  :class:`~repro.core.protocol.BatchOptimizer` extension
  (``suggest_batch(state, q)``) and can keep several proposals in flight per
  query (BayesQO, Random); the harness falls back to ``q = 1`` transparently
  for techniques without the flag.

Factories receive a :class:`TechniqueContext` — everything a technique might
need to construct itself — and return a protocol-conformant optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.exceptions import OptimizationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import BayesQOConfig
    from repro.core.optimizer import SchemaModel
    from repro.db.engine import Database
    from repro.workloads.base import Workload


@dataclass
class TechniqueContext:
    """What a technique factory may draw on when building an optimizer."""

    database: "Database"
    workload: "Workload | None" = None
    schema_model: "SchemaModel | None" = None
    bayes_config: "BayesQOConfig | None" = None
    seed: int = 0


@dataclass(frozen=True)
class TechniqueSpec:
    """One registered technique: its factory plus capability flags."""

    name: str
    factory: Callable[[TechniqueContext], object]
    workload_level: bool = False
    needs_schema_model: bool = False
    ignores_execution_cap: bool = False
    order_sensitive: bool = False
    predicts_improvement: bool = False
    supports_batch: bool = False
    description: str = ""


_REGISTRY: dict[str, TechniqueSpec] = {}

#: Modules whose import registers the built-in techniques.  Loaded lazily on
#: first lookup so `from repro.core import create_optimizer` works without
#: requiring the caller to import repro.baselines (or the harness) for its
#: registration side effect.
_TECHNIQUE_MODULES = (
    "repro.core.optimizer",
    "repro.baselines.bao",
    "repro.baselines.random_search",
    "repro.baselines.balsa",
    "repro.baselines.limeqo",
)
_BUILTINS_LOADED = False


def _ensure_builtins_registered() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True  # set first: the imports below re-enter this module
    import importlib

    for module in _TECHNIQUE_MODULES:
        importlib.import_module(module)


def register_technique(
    name: str,
    *,
    workload_level: bool = False,
    needs_schema_model: bool = False,
    ignores_execution_cap: bool = False,
    order_sensitive: bool = False,
    predicts_improvement: bool = False,
    supports_batch: bool = False,
    description: str = "",
) -> Callable[[Callable[[TechniqueContext], object]], Callable[[TechniqueContext], object]]:
    """Decorator registering ``factory`` as the builder for technique ``name``."""

    def decorator(factory: Callable[[TechniqueContext], object]):
        if name in _REGISTRY:
            raise OptimizationError(f"technique {name!r} is already registered")
        _REGISTRY[name] = TechniqueSpec(
            name=name,
            factory=factory,
            workload_level=workload_level,
            needs_schema_model=needs_schema_model,
            ignores_execution_cap=ignores_execution_cap,
            order_sensitive=order_sensitive,
            predicts_improvement=predicts_improvement,
            supports_batch=supports_batch,
            description=description,
        )
        return factory

    return decorator


def get_technique(name: str) -> TechniqueSpec:
    """Look up a registered technique; raises with the known names otherwise."""
    _ensure_builtins_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise OptimizationError(
            f"unknown technique {name!r}; pick one of {technique_names()}"
        ) from None


def technique_names() -> tuple[str, ...]:
    """All registered technique names, in sorted order."""
    _ensure_builtins_registered()
    return tuple(sorted(_REGISTRY))


def create_optimizer(name: str, context: TechniqueContext):
    """Build a protocol optimizer for ``name`` from ``context``."""
    return get_technique(name).factory(context)
