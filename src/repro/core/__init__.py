"""BayesQO core: the optimizer protocol, registry, configuration, timeouts and cache."""

from repro.core.cache import CachedPlan, OnlinePlanner, PlanCache, amortized_benefit
from repro.core.config import BayesQOConfig, ExecutionServiceConfig, VAETrainingConfig
from repro.core.initialization import (
    bao_initialization,
    build_initial_plans,
    default_initialization,
    llm_initialization,
    random_initialization,
)
from repro.core.optimizer import (
    BayesQO,
    BayesQOState,
    OverheadBreakdown,
    SchemaModel,
    train_schema_model,
)
from repro.core.protocol import (
    BudgetSpec,
    ExecutionOutcome,
    Optimizer,
    OptimizerState,
    PlanProposal,
    WorkloadOptimizer,
    WorkloadOptimizerState,
    drive_query,
    drive_state,
    drive_workload,
)
from repro.core.registry import (
    TechniqueContext,
    TechniqueSpec,
    create_optimizer,
    get_technique,
    register_technique,
    technique_names,
)
from repro.core.reoptimize import ReoptimizationOutcome, reoptimize
from repro.core.result import OptimizationResult, TraceRecord
from repro.core.timeout import (
    BestSeenTimeout,
    MultiplierTimeout,
    NoTimeout,
    PercentileTimeout,
    TimeoutPolicy,
    UncertaintyTimeout,
    build_timeout_policy,
)

__all__ = [
    "BayesQO",
    "BayesQOConfig",
    "BayesQOState",
    "BestSeenTimeout",
    "BudgetSpec",
    "CachedPlan",
    "ExecutionOutcome",
    "ExecutionServiceConfig",
    "MultiplierTimeout",
    "NoTimeout",
    "OnlinePlanner",
    "OptimizationResult",
    "Optimizer",
    "OptimizerState",
    "OverheadBreakdown",
    "PercentileTimeout",
    "PlanCache",
    "PlanProposal",
    "ReoptimizationOutcome",
    "SchemaModel",
    "TechniqueContext",
    "TechniqueSpec",
    "TimeoutPolicy",
    "TraceRecord",
    "UncertaintyTimeout",
    "VAETrainingConfig",
    "WorkloadOptimizer",
    "WorkloadOptimizerState",
    "amortized_benefit",
    "bao_initialization",
    "build_initial_plans",
    "build_timeout_policy",
    "create_optimizer",
    "default_initialization",
    "drive_query",
    "drive_state",
    "drive_workload",
    "get_technique",
    "llm_initialization",
    "random_initialization",
    "register_technique",
    "reoptimize",
    "technique_names",
    "train_schema_model",
]
