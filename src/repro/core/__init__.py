"""BayesQO core: the offline optimizer, its configuration, timeouts, cache and re-optimization."""

from repro.core.cache import CachedPlan, OnlinePlanner, PlanCache, amortized_benefit
from repro.core.config import BayesQOConfig, VAETrainingConfig
from repro.core.initialization import (
    bao_initialization,
    build_initial_plans,
    default_initialization,
    llm_initialization,
    random_initialization,
)
from repro.core.optimizer import BayesQO, OverheadBreakdown, SchemaModel, train_schema_model
from repro.core.reoptimize import ReoptimizationOutcome, reoptimize
from repro.core.result import OptimizationResult, TraceRecord
from repro.core.timeout import (
    BestSeenTimeout,
    MultiplierTimeout,
    NoTimeout,
    PercentileTimeout,
    TimeoutPolicy,
    UncertaintyTimeout,
    build_timeout_policy,
)

__all__ = [
    "BayesQO",
    "BayesQOConfig",
    "BestSeenTimeout",
    "CachedPlan",
    "MultiplierTimeout",
    "NoTimeout",
    "OnlinePlanner",
    "OptimizationResult",
    "OverheadBreakdown",
    "PercentileTimeout",
    "PlanCache",
    "ReoptimizationOutcome",
    "SchemaModel",
    "TimeoutPolicy",
    "TraceRecord",
    "UncertaintyTimeout",
    "VAETrainingConfig",
    "amortized_benefit",
    "bao_initialization",
    "build_initial_plans",
    "build_timeout_policy",
    "default_initialization",
    "llm_initialization",
    "random_initialization",
    "reoptimize",
    "train_schema_model",
]
