"""The plan cache and the online component of the offline/online split.

After an offline optimization run, the best plan is stored in a cache keyed by
the query.  At runtime (the "online" path of Figure 2), the cache is consulted
first; a miss falls back to the default optimizer.  The online component also
watches runtime statistics and flags queries for re-optimization when the
cached plan regresses (e.g. because of data drift).

This layer caches *which plan to run*; the execution-memoization layer
(:mod:`repro.db.plan_cache`) caches *what running it costs*.  They compose:
once the offline run has executed the winning plan, every online execution of
a cached plan is an outcome-cache replay on the database side — the repeated
execution the paper's amortization argument counts on is literally the fast
path.  :meth:`OnlinePlanner.execution_cache_counters` surfaces that side of
the split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.result import OptimizationResult
from repro.db.engine import Database
from repro.db.query import Query
from repro.exceptions import OptimizationError
from repro.plans.jointree import JoinTree


@dataclass
class CachedPlan:
    """One cache entry: the plan, the latency observed offline and usage counters."""

    plan: JoinTree
    offline_latency: float
    optimization_cost: float
    hits: int = 0
    last_observed_latency: float | None = None


@dataclass
class PlanCache:
    """Maps query signatures to their offline-optimized plans."""

    entries: dict[tuple[str, ...], CachedPlan] = field(default_factory=dict)

    def store(self, query: Query, result: OptimizationResult) -> CachedPlan:
        """Cache the best plan of an optimization run."""
        entry = CachedPlan(
            plan=result.best_plan,
            offline_latency=result.best_latency,
            optimization_cost=result.total_cost,
        )
        self.entries[query.signature()] = entry
        return entry

    def store_plan(self, query: Query, plan: JoinTree, latency: float, cost: float = 0.0) -> CachedPlan:
        entry = CachedPlan(plan=plan, offline_latency=latency, optimization_cost=cost)
        self.entries[query.signature()] = entry
        return entry

    def lookup(self, query: Query) -> CachedPlan | None:
        return self.entries.get(query.signature())

    def __contains__(self, query: Query) -> bool:
        return query.signature() in self.entries

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class OnlinePlanner:
    """The runtime component: cached plan if present, default optimizer otherwise.

    ``regression_factor`` controls when a query is flagged for re-optimization:
    if the observed latency exceeds the cached offline latency by more than
    this factor, :meth:`execute` marks the entry as needing re-optimization.
    """

    database: Database
    cache: PlanCache = field(default_factory=PlanCache)
    regression_factor: float = 2.0
    needs_reoptimization: set[tuple[str, ...]] = field(default_factory=set)

    def plan_for(self, query: Query) -> tuple[JoinTree, str]:
        """Return (plan, source) where source is "cache" or "default"."""
        entry = self.cache.lookup(query)
        if entry is not None:
            return entry.plan, "cache"
        return self.database.plan(query), "default"

    def execute(self, query: Query, timeout: float | None = None):
        """Execute the query through the online path, updating regression tracking."""
        plan, source = self.plan_for(query)
        result = self.database.execute(query, plan, timeout=timeout)
        entry = self.cache.lookup(query)
        if entry is not None and source == "cache":
            entry.hits += 1
            entry.last_observed_latency = result.latency
            if (
                not result.timed_out
                and result.latency > self.regression_factor * entry.offline_latency
            ):
                self.needs_reoptimization.add(query.signature())
        return result

    def execution_cache_counters(self) -> dict | None:
        """Cumulative execution-memoization counters of the backing database.

        ``None`` when the database runs without an execution cache.  With
        one, repeated online executions of cached plans show up here as
        outcome hits — the runtime half of the amortization story.
        """
        cache = getattr(self.database, "execution_cache", None)
        if cache is None:
            return None
        return cache.counters.snapshot()

    def should_reoptimize(self, query: Query) -> bool:
        return query.signature() in self.needs_reoptimization

    def clear_reoptimization_flag(self, query: Query) -> None:
        self.needs_reoptimization.discard(query.signature())


def amortized_benefit(
    default_latency: float, optimized_latency: float, optimization_cost: float, executions: int
) -> float:
    """Net time saved by offline optimization after ``executions`` runs of the query.

    Positive values mean the optimization cost has been amortized; this is the
    economic argument of the paper's introduction made computable.
    """
    if executions < 0:
        raise OptimizationError("executions must be non-negative")
    return executions * (default_latency - optimized_latency) - optimization_cost
