"""The workload scheduler: drive ask/tell optimizers over whole workloads.

:class:`WorkloadSession` owns the optimization loop that each technique used
to hide behind a blocking ``optimize()`` call.  Techniques implement the
ask/tell protocol of :mod:`repro.core.protocol` and are looked up in the
registry (:mod:`repro.core.registry`); the session

* resolves per-query budgets from one shared :class:`BudgetSpec` (the paper's
  Section 5.2 model: budget is time spent *executing* proposed plans,
  technique overhead excluded),
* charges workload-level techniques (LimeQO) against the identical pool
  ``budget.scaled(len(queries))`` so every technique pays the same,
* trains the per-schema :class:`SchemaModel` once and shares it,
* routes every plan execution through one **execution backend**
  (:mod:`repro.exec`): inline on the scheduler thread, a thread pool that
  overlaps DBMS waiting, worker processes holding warm database replicas for
  CPU-bound executions, or a router fanning out over several backends,
* schedules the per-query steppers either **sequentially** (one query drained
  at a time — bit-for-bit the behaviour of the old private loops) or
  **interleaved**, stepping suggest/observe on the scheduler thread while the
  backend holds up to ``capacity`` plan executions in flight, with a
  :class:`~repro.exec.SchedulingPolicy` picking which ready query runs next.
  Each state has at most one outstanding proposal, so techniques with
  per-query RNG state (BayesQO, Random) produce identical traces under every
  backend/policy pair,
* memoizes per-technique results, so a comparison that needs Bao both as the
  improvement baseline and as a contender executes it once.

Comparisons across techniques follow the paper's methodology (Section 5.2):
every technique gets the same per-query budget, counted only as time spent
executing proposed plans against the database.

``run_technique`` and ``run_comparison`` remain as thin wrappers over a
session.  Calling ``optimizer.optimize(...)`` directly still works but is
deprecated: it spins up a throwaway single-query loop and cannot share
budgets, schema models or the execution backend.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field

# Importing the technique modules registers them with the registry.
from repro.baselines import balsa, bao, limeqo, random_search  # noqa: F401
from repro.core import optimizer as _bayesqo_module  # noqa: F401
from repro.core.config import (
    BayesQOConfig,
    ExecutionServiceConfig,
    VAETrainingConfig,
    validate_batch_size,
)
from repro.core.optimizer import SchemaModel, train_schema_model
from repro.core.protocol import (
    BudgetSpec,
    ExecutionOutcome,
    PlanProposal,
    drive_query,
    issue_allowance,
    suggest_proposals,
)
from repro.core.registry import TechniqueContext, TechniqueSpec, get_technique, technique_names
from repro.core.result import OptimizationResult
from repro.db.plan_cache import CacheStats
from repro.db.query import Query
from repro.exceptions import OptimizationError
from repro.harness.batching import BatchSizeController
from repro.harness.checkpoint import CheckpointManager, SessionCheckpoint
from repro.exec import (
    ExecutionBackend,
    ExecutionRequest,
    SchedulingPolicy,
    apply_cache_overrides,
    backend_health,
    make_backend,
    make_policy,
    submit_request_batch,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import render_report
from repro.obs.tracer import NULL_TRACER
from repro.workloads.base import Workload

#: Deprecated alias: the registered technique names at import time.  Prefer
#: :func:`repro.core.registry.technique_names`, which reflects late
#: registrations too.
TECHNIQUES = technique_names()

#: Latency reported for a query whose Bao runs were all censored —
#: BaoOptimizer's own fallback of "default plan at the initial timeout".
_BAO_FALLBACK_LATENCY = bao.BAO_INITIAL_TIMEOUT


@dataclass
class ComparisonRun:
    """Results of running several techniques over the same queries."""

    workload_name: str
    results: dict[str, dict[str, OptimizationResult]] = field(default_factory=dict)
    bao_latencies: dict[str, float] = field(default_factory=dict)
    default_latencies: dict[str, float] = field(default_factory=dict)
    #: Execution-memoization totals of the session that produced the run
    #: (see :class:`ExecutionCacheReport`).
    cache_summary: dict = field(default_factory=dict)
    #: Backend-health snapshot of the session (supervisor counters, fault
    #: injection totals, per-replica router statuses) — degraded runs are
    #: visible in the report instead of silent.
    backend_health: dict = field(default_factory=dict)
    #: The session's observability report (:func:`repro.obs.report.render_report`):
    #: top spans by self-time, per-layer latency percentiles, subsystem
    #: tables.  A short "(no spans...)" stub when tracing was off.
    obs_report: str = ""

    def techniques(self) -> list[str]:
        return sorted(self.results)


@dataclass
class ExecutionCacheReport:
    """Session-wide aggregation of per-execution cache stats.

    Every :class:`~repro.core.protocol.ExecutionOutcome` the session observes
    carries the :class:`~repro.db.plan_cache.CacheStats` of the run that
    produced it — wherever it ran (inline, thread pool, or a process-pool
    worker's private cache).  The report sums them so a workload run can
    answer "how much execution work did memoization absorb?".
    """

    executions: int = 0
    #: Executions that carried cache stats (caching enabled on their executor).
    cached_executions: int = 0
    #: Whole executions replayed from the outcome cache.
    outcome_hits: int = 0
    subplan_hits: int = 0
    subplan_misses: int = 0
    #: Largest subplan-memo footprint any executor reported (bytes).
    peak_bytes: int = 0
    #: Executions that ran inside a one-pass plan batch (``Executor.run_batch``)
    #: rather than as an individual submission.
    batched_executions: int = 0

    def note(self, stats: "CacheStats | None") -> None:
        self.executions += 1
        if stats is None:
            return
        if getattr(stats, "batched", False):
            self.batched_executions += 1
        self.cached_executions += 1
        if stats.outcome_hit:
            self.outcome_hits += 1
        self.subplan_hits += stats.subplan_hits
        self.subplan_misses += stats.subplan_misses
        self.peak_bytes = max(self.peak_bytes, stats.bytes_cached)

    @property
    def outcome_hit_rate(self) -> float:
        return self.outcome_hits / self.cached_executions if self.cached_executions else 0.0

    @property
    def subplan_hit_rate(self) -> float:
        total = self.subplan_hits + self.subplan_misses
        return self.subplan_hits / total if total else 0.0

    def summary(self) -> dict:
        return {
            "executions": self.executions,
            "cached_executions": self.cached_executions,
            "outcome_hits": self.outcome_hits,
            "outcome_hit_rate": self.outcome_hit_rate,
            "subplan_hits": self.subplan_hits,
            "subplan_misses": self.subplan_misses,
            "subplan_hit_rate": self.subplan_hit_rate,
            "peak_bytes": self.peak_bytes,
            "batched_executions": self.batched_executions,
        }

    def __str__(self) -> str:
        return (
            f"{self.executions} executions, {self.outcome_hits} replayed "
            f"({self.outcome_hit_rate:.0%}), subplan hit rate "
            f"{self.subplan_hit_rate:.0%}, peak {self.peak_bytes / 1e6:.1f} MB cached"
        )


def prepare_schema_model(
    workload: Workload, vae_config: VAETrainingConfig | None = None
) -> SchemaModel:
    """Train the per-schema VAE once so every technique and query can share it."""
    return train_schema_model(
        workload.database, workload.queries, vae_config, max_aliases=workload.max_aliases
    )


class WorkloadSession:
    """Drives registered techniques over one workload under a shared budget.

    Parameters
    ----------
    workload:
        The workload (database + queries) to optimize.
    queries:
        Subset of queries to run (defaults to every workload query).
    budget:
        Per-query budget.  Workload-level techniques are charged against
        ``budget.scaled(len(queries))`` — the same total pool.
    schema_model:
        Pre-trained per-schema artifacts; trained lazily (once) when a
        technique needs them and none was given.
    bayes_config / vae_config:
        Configuration forwarded to BayesQO / the lazy schema-model training.
    seed:
        Base seed forwarded to every technique factory.
    backend:
        Where plan executions run: an :class:`~repro.exec.ExecutionBackend`
        instance, a backend name (``"inline"``, ``"thread"``, ``"process"``),
        or ``None`` to derive one from ``exec_config``/``max_workers``.
    policy:
        Which ready query gets the next free execution slot: a
        :class:`~repro.exec.SchedulingPolicy` instance, a policy name
        (``"round_robin"``, ``"budget_aware"``), or ``None`` for round-robin.
    exec_config:
        Declarative backend/policy selection
        (:class:`~repro.core.config.ExecutionServiceConfig`); explicit
        ``backend``/``policy`` arguments take precedence over it.
    max_workers:
        Concurrent plan executions.  With no explicit backend,
        ``max_workers > 1`` selects the thread backend (the PR 2 behaviour);
        ``max_workers == 1`` selects inline execution.
    batch_size:
        Proposals held in flight *per query* (the batched-ask q knob).
        Techniques advertising ``supports_batch`` in the registry keep up to
        q plans executing concurrently for one query — what lets a
        single-query workload saturate a process pool; others fall back to
        q=1 transparently.  ``"auto"`` delegates the knob to a
        :class:`~repro.harness.batching.BatchSizeController` (widen while
        workers idle, narrow when improvement stalls).  Defaults to
        ``exec_config.batch_size`` (1).
    batch_execution:
        Submit a query's in-flight q proposals as *one* backend batch so the
        executor runs their shared join subtrees once
        (:meth:`~repro.db.executor.Executor.run_batch`).  Results are
        bit-for-bit identical to per-request submission.  At q=1 there is
        nothing to group and submission transparently stays per-request.
        Defaults to ``exec_config.batch_execution`` (True).
    interleave:
        Force interleaving on/off; defaults to backend capacity > 1.
    checkpoint_path / checkpoint_every:
        Periodic checkpoint/resume (see :mod:`repro.harness.checkpoint`):
        the session persists optimizer state, completed results and the
        execution cache's outcome logs every ``checkpoint_every``
        observations, and a session restarted with the same technique, seed
        and query list resumes from the checkpoint and finishes with traces
        bit-for-bit identical to an uninterrupted run.  Checkpointed runs
        are pinned to the sequential scheduler.  Defaults come from
        ``exec_config``; ``None`` disables checkpointing.

    Sessions own their backend's pools: call :meth:`close` (or use the
    session as a context manager) when done with non-inline backends.
    """

    def __init__(
        self,
        workload: Workload,
        queries: list[Query] | None = None,
        budget: BudgetSpec | None = None,
        *,
        schema_model: SchemaModel | None = None,
        bayes_config: BayesQOConfig | None = None,
        vae_config: VAETrainingConfig | None = None,
        seed: int = 0,
        backend: "ExecutionBackend | str | None" = None,
        policy: "SchedulingPolicy | str | None" = None,
        exec_config: ExecutionServiceConfig | None = None,
        max_workers: int = 1,
        batch_size: int | str | None = None,
        batch_execution: bool | None = None,
        interleave: bool | None = None,
        checkpoint_path: str | None = None,
        checkpoint_every: int | None = None,
        tracer=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_workers < 1:
            raise OptimizationError("max_workers must be at least 1")
        if batch_size is None:
            batch_size = exec_config.batch_size if exec_config is not None else 1
        validate_batch_size(batch_size)
        if checkpoint_path is None and exec_config is not None:
            checkpoint_path = exec_config.checkpoint_path
        if checkpoint_every is None:
            checkpoint_every = exec_config.checkpoint_every if exec_config is not None else 25
        self.workload = workload
        self.database = workload.database
        self.queries = list(queries) if queries is not None else list(workload.queries)
        self.budget = budget or BudgetSpec()
        self.bayes_config = bayes_config
        self.vae_config = vae_config
        self.seed = seed
        self.max_workers = max_workers
        self.batch_size = batch_size
        # One-pass batch submission of a query's in-flight q proposals
        # (``ExecutionServiceConfig.batch_execution``, default on).  At q=1
        # each round issues a single proposal, so there is nothing to group
        # and submission transparently stays per-request.
        if batch_execution is None:
            batch_execution = (
                exec_config.batch_execution if exec_config is not None else True
            )
        self.batch_execution = batch_execution
        self.exec_config = exec_config
        # Telemetry is opt-in: the defaults (a no-op tracer, a private
        # registry) keep every pre-existing call site byte-identical.  Set
        # before backend resolution so traced sessions thread the tracer all
        # the way down into the execution service.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._backend = self._resolve_backend(backend)
        self.policy = self._resolve_policy(policy)
        if interleave is not None:
            self.interleave = interleave
        else:
            self.interleave = self._backend.capacity() > 1
        self._checkpoint: CheckpointManager | None = (
            CheckpointManager(checkpoint_path, every=checkpoint_every)
            if checkpoint_path is not None
            else None
        )
        self._schema_model = schema_model
        self._results: dict[str, dict[str, OptimizationResult]] = {}
        #: Session-wide execution-memoization totals, updated on every
        #: outcome the session observes (any backend, any scheduler mode).
        self.cache_report = ExecutionCacheReport()
        # Providers unify the read side of counters that live in subsystem
        # dataclasses; registry snapshots pull them live, pickling drops them.
        self.metrics.register_provider("execution_cache", self.cache_report.summary)
        self.metrics.register_provider("backend_health", self.health_report)

    # ------------------------------------------------------------------ execution service
    def _resolve_backend(self, backend) -> ExecutionBackend:
        if backend is not None and not isinstance(backend, str):
            return backend
        config = self.exec_config
        if isinstance(backend, str):
            if config is None:
                config = ExecutionServiceConfig(backend=backend, max_workers=self.max_workers)
            else:
                # The explicit backend name wins; every other exec_config knob
                # (workers, replicas, start method, warmup) still applies.
                config = dataclasses.replace(config, backend=backend)
        elif config is None:
            # Legacy selection: max_workers alone decides, exactly as PR 2 did.
            config = ExecutionServiceConfig(
                backend="inline" if self.max_workers == 1 else "thread",
                max_workers=self.max_workers,
            )
        # Cache-knob overrides swap in a snapshot rather than mutating the
        # workload's database; the session works against the effective one.
        self.database = apply_cache_overrides(config, self.database)
        return make_backend(config, self.database, self.queries, tracer=self.tracer)

    def _resolve_policy(self, policy) -> SchedulingPolicy:
        if policy is not None and not isinstance(policy, str):
            return policy
        if isinstance(policy, str):
            return make_policy(policy)
        if self.exec_config is not None:
            return make_policy(self.exec_config.policy)
        return make_policy("round_robin")

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend this session submits plan executions to."""
        return self._backend

    def close(self) -> None:
        """Shut down the backend's pools/processes.  Idempotent."""
        self._backend.close()

    def __enter__(self) -> "WorkloadSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ shared artifacts
    def ensure_schema_model(self) -> SchemaModel:
        """The shared per-schema VAE/latent space, trained on first use."""
        if self._schema_model is None:
            self._schema_model = prepare_schema_model(self.workload, self.vae_config)
        return self._schema_model

    def _context(self, needs_schema_model: bool) -> TechniqueContext:
        return TechniqueContext(
            database=self.database,
            workload=self.workload,
            schema_model=self.ensure_schema_model() if needs_schema_model else self._schema_model,
            bayes_config=self.bayes_config,
            seed=self.seed,
        )

    # ------------------------------------------------------------------ public API
    def run(self, technique: str, *, refresh: bool = False) -> dict[str, OptimizationResult]:
        """Run one technique over the session's queries; results are memoized.

        The memo is what lets :func:`run_comparison` use Bao both as the
        improvement baseline and as a contender without executing it twice.
        Pass ``refresh=True`` to force a fresh run.
        """
        if not refresh and technique in self._results:
            return self._results[technique]
        spec = get_technique(technique)
        optimizer = spec.factory(self._context(spec.needs_schema_model))
        if hasattr(optimizer, "tracer"):
            # Techniques that emit telemetry (BayesQO -> BOEngine refit /
            # acquisition spans) record into the session's tracer.
            optimizer.tracer = self.tracer
        # Techniques with a naturally bounded search space (Bao's 49 hint
        # sets) are charged on the time axis only.
        budget = self.budget.without_execution_cap() if spec.ignores_execution_cap else self.budget
        # The per-query in-flight cap: only techniques advertising the
        # batched ask get q > 1; everyone else falls back to one proposal
        # outstanding per state, transparently.  "auto" hands the knob to a
        # fresh controller per run (q starts at 1 and adapts).
        controller: BatchSizeController | None = None
        if not spec.supports_batch:
            q = 1
        elif self.batch_size == "auto":
            controller = BatchSizeController(max_q=max(1, self._backend.capacity()))
            q = controller.max_q
        else:
            q = self.batch_size
        interleave = (
            self.interleave
            and self._backend.capacity() > 1
            # A single-query workload still benefits from interleaving when
            # the technique can keep q > 1 of its own plans in flight.
            and (len(self.queries) > 1 or q > 1)
            # Order-sensitive techniques share mutable state across queries
            # (Balsa's RNG and value network); interleaving them would make
            # results depend on thread-completion timing.
            and not spec.order_sensitive
        )
        if spec.workload_level:
            results = self._run_workload_level(optimizer, budget, technique=technique)
        elif interleave and self._checkpoint is None:
            # Checkpointing pins the run to the sequential scheduler: its
            # quiescent points are well-defined there, and sequential traces
            # are the reference every other mode must match anyway.
            results = self._run_interleaved(optimizer, budget, spec, q, controller)
        else:
            results = self._run_sequential(optimizer, budget, technique=technique)
        self._results[technique] = results
        return results

    def bao_latencies(self) -> dict[str, float]:
        """Best Bao hint-set latency per query (the improvement baseline).

        The baseline must reflect the best plan Bao could *ever* produce, so
        it is never truncated by the comparison's time budget; when no time
        budget is set this is the same run as ``run("bao")`` and is shared.
        """
        if self.budget.time_budget is None:
            results = self.run("bao")
        elif "bao:baseline" in self._results:
            results = self._results["bao:baseline"]
        else:
            spec = get_technique("bao")
            optimizer = spec.factory(self._context(spec.needs_schema_model))
            unbounded = BudgetSpec(max_executions=None, time_budget=None)
            results = {
                query.name: drive_query(optimizer, self.database, query, unbounded)
                for query in self.queries
            }
            self._results["bao:baseline"] = results
        return {
            name: result.best_latency_or(_BAO_FALLBACK_LATENCY)
            for name, result in results.items()
        }

    def default_latencies(self, timeout: float = 600.0) -> dict[str, float]:
        """Default-optimizer plan latency per query."""
        return {
            query.name: self.database.execute(query, timeout=timeout).latency
            for query in self.queries
        }

    # ------------------------------------------------------------------ execution
    def _request(self, proposal: PlanProposal, query: Query) -> ExecutionRequest:
        target = proposal.query if proposal.query is not None else query
        return ExecutionRequest(
            query=target,
            plan=proposal.plan,
            timeout=proposal.timeout,
            proposal_id=proposal.proposal_id,
        )

    def _submit_requests(self, requests: "list[ExecutionRequest]") -> "list[Future]":
        """Submit one scheduling round's requests for a single query.

        With ``batch_execution`` and more than one request, the whole group
        goes through :func:`~repro.exec.submit_request_batch` so backends
        with a batch path run it as one :meth:`Executor.run_batch` call
        (shared subtrees execute once); otherwise — q=1 rounds, batching
        disabled, or wrapper backends without a batch path — each request is
        submitted individually, which is bit-for-bit equivalent.
        """
        if self.batch_execution and len(requests) > 1:
            return submit_request_batch(self._backend, requests)
        return [self._backend.submit(request) for request in requests]

    def _execute(self, proposal: PlanProposal, query: Query) -> ExecutionOutcome:
        """Execute one proposal through the backend, waiting for its outcome."""
        tracer = self.tracer
        if not tracer.enabled:
            outcome = self._backend.submit(self._request(proposal, query)).result()
        else:
            with tracer.span(
                "exec.request",
                category="exec",
                query=query.name,
                proposal_id=proposal.proposal_id,
            ) as span:
                outcome = self._backend.submit(self._request(proposal, query)).result()
                span.annotate(
                    latency=outcome.latency,
                    timed_out=outcome.timed_out,
                    attempts=outcome.attempts,
                    cache_hit=bool(outcome.cache is not None and outcome.cache.outcome_hit),
                )
                if outcome.spans:
                    # Worker-recorded spans (process pool) re-parent under
                    # this request so the causal chain crosses the pool.
                    tracer.adopt(outcome.spans, parent=span)
        self.cache_report.note(outcome.cache)
        self.metrics.histogram("optimize.exec_latency").observe(outcome.latency)
        return outcome

    def _outcome_of(self, future: "Future[ExecutionOutcome]", query_name: str) -> ExecutionOutcome:
        """Unwrap a backend future, attributing any failure to its query.

        A bare ``future.result()`` traceback names a pool internals frame,
        not the work item; wrapping here is what lets a 50-query interleaved
        run say *which* query's plan execution died.
        """
        try:
            outcome = future.result()
        except Exception as exc:
            raise OptimizationError(
                f"plan execution failed for query {query_name!r}: {exc}"
            ) from exc
        self.cache_report.note(outcome.cache)
        tracer = self.tracer
        if tracer.enabled:
            record = tracer.instant(
                "exec.complete",
                category="exec",
                query=query_name,
                latency=outcome.latency,
                timed_out=outcome.timed_out,
                attempts=outcome.attempts,
                cache_hit=bool(outcome.cache is not None and outcome.cache.outcome_hit),
            )
            if outcome.spans:
                tracer.adopt(outcome.spans, parent=record)
        self.metrics.histogram("optimize.exec_latency").observe(outcome.latency)
        return outcome

    # ------------------------------------------------------------------ checkpointing
    def _cache_events(self) -> list:
        cache = getattr(self.database, "execution_cache", None)
        return cache.export_outcomes() if cache is not None else []

    def _restore_cache_events(self, events: list) -> None:
        cache = getattr(self.database, "execution_cache", None)
        if cache is not None and events:
            cache.import_outcomes(events)

    def _save_checkpoint(
        self, technique: str, optimizer, completed: dict, state=None
    ) -> None:
        assert self._checkpoint is not None
        self._checkpoint.save(
            SessionCheckpoint(
                technique=technique,
                seed=self.seed,
                query_names=[query.name for query in self.queries],
                completed=dict(completed),
                optimizer=optimizer,
                state=state,
                cache_events=self._cache_events(),
            )
        )

    def _load_checkpoint(self, technique: str) -> "SessionCheckpoint | None":
        if self._checkpoint is None:
            return None
        checkpoint = self._checkpoint.load()
        if checkpoint is None or not checkpoint.matches(
            technique, self.seed, [query.name for query in self.queries]
        ):
            return None
        self._restore_cache_events(checkpoint.cache_events)
        return checkpoint

    # ------------------------------------------------------------------ reporting
    def health_report(self) -> dict:
        """Backend-health snapshot: supervision, fault injection, router.

        Walks the backend's wrapper layers (supervisor -> fault harness ->
        router/pool), so a degraded run — retries burned, replicas on
        probation, execution running on the inline fallback — is visible in
        reports next to :attr:`cache_report` instead of silent.
        """
        return backend_health(self._backend)

    def obs_report(self) -> str:
        """Text snapshot of the session's telemetry (spans + metrics)."""
        return render_report(self.tracer.spans(), self.metrics.snapshot())

    # ------------------------------------------------------------------ schedulers
    def _run_sequential(
        self, optimizer, budget: BudgetSpec, technique: str = ""
    ) -> dict[str, OptimizationResult]:
        """Drain one query at a time (the behaviour of the old private loops).

        With checkpointing enabled the loop periodically persists the
        optimizer (and current state) at quiescent points — after an
        ``observe``, nothing outstanding — plus at every query boundary, and
        on start resumes from a matching checkpoint: completed queries are
        restored verbatim, the in-progress query continues from its exact
        suggest/observe position.
        """
        results: dict[str, OptimizationResult] = {}
        resumed_state = None
        checkpoint = self._load_checkpoint(technique)
        if checkpoint is not None:
            results.update(checkpoint.completed)
            if checkpoint.optimizer is not None:
                # The pickled optimizer carries the mid-run model/RNG state
                # the freshly built one lacks.  Its tracer was nulled on
                # pickle; re-attach the live one.
                optimizer = checkpoint.optimizer
                if hasattr(optimizer, "tracer"):
                    optimizer.tracer = self.tracer
            resumed_state = checkpoint.state
        for query in self.queries:
            if query.name in results:
                continue
            if resumed_state is not None and resumed_state.query.name == query.name:
                state, resumed_state = resumed_state, None
            else:
                state = optimizer.start(query, budget=budget)
            while state.budget_left():
                with self.tracer.span(
                    "optimize.suggest", category="optimize", query=query.name
                ):
                    proposal = optimizer.suggest(state)
                if proposal is None:
                    break
                outcome = self._execute(proposal, query)
                with self.tracer.span(
                    "optimize.observe", category="optimize", query=query.name
                ):
                    optimizer.observe(state, outcome)
                if self._checkpoint is not None and self._checkpoint.due():
                    self._save_checkpoint(technique, optimizer, results, state=state)
            results[query.name] = optimizer.finish(state)
            if self._checkpoint is not None:
                self._save_checkpoint(technique, optimizer, results)
        if self._checkpoint is not None:
            self._checkpoint.clear()
        return results

    def _run_workload_level(
        self, optimizer, budget: BudgetSpec, technique: str = ""
    ) -> dict[str, OptimizationResult]:
        """Drive a workload-level optimizer against the shared budget pool."""
        state = None
        checkpoint = self._load_checkpoint(technique)
        if checkpoint is not None and checkpoint.state is not None:
            if checkpoint.optimizer is not None:
                optimizer = checkpoint.optimizer
                if hasattr(optimizer, "tracer"):
                    optimizer.tracer = self.tracer
            state = checkpoint.state
        if state is None:
            state = optimizer.start_workload(
                self.queries, budget=budget.scaled(len(self.queries))
            )
        while state.budget_left():
            with self.tracer.span("optimize.suggest", category="optimize"):
                proposal = optimizer.suggest(state)
            if proposal is None:
                break
            outcome = self._execute(proposal, proposal.query)
            with self.tracer.span(
                "optimize.observe", category="optimize", query=proposal.query.name
            ):
                optimizer.observe(state, outcome)
            if self._checkpoint is not None and self._checkpoint.due():
                self._save_checkpoint(technique, optimizer, {}, state=state)
        results = optimizer.finish_workload(state)
        if self._checkpoint is not None:
            self._checkpoint.clear()
        return results

    def _run_interleaved(
        self,
        optimizer,
        budget: BudgetSpec,
        spec: TechniqueSpec,
        q: int = 1,
        controller: "BatchSizeController | None" = None,
    ) -> dict[str, OptimizationResult]:
        """Step all per-query states; the backend holds executions in flight.

        ``suggest``/``observe`` always run on this (scheduler) thread, so
        technique internals need no locking; only plan execution — pure over
        immutable relations — runs concurrently, wherever the backend puts
        it.  At the default ``q = 1`` each state has at most one plan in
        flight, so per-query optimization remains sequential and techniques
        with per-query RNGs reproduce their sequential traces exactly; the
        policy only decides which ready query claims a free slot.

        With ``q > 1`` (techniques advertising ``supports_batch``) a selected
        state issues up to q proposals via ``suggest_batch`` and their
        outcomes resolve out of completion order by ``proposal_id``.  Budget
        is charged per *completed* outcome; :func:`issue_allowance` caps the
        in-flight count so the execution budget can never be overshot.

        With a :class:`~repro.harness.batching.BatchSizeController`
        (``batch_size="auto"``) the per-round q follows ``controller.q``,
        widened when rounds leave slots idle with every state parked at its
        cap and narrowed when a window of observations stops improving any
        query's best latency.
        """
        results: dict[str, OptimizationResult] = {}
        self.policy.reset()
        ready = [optimizer.start(query, budget=budget) for query in self.queries]
        scored = optimizer if spec.predicts_improvement else None
        in_flight: dict[Future, object] = {}
        capacity = max(1, self._backend.capacity())
        best_seen: dict[str, float] = {}
        try:
            while ready or in_flight:
                q_now = controller.q if controller is not None else q
                while ready and len(in_flight) < capacity:
                    state = ready.pop(self.policy.select(ready, scored))
                    if self.tracer.enabled:
                        self.tracer.instant(
                            "schedule.select",
                            category="schedule",
                            query=state.query.name,
                            in_flight=len(in_flight),
                            ready=len(ready),
                        )
                    want = min(issue_allowance(state, q_now), capacity - len(in_flight))
                    proposals = suggest_proposals(optimizer, state, want)
                    if not proposals:
                        if want > 0:
                            # Asked and got nothing: the technique is done
                            # with this query regardless of budget.
                            state.exhausted = True
                        if state.outstanding_count == 0:
                            results[state.query.name] = optimizer.finish(state)
                        # else: parked — it re-enters the ready list when one
                        # of its outstanding outcomes lands.
                        continue
                    requests = [
                        self._request(proposal, state.query) for proposal in proposals
                    ]
                    for future in self._submit_requests(requests):
                        in_flight[future] = state
                    if len(proposals) == want and issue_allowance(state, q_now) > 0:
                        # The ask was capacity-capped, not technique-capped:
                        # the state may claim further slots as they free up.
                        ready.append(state)
                if controller is not None:
                    # Starvation: slots idle while every unfinished state is
                    # parked at its q cap (nothing ready to issue).
                    controller.record_round(
                        idle_slots=capacity - len(in_flight),
                        starved=bool(in_flight) and not ready,
                    )
                if not in_flight:
                    continue
                done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    state = in_flight.pop(future)
                    outcome = self._outcome_of(future, state.query.name)
                    if controller is not None:
                        name = state.query.name
                        improved = not outcome.timed_out and outcome.latency < best_seen.get(
                            name, float("inf")
                        )
                        if improved:
                            best_seen[name] = outcome.latency
                        controller.record_outcome(improved)
                    optimizer.observe(state, outcome)
                    if all(other is not state for other in ready):
                        ready.append(state)
        finally:
            for future in in_flight:
                future.cancel()
        return {query.name: results[query.name] for query in self.queries}


# ---------------------------------------------------------------------- wrappers
def run_technique(
    technique: str,
    workload: Workload,
    queries: list[Query],
    budget: BudgetSpec,
    schema_model: SchemaModel | None = None,
    bayes_config: BayesQOConfig | None = None,
    seed: int = 0,
    max_workers: int = 1,
    exec_config: ExecutionServiceConfig | None = None,
) -> dict[str, OptimizationResult]:
    """Run one technique on a list of queries and return per-query traces.

    Thin wrapper over :class:`WorkloadSession` kept for existing call sites.
    """
    with WorkloadSession(
        workload,
        queries=queries,
        budget=budget,
        schema_model=schema_model,
        bayes_config=bayes_config,
        seed=seed,
        max_workers=max_workers,
        exec_config=exec_config,
    ) as session:
        return session.run(technique)


def run_comparison(
    workload: Workload,
    queries: list[Query],
    budget: BudgetSpec,
    techniques: list[str] = ("bayesqo", "random", "balsa"),
    schema_model: SchemaModel | None = None,
    bayes_config: BayesQOConfig | None = None,
    seed: int = 0,
    max_workers: int = 1,
    exec_config: ExecutionServiceConfig | None = None,
    tracer=None,
    metrics: MetricsRegistry | None = None,
) -> ComparisonRun:
    """Run the Figure 3 style comparison: every technique, same queries, same budget.

    Bao (the improvement baseline) is executed once through the session and
    reused when ``"bao"`` is also in ``techniques``.  Pass a
    :class:`~repro.obs.tracer.Tracer` to get the telemetry snapshot on
    :attr:`ComparisonRun.obs_report`.
    """
    with WorkloadSession(
        workload,
        queries=queries,
        budget=budget,
        schema_model=schema_model,
        bayes_config=bayes_config,
        seed=seed,
        max_workers=max_workers,
        exec_config=exec_config,
        tracer=tracer,
        metrics=metrics,
    ) as session:
        run = ComparisonRun(workload_name=workload.name)
        run.bao_latencies = session.bao_latencies()
        run.default_latencies = session.default_latencies()
        for technique in techniques:
            run.results[technique] = session.run(technique)
        run.cache_summary = session.cache_report.summary()
        run.backend_health = session.health_report()
        run.obs_report = session.obs_report()
        return run
