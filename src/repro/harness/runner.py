"""Run optimization techniques over workloads under a shared budget model.

Comparisons across techniques follow the paper's methodology (Section 5.2):
every technique gets the same per-query budget, counted only as time spent
executing proposed plans against the database (technique overhead is excluded
and analyzed separately in Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.balsa import BalsaConfig, BalsaOptimizer
from repro.baselines.bao import BaoOptimizer
from repro.baselines.limeqo import LimeQOOptimizer
from repro.baselines.random_search import RandomSearch
from repro.core.config import BayesQOConfig, VAETrainingConfig
from repro.core.optimizer import BayesQO, SchemaModel, train_schema_model
from repro.core.result import OptimizationResult
from repro.db.query import Query
from repro.exceptions import OptimizationError
from repro.workloads.base import Workload

#: Technique identifiers accepted by :func:`run_technique`.
TECHNIQUES = ("bayesqo", "bao", "random", "balsa", "limeqo")


@dataclass
class BudgetSpec:
    """Per-query optimization budget: execution count and/or simulated time."""

    max_executions: int = 60
    time_budget: float | None = None


@dataclass
class ComparisonRun:
    """Results of running several techniques over the same queries."""

    workload_name: str
    results: dict[str, dict[str, OptimizationResult]] = field(default_factory=dict)
    bao_latencies: dict[str, float] = field(default_factory=dict)
    default_latencies: dict[str, float] = field(default_factory=dict)

    def techniques(self) -> list[str]:
        return sorted(self.results)


def prepare_schema_model(
    workload: Workload, vae_config: VAETrainingConfig | None = None
) -> SchemaModel:
    """Train the per-schema VAE once so every technique and query can share it."""
    return train_schema_model(
        workload.database, workload.queries, vae_config, max_aliases=workload.max_aliases
    )


def run_technique(
    technique: str,
    workload: Workload,
    queries: list[Query],
    budget: BudgetSpec,
    schema_model: SchemaModel | None = None,
    bayes_config: BayesQOConfig | None = None,
    seed: int = 0,
) -> dict[str, OptimizationResult]:
    """Run one technique on a list of queries and return per-query traces."""
    if technique not in TECHNIQUES:
        raise OptimizationError(f"unknown technique {technique!r}; pick one of {TECHNIQUES}")
    database = workload.database
    if technique == "bao":
        optimizer = BaoOptimizer(database)
        return {
            query.name: optimizer.optimize(query, time_budget=budget.time_budget).result
            for query in queries
        }
    if technique == "random":
        random_search = RandomSearch(database, seed=seed)
        return {
            query.name: random_search.optimize(
                query, max_executions=budget.max_executions, time_budget=budget.time_budget
            )
            for query in queries
        }
    if technique == "balsa":
        balsa = BalsaOptimizer(database, BalsaConfig(seed=seed))
        return {
            query.name: balsa.optimize(
                query, max_executions=budget.max_executions, time_budget=budget.time_budget
            )
            for query in queries
        }
    if technique == "limeqo":
        limeqo = LimeQOOptimizer(database)
        return limeqo.optimize_workload(
            queries, max_executions=budget.max_executions * len(queries),
            time_budget=budget.time_budget,
        )
    # BayesQO.
    if schema_model is None:
        schema_model = prepare_schema_model(workload)
    config = bayes_config or BayesQOConfig(seed=seed)
    optimizer = BayesQO(database, schema_model, config=config)
    return {
        query.name: optimizer.optimize(
            query, max_executions=budget.max_executions, time_budget=budget.time_budget
        )
        for query in queries
    }


def run_comparison(
    workload: Workload,
    queries: list[Query],
    budget: BudgetSpec,
    techniques: list[str] = ("bayesqo", "random", "balsa"),
    schema_model: SchemaModel | None = None,
    bayes_config: BayesQOConfig | None = None,
    seed: int = 0,
) -> ComparisonRun:
    """Run the Figure 3 style comparison: every technique, same queries, same budget."""
    run = ComparisonRun(workload_name=workload.name)
    bao = BaoOptimizer(workload.database)
    for query in queries:
        outcome = bao.optimize(query)
        run.bao_latencies[query.name] = outcome.best_latency
        default_execution = workload.database.execute(query, timeout=600.0)
        run.default_latencies[query.name] = default_execution.latency
    if "bayesqo" in techniques and schema_model is None:
        schema_model = prepare_schema_model(workload)
    for technique in techniques:
        run.results[technique] = run_technique(
            technique,
            workload,
            queries,
            budget,
            schema_model=schema_model,
            bayes_config=bayes_config,
            seed=seed,
        )
    return run
