"""Benchmark harness: technique runners, metrics and text reporting."""

from repro.harness.metrics import (
    WorkloadSummary,
    best_latency_curve,
    improvement_cdf,
    improvement_distribution,
    improvement_over_baseline,
    percentage_difference,
    workload_curve,
)
from repro.harness.reporting import format_cdf, format_summaries, format_table
from repro.harness.runner import (
    BudgetSpec,
    ComparisonRun,
    TECHNIQUES,
    prepare_schema_model,
    run_comparison,
    run_technique,
)

__all__ = [
    "BudgetSpec",
    "ComparisonRun",
    "TECHNIQUES",
    "WorkloadSummary",
    "best_latency_curve",
    "format_cdf",
    "format_summaries",
    "format_table",
    "improvement_cdf",
    "improvement_distribution",
    "improvement_over_baseline",
    "percentage_difference",
    "prepare_schema_model",
    "run_comparison",
    "run_technique",
    "workload_curve",
]
