"""Benchmark harness: the workload scheduler, metrics and text reporting.

The loop owner is :class:`~repro.harness.runner.WorkloadSession`, which drives
every registered ask/tell technique over a workload under one shared
:class:`~repro.core.protocol.BudgetSpec` — sequentially, or interleaved with
plan executions routed through any :mod:`repro.exec` backend (thread pool,
process pool with warm database replicas, multi-backend router) under a
cross-query scheduling policy.  ``run_technique``/``run_comparison`` are thin
wrappers kept for existing call sites.
"""

from repro.harness.metrics import (
    StreamingPercentiles,
    WorkloadSummary,
    best_latency_curve,
    improvement_cdf,
    improvement_distribution,
    improvement_over_baseline,
    percentage_difference,
    workload_curve,
)
from repro.harness.batching import BatchSizeController
from repro.harness.checkpoint import CheckpointManager, SessionCheckpoint
from repro.harness.reporting import format_cdf, format_summaries, format_table
from repro.harness.runner import (
    ComparisonRun,
    ExecutionCacheReport,
    TECHNIQUES,
    WorkloadSession,
    prepare_schema_model,
    run_comparison,
    run_technique,
)
from repro.core.config import ExecutionServiceConfig
from repro.core.protocol import BudgetSpec, ExecutionOutcome, PlanProposal

__all__ = [
    "BatchSizeController",
    "BudgetSpec",
    "CheckpointManager",
    "ExecutionServiceConfig",
    "ComparisonRun",
    "ExecutionCacheReport",
    "SessionCheckpoint",
    "StreamingPercentiles",
    "ExecutionOutcome",
    "PlanProposal",
    "TECHNIQUES",
    "WorkloadSession",
    "WorkloadSummary",
    "best_latency_curve",
    "format_cdf",
    "format_summaries",
    "format_table",
    "improvement_cdf",
    "improvement_distribution",
    "improvement_over_baseline",
    "percentage_difference",
    "prepare_schema_model",
    "run_comparison",
    "run_technique",
    "workload_curve",
]
