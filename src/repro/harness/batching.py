"""Adaptive batch sizing: the ``batch_size="auto"`` controller.

PR 4's batched ask uses a fixed q (proposals in flight per query).  The
tradeoff it hand-tunes: throughput gain saturates at the worker count, while
sample-efficiency loss *grows* with q (each extra in-flight proposal is
chosen with one less observation).  :class:`BatchSizeController` closes the
loop with the two signals the scheduler can already measure:

* **starvation** — the backend had free execution slots but no ready state
  was allowed to issue (every query parked at its q cap).  Persistent
  starvation means q is the bottleneck: widen toward the backend capacity.
* **stall** — a sliding window of completed observations produced no new
  best latency for any query.  The extra parallelism is no longer buying
  information: narrow back toward sequential proposing.

The controller is deliberately minimal — integer q, one-step moves, small
hysteresis counters — because it sits on the scheduler thread of
:class:`~repro.harness.runner.WorkloadSession` and must never become the hot
path.  Auto mode inherits the q > 1 caveat: traces depend on completion
timing, so runs are not bit-for-bit reproducible (use a fixed q for that).
"""

from __future__ import annotations

from collections import deque

from repro.exceptions import OptimizationError


class BatchSizeController:
    """Widens q while workers idle; narrows when improvement stalls.

    Parameters
    ----------
    max_q:
        Upper bound for q — the backend capacity (more in-flight proposals
        than execution slots can never help).
    min_q:
        Lower bound (1 = sequential proposing).
    widen_patience:
        Consecutive starved scheduling rounds required before widening.
    stall_window:
        Completed observations inspected for the narrowing signal; if none
        of the last ``stall_window`` observations improved its query's best
        latency, q shrinks by one.
    """

    def __init__(
        self,
        max_q: int,
        min_q: int = 1,
        widen_patience: int = 2,
        stall_window: int = 8,
    ) -> None:
        if min_q < 1:
            raise OptimizationError("min_q must be at least 1")
        if max_q < min_q:
            raise OptimizationError("max_q must be at least min_q")
        if widen_patience < 1:
            raise OptimizationError("widen_patience must be at least 1")
        if stall_window < 1:
            raise OptimizationError("stall_window must be at least 1")
        self.min_q = min_q
        self.max_q = max_q
        self.widen_patience = widen_patience
        self.stall_window = stall_window
        self.q = min_q
        self._starved_rounds = 0
        self._recent: deque[bool] = deque(maxlen=stall_window)
        #: (q values over time, for observability/tests)
        self.history: list[int] = [min_q]

    # ------------------------------------------------------------------ signals
    def record_round(self, idle_slots: int, starved: bool) -> None:
        """One scheduling round: ``idle_slots`` free while ``starved`` states
        wanted to issue but were q-capped."""
        if starved and idle_slots > 0:
            self._starved_rounds += 1
            if self._starved_rounds >= self.widen_patience:
                self._move(self.q + 1)
                self._starved_rounds = 0
        else:
            self._starved_rounds = 0

    def record_outcome(self, improved: bool) -> None:
        """One completed observation; ``improved`` = new best for its query."""
        self._recent.append(improved)
        if (
            len(self._recent) == self.stall_window
            and not any(self._recent)
            and self.q > self.min_q
        ):
            self._move(self.q - 1)
            self._recent.clear()

    # ------------------------------------------------------------------ internals
    def _move(self, q: int) -> None:
        q = max(self.min_q, min(self.max_q, q))
        if q != self.q:
            self.q = q
            self.history.append(q)
