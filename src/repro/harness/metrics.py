"""Metrics shared by the benchmark harness (improvement CDFs, percentiles, curves)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.result import OptimizationResult


def improvement_over_baseline(best_latency: float, baseline_latency: float) -> float:
    """Percentage reduction in runtime relative to a baseline latency.

    Matches the paper's "% improvement over Bao": 1s -> 200ms is an 80%
    improvement; negative values mean a regression.
    """
    if baseline_latency <= 0:
        raise ValueError("baseline latency must be positive")
    return 100.0 * (1.0 - best_latency / baseline_latency)


def improvement_distribution(
    results: dict[str, OptimizationResult], baselines: dict[str, float]
) -> dict[str, float]:
    """Per-query improvement over the baseline latency."""
    improvements = {}
    for name, result in results.items():
        best = result.best_latency_or(float("inf"))
        if not np.isfinite(best):
            # Nothing executed successfully within budget: a 0% improvement.
            improvements[name] = 0.0
            continue
        improvements[name] = improvement_over_baseline(best, baselines[name])
    return improvements


def improvement_cdf(
    improvements: dict[str, float], thresholds: list[float] | None = None
) -> list[tuple[float, float]]:
    """Fraction of queries achieving at least each improvement threshold (Figure 3's CDF)."""
    if thresholds is None:
        thresholds = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0]
    values = np.asarray(list(improvements.values()))
    points = []
    for threshold in thresholds:
        fraction = float(np.mean(values >= threshold)) if len(values) else 0.0
        points.append((threshold, fraction))
    return points


@dataclass
class WorkloadSummary:
    """Aggregate latency statistics over a workload (Figure 6 / Figure 10 style)."""

    total: float
    median: float
    mean: float
    p90: float

    @classmethod
    def from_latencies(cls, latencies: list[float]) -> "WorkloadSummary":
        values = np.asarray(latencies, dtype=np.float64)
        if len(values) == 0:
            return cls(total=0.0, median=0.0, mean=0.0, p90=0.0)
        return cls(
            total=float(values.sum()),
            median=float(np.median(values)),
            mean=float(values.mean()),
            p90=float(np.percentile(values, 90)),
        )


def best_latency_curve(
    result: OptimizationResult, budgets: list[float]
) -> list[float]:
    """Best latency achievable at each budget (case-study and Figure 10 curves)."""
    return [result.best_latency_at_cost(budget) for budget in budgets]


def workload_curve(
    results: dict[str, OptimizationResult], budgets: list[float], fallback: dict[str, float] | None = None
) -> list[WorkloadSummary]:
    """Per-budget aggregate of the best latencies across a workload.

    Queries with no successful execution at a given budget fall back to the
    latency in ``fallback`` (e.g. the default plan) when provided.
    """
    summaries = []
    for budget in budgets:
        latencies = []
        for name, result in results.items():
            best = result.best_latency_at_cost(budget)
            if np.isinf(best) and fallback is not None:
                best = fallback.get(name, best)
            if np.isfinite(best):
                latencies.append(best)
        summaries.append(WorkloadSummary.from_latencies(latencies))
    return summaries


def percentage_difference(latency: float, baseline: float) -> float:
    """Signed percentage difference vs a baseline (Figure 8's per-query bars)."""
    if baseline <= 0:
        raise ValueError("baseline latency must be positive")
    return 100.0 * (latency - baseline) / baseline
