"""Metrics shared by the benchmark harness (improvement CDFs, percentiles, curves)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.result import OptimizationResult


def improvement_over_baseline(best_latency: float, baseline_latency: float) -> float:
    """Percentage reduction in runtime relative to a baseline latency.

    Matches the paper's "% improvement over Bao": 1s -> 200ms is an 80%
    improvement; negative values mean a regression.
    """
    if baseline_latency <= 0:
        raise ValueError("baseline latency must be positive")
    return 100.0 * (1.0 - best_latency / baseline_latency)


def improvement_distribution(
    results: dict[str, OptimizationResult], baselines: dict[str, float]
) -> dict[str, float]:
    """Per-query improvement over the baseline latency."""
    improvements = {}
    for name, result in results.items():
        best = result.best_latency_or(float("inf"))
        if not np.isfinite(best):
            # Nothing executed successfully within budget: a 0% improvement.
            improvements[name] = 0.0
            continue
        improvements[name] = improvement_over_baseline(best, baselines[name])
    return improvements


def improvement_cdf(
    improvements: dict[str, float], thresholds: list[float] | None = None
) -> list[tuple[float, float]]:
    """Fraction of queries achieving at least each improvement threshold (Figure 3's CDF)."""
    if thresholds is None:
        thresholds = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0]
    values = np.asarray(list(improvements.values()))
    points = []
    for threshold in thresholds:
        fraction = float(np.mean(values >= threshold)) if len(values) else 0.0
        points.append((threshold, fraction))
    return points


@dataclass
class WorkloadSummary:
    """Aggregate latency statistics over a workload (Figure 6 / Figure 10 style)."""

    total: float
    median: float
    mean: float
    p90: float

    @classmethod
    def from_latencies(cls, latencies: list[float]) -> "WorkloadSummary":
        values = np.asarray(latencies, dtype=np.float64)
        if len(values) == 0:
            return cls(total=0.0, median=0.0, mean=0.0, p90=0.0)
        return cls(
            total=float(values.sum()),
            median=float(np.median(values)),
            mean=float(values.mean()),
            p90=float(np.percentile(values, 90)),
        )


def best_latency_curve(
    result: OptimizationResult, budgets: list[float]
) -> list[float]:
    """Best latency achievable at each budget (case-study and Figure 10 curves)."""
    return [result.best_latency_at_cost(budget) for budget in budgets]


def workload_curve(
    results: dict[str, OptimizationResult], budgets: list[float], fallback: dict[str, float] | None = None
) -> list[WorkloadSummary]:
    """Per-budget aggregate of the best latencies across a workload.

    Queries with no successful execution at a given budget fall back to the
    latency in ``fallback`` (e.g. the default plan) when provided.
    """
    summaries = []
    for budget in budgets:
        latencies = []
        for name, result in results.items():
            best = result.best_latency_at_cost(budget)
            if np.isinf(best) and fallback is not None:
                best = fallback.get(name, best)
            if np.isfinite(best):
                latencies.append(best)
        summaries.append(WorkloadSummary.from_latencies(latencies))
    return summaries


def percentage_difference(latency: float, baseline: float) -> float:
    """Signed percentage difference vs a baseline (Figure 8's per-query bars)."""
    if baseline <= 0:
        raise ValueError("baseline latency must be positive")
    return 100.0 * (latency - baseline) / baseline


class StreamingPercentiles:
    """Percentiles over an unbounded stream from a bounded reservoir.

    A long-lived plan server observes millions of latencies; keeping them all
    to answer "what is the p99?" would grow without bound.  This tracker keeps
    a uniform sample of the stream (Vitter's Algorithm R: element ``n`` replaces
    a random reservoir slot with probability ``capacity / n``) and reads
    percentiles off the sample.  Up to ``capacity`` observations the sample
    *is* the stream, so small-stream percentiles are exact — the property the
    unit tests pin against numpy.

    The replacement draws come from a private seeded generator, so a stream
    replayed from the same seed reproduces the same reservoir — the tracker
    is picklable and deterministic, which is what lets a resumed plan server
    continue an SLO window bit-for-bit.
    """

    def __init__(self, capacity: int = 512, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be at least 1")
        self.capacity = capacity
        self.seed = seed
        self._values: list[float] = []
        self._count = 0
        self._rng = np.random.default_rng(seed)

    def add(self, value: float) -> None:
        self._count += 1
        if len(self._values) < self.capacity:
            self._values.append(float(value))
            return
        slot = int(self._rng.integers(0, self._count))
        if slot < self.capacity:
            self._values[slot] = float(value)

    def __len__(self) -> int:
        """Observations *seen* (not retained)."""
        return self._count

    def merge(self, other: "StreamingPercentiles") -> None:
        """Fold another reservoir into this one (per-worker metric merging).

        While the combined stream still fits the capacity the merge is exact:
        both reservoirs *are* their streams, so concatenating loses nothing
        and percentiles match numpy on the full data — the property the unit
        tests pin.  Beyond capacity, the retained values are a deterministic
        weighted subsample: each retained value stands for ``count / len``
        stream observations, and a seeded draw (derived from both seeds and
        both counts, so the same merge always yields the same reservoir)
        keeps ``capacity`` of them without replacement, weighted accordingly.
        """
        if other._count == 0:
            return
        combined = self._count + other._count
        if (
            combined <= self.capacity
            and len(self._values) == self._count
            and len(other._values) == other._count
        ):
            self._values.extend(other._values)
            self._count = combined
            return
        pooled = np.asarray(self._values + other._values, dtype=np.float64)
        weights = np.concatenate(
            [
                np.full(len(self._values), self._count / max(len(self._values), 1)),
                np.full(len(other._values), other._count / max(len(other._values), 1)),
            ]
        )
        keep = min(self.capacity, len(pooled))
        rng = np.random.default_rng(
            [self.seed & 0xFFFFFFFF, other.seed & 0xFFFFFFFF, self._count, other._count]
        )
        chosen = rng.choice(len(pooled), size=keep, replace=False, p=weights / weights.sum())
        self._values = [float(value) for value in pooled[chosen]]
        self._count = combined

    def percentile(self, q: float) -> float:
        """The q-th percentile of the (sampled) stream; 0.0 before any data."""
        if not self._values:
            return 0.0
        return float(np.percentile(np.asarray(self._values), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def snapshot(self) -> dict:
        return {"count": self._count, "p50": self.p50, "p95": self.p95, "p99": self.p99}
