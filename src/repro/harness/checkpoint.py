"""Durable session state: periodic checkpoints and bit-for-bit resume.

A paper-scale tuning run spends hours executing plans; a crash at hour three
must not discard them.  :class:`CheckpointManager` persists a
:class:`SessionCheckpoint` — the technique's optimizer (with all its mutable
model/RNG state), the in-progress query state, every completed per-query
result and the execution cache's replayable outcome logs — as **one** pickle
payload, so shared references between the optimizer and its states survive
the round trip intact.

Checkpoints are only taken at *quiescent* points (after an ``observe``, with
no proposal outstanding), which is what makes resumption exact: the restored
optimizer continues from precisely the suggest/observe boundary the
checkpoint captured, and because plan execution is deterministic in
``(query, plan, timeout)`` given the database seed, the resumed session's
traces are bit-for-bit identical to an uninterrupted run.

Writes are atomic (temp file + :func:`os.replace`): a crash *during* a
checkpoint leaves the previous checkpoint intact, never a torn file.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field

from repro.utils.logging import get_logger

#: Bumped when the checkpoint layout changes; mismatched files are ignored
#: (the session just starts over) instead of resuming garbage.
CHECKPOINT_VERSION = 1


def atomic_pickle_save(path: str, payload: object) -> None:
    """Pickle ``payload`` to ``path`` atomically (temp file + :func:`os.replace`).

    A crash mid-write leaves any previous file intact, never a torn one.
    Shared by :class:`CheckpointManager` and the plan store
    (:mod:`repro.serve.store`), so every durable artifact in the repository
    has the same crash-safety story.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def tolerant_pickle_load(path: str) -> object | None:
    """Unpickle ``path``, or ``None`` when the file is absent or unreadable.

    Corruption maps to "no artifact", never an error: callers that persist
    recoverable state (checkpoints, plan stores) treat a damaged file exactly
    like a missing one and rebuild from scratch.  But never *silently*: a
    discarded artifact means hours of paid executions get re-paid, so what
    was dropped and why is logged (absence — the normal cold start — only at
    debug level).
    """
    logger = get_logger("repro.harness.checkpoint")
    try:
        with open(path, "rb") as handle:
            payload = handle.read()
    except FileNotFoundError:
        logger.debug("no artifact at %s (cold start)", path)
        return None
    except OSError as exc:
        logger.warning("discarding unreadable artifact %s: %s: %s", path, type(exc).__name__, exc)
        return None
    try:
        return pickle.loads(payload)
    except (pickle.UnpicklingError, EOFError, AttributeError, ImportError) as exc:
        logger.warning(
            "discarding corrupt artifact %s (%d bytes): %s: %s",
            path,
            len(payload),
            type(exc).__name__,
            exc,
        )
        return None


@dataclass
class SessionCheckpoint:
    """Everything needed to resume one technique's run over one query list."""

    technique: str
    seed: int
    query_names: list[str]
    #: Per-query results of queries fully drained before the checkpoint.
    completed: dict = field(default_factory=dict)
    #: The technique instance mid-run (models, RNGs, shared caches) — pickled
    #: together with ``state`` so references between them stay shared.
    optimizer: object | None = None
    #: The in-progress state (per-query or workload-level), quiescent: no
    #: proposal outstanding.  ``None`` at query boundaries.
    state: object | None = None
    #: The execution cache's outcome-event logs
    #: (:meth:`~repro.db.plan_cache.ExecutionCache.export_outcomes`), so a
    #: resumed session replays already-executed plans instead of re-paying
    #: for them.
    cache_events: list = field(default_factory=list)
    version: int = CHECKPOINT_VERSION

    def matches(self, technique: str, seed: int, query_names: list[str]) -> bool:
        """Whether this checkpoint belongs to the run being (re)started."""
        return (
            self.version == CHECKPOINT_VERSION
            and self.technique == technique
            and self.seed == seed
            and self.query_names == list(query_names)
        )


class CheckpointManager:
    """Owns one checkpoint file: cadence, atomic writes, tolerant reads."""

    def __init__(self, path: str, every: int = 25) -> None:
        if every < 1:
            raise ValueError("checkpoint cadence must be at least 1")
        self.path = str(path)
        self.every = every
        self._since_save = 0

    def due(self) -> bool:
        """Count one observation; ``True`` every ``every`` observations."""
        self._since_save += 1
        if self._since_save >= self.every:
            self._since_save = 0
            return True
        return False

    def save(self, checkpoint: SessionCheckpoint) -> None:
        """Atomically persist ``checkpoint`` (temp file + rename)."""
        self._since_save = 0
        atomic_pickle_save(self.path, checkpoint)

    def load(self) -> SessionCheckpoint | None:
        """The stored checkpoint, or ``None`` when absent/unreadable.

        A corrupt or version-mismatched file means "no checkpoint", never an
        error: the worst outcome of a damaged checkpoint is a from-scratch
        run, which is exactly what checkpointing was protecting against
        anyway.
        """
        loaded = tolerant_pickle_load(self.path)
        if not isinstance(loaded, SessionCheckpoint) or loaded.version != CHECKPOINT_VERSION:
            return None
        return loaded

    def clear(self) -> None:
        """Delete the checkpoint (the run completed; nothing to resume)."""
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass
