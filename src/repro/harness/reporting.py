"""Plain-text rendering of the tables and figure series the paper reports."""

from __future__ import annotations

from repro.harness.metrics import WorkloadSummary


def format_table(headers: list[str], rows: list[list[object]], title: str | None = None) -> str:
    """Render a fixed-width text table (used by every benchmark's console output)."""
    columns = [headers] + [[_cell(value) for value in row] for row in rows]
    widths = [max(len(str(row[i])) for row in columns) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(" | ".join(_cell(value).ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_cdf(series: dict[str, list[tuple[float, float]]], title: str) -> str:
    """Render improvement-CDF series (Figure 3) as a text table."""
    thresholds = [point[0] for point in next(iter(series.values()))]
    headers = ["technique"] + [f">={threshold:.0f}%" for threshold in thresholds]
    rows = []
    for technique, points in series.items():
        rows.append([technique] + [f"{fraction * 100:.0f}%" for _, fraction in points])
    return format_table(headers, rows, title=title)


def format_summaries(
    labels: list[str], summaries: list[WorkloadSummary], title: str
) -> str:
    """Render workload aggregate summaries (Figure 6 / Figure 10 style)."""
    headers = ["series", "total (s)", "median (s)", "mean (s)", "p90 (s)"]
    rows = [
        [label, summary.total, summary.median, summary.mean, summary.p90]
        for label, summary in zip(labels, summaries)
    ]
    return format_table(headers, rows, title=title)
