"""Gradient-descent optimizers for the numpy neural-network substrate."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.01, momentum: float = 0.0) -> None:
        self.parameters = parameters
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in parameters]

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            velocity *= self.momentum
            velocity -= self.lr * parameter.grad
            parameter.value += velocity


class Adam:
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.parameters = parameters
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.value) for p in parameters]
        self._v = [np.zeros_like(p.value) for p in parameters]

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        self._step += 1
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / (1.0 - self.beta1**self._step)
            v_hat = v / (1.0 - self.beta2**self._step)
            parameter.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_gradients(parameters: list[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm; returns the pre-clip norm."""
    total = 0.0
    for parameter in parameters:
        total += float(np.sum(parameter.grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for parameter in parameters:
            parameter.grad *= scale
    return norm
