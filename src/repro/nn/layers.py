"""A minimal neural-network substrate on numpy.

The paper trains its plan VAE and fine-tunes a language model with PyTorch on
GPUs.  Neither PyTorch nor a GPU is available offline, so this package
implements the small amount of deep-learning machinery the reproduction
needs — dense layers, embeddings, a handful of activations, layer
normalization, softmax losses and the Adam optimizer — with explicit
forward/backward passes.  Models stay small (tens of thousands of
parameters), which is all the scaled-down plan corpora require.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    def __init__(self, value: np.ndarray) -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape


class Layer:
    """Base class: a layer owns parameters and caches forward activations."""

    def parameters(self) -> list[Parameter]:
        return []

    def forward(self, inputs: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)


class Linear(Layer):
    """Fully connected layer ``y = x W + b`` with Glorot initialization."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator | None = None) -> None:
        rng = rng or np.random.default_rng(0)
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(rng.uniform(-limit, limit, size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features))
        self._inputs: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._inputs = inputs
        return inputs @ self.weight.value + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise ModelError("backward called before forward")
        self.weight.grad += self._inputs.T @ grad_output
        self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T


class Embedding(Layer):
    """Token embedding table; forward takes an integer array of any shape."""

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator | None = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.table = Parameter(rng.normal(0.0, 0.1, size=(vocab_size, dim)))
        self._tokens: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.table]

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        tokens = np.asarray(tokens, dtype=np.int64)
        self._tokens = tokens
        return self.table.value[tokens]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._tokens is None:
            raise ModelError("backward called before forward")
        np.add.at(self.table.grad, self._tokens.reshape(-1), grad_output.reshape(-1, self.table.value.shape[1]))
        return np.zeros(self._tokens.shape)


class Tanh(Layer):
    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = np.tanh(inputs)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise ModelError("backward called before forward")
        return grad_output * (1.0 - self._output**2)


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._mask = inputs > 0
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ModelError("backward called before forward")
        return grad_output * self._mask


class LayerNorm(Layer):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        self.gain = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))
        self.eps = eps
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def parameters(self) -> list[Parameter]:
        return [self.gain, self.bias]

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        mean = inputs.mean(axis=-1, keepdims=True)
        var = inputs.var(axis=-1, keepdims=True)
        normalized = (inputs - mean) / np.sqrt(var + self.eps)
        self._cache = (normalized, var, inputs - mean)
        return normalized * self.gain.value + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ModelError("backward called before forward")
        normalized, var, centered = self._cache
        dim = grad_output.shape[-1]
        self.gain.grad += (grad_output * normalized).reshape(-1, dim).sum(axis=0)
        self.bias.grad += grad_output.reshape(-1, dim).sum(axis=0)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        grad_norm = grad_output * self.gain.value
        grad_input = (
            grad_norm
            - grad_norm.mean(axis=-1, keepdims=True)
            - normalized * (grad_norm * normalized).mean(axis=-1, keepdims=True)
        ) * inv_std
        return grad_input


class Sequential(Layer):
    """Chain of layers applied in order."""

    def __init__(self, *layers: Layer) -> None:
        self.layers = list(layers)

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            inputs = layer.forward(inputs)
        return inputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output


def mlp(
    in_features: int,
    hidden: list[int],
    out_features: int,
    rng: np.random.Generator | None = None,
    activation: type[Layer] = Tanh,
) -> Sequential:
    """Build a simple multi-layer perceptron."""
    rng = rng or np.random.default_rng(0)
    layers: list[Layer] = []
    previous = in_features
    for width in hidden:
        layers.append(Linear(previous, width, rng))
        layers.append(activation())
        previous = width
    layers.append(Linear(previous, out_features, rng))
    return Sequential(*layers)
