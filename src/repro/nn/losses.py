"""Loss functions with analytic gradients."""

from __future__ import annotations

import numpy as np


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    return np.exp(log_softmax(logits))


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean token-level cross entropy and its gradient w.r.t. the logits.

    ``logits`` has shape ``(..., vocab)``; ``targets`` is an integer array of
    shape ``(...)``.
    """
    flat_logits = logits.reshape(-1, logits.shape[-1])
    flat_targets = np.asarray(targets, dtype=np.int64).reshape(-1)
    log_probs = log_softmax(flat_logits)
    count = len(flat_targets)
    loss = -log_probs[np.arange(count), flat_targets].mean()
    grad = softmax(flat_logits)
    grad[np.arange(count), flat_targets] -= 1.0
    grad /= count
    return float(loss), grad.reshape(logits.shape)


def mse(predictions: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. the predictions."""
    diff = predictions - targets
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def gaussian_kl(mu: np.ndarray, logvar: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
    """KL(N(mu, exp(logvar)) || N(0, 1)) averaged over the batch.

    Returns the loss and its gradients w.r.t. ``mu`` and ``logvar``.
    """
    batch = mu.shape[0]
    kl = 0.5 * np.sum(np.exp(logvar) + mu**2 - 1.0 - logvar) / batch
    grad_mu = mu / batch
    grad_logvar = 0.5 * (np.exp(logvar) - 1.0) / batch
    return float(kl), grad_mu, grad_logvar
