"""Minimal numpy neural-network substrate (layers, losses, optimizers)."""

from repro.nn.layers import (
    Embedding,
    Layer,
    LayerNorm,
    Linear,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
    mlp,
)
from repro.nn.losses import cross_entropy, gaussian_kl, log_softmax, mse, softmax
from repro.nn.optim import Adam, SGD, clip_gradients

__all__ = [
    "Adam",
    "Embedding",
    "Layer",
    "LayerNorm",
    "Linear",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Tanh",
    "clip_gradients",
    "cross_entropy",
    "gaussian_kl",
    "log_softmax",
    "mlp",
    "mse",
    "softmax",
]
