"""Training loop and reconstruction metrics for the plan VAE."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.optim import Adam, clip_gradients
from repro.vae.dataset import PlanCorpus
from repro.vae.model import PlanVAE, VAEConfig


@dataclass
class TrainingReport:
    """Loss curve and held-out reconstruction accuracy of one training run."""

    steps: int
    losses: list[float] = field(default_factory=list)
    reconstruction_accuracy: float = 0.0
    token_accuracy: float = 0.0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def sequence_accuracy(model: PlanVAE, sequences: np.ndarray) -> float:
    """Fraction of held-out sequences reconstructed exactly (Table 2's metric)."""
    if len(sequences) == 0:
        return 0.0
    reconstructed = model.reconstruct(sequences)
    return float(np.mean(np.all(reconstructed == sequences, axis=1)))


def token_accuracy(model: PlanVAE, sequences: np.ndarray) -> float:
    """Fraction of individual tokens reconstructed correctly."""
    if len(sequences) == 0:
        return 0.0
    reconstructed = model.reconstruct(sequences)
    return float(np.mean(reconstructed == sequences))


def train_vae(
    corpus: PlanCorpus,
    latent_dim: int = 16,
    embed_dim: int = 16,
    hidden_dim: int = 128,
    beta: float = 0.05,
    steps: int = 1500,
    batch_size: int = 64,
    lr: float = 2e-3,
    seed: int = 0,
    train_fraction: float = 0.8,
) -> tuple[PlanVAE, TrainingReport]:
    """Train a :class:`PlanVAE` on ``corpus`` and report held-out reconstruction accuracy."""
    train_rows, test_rows = corpus.split(train_fraction=train_fraction, seed=seed)
    if len(train_rows) == 0:
        raise ValueError("the plan corpus is empty")
    config = VAEConfig(
        vocab_size=corpus.vocabulary.size,
        max_length=corpus.max_length,
        latent_dim=latent_dim,
        embed_dim=embed_dim,
        hidden_dim=hidden_dim,
        beta=beta,
    )
    model = PlanVAE(config, seed=seed)
    optimizer = Adam(model.parameters(), lr=lr)
    rng = np.random.default_rng(seed)
    report = TrainingReport(steps=steps)
    for _ in range(steps):
        batch_idx = rng.integers(0, len(train_rows), size=min(batch_size, len(train_rows)))
        batch = train_rows[batch_idx]
        optimizer.zero_grad()
        losses = model.train_step(batch, rng)
        clip_gradients(model.parameters(), max_norm=5.0)
        optimizer.step()
        report.losses.append(losses.total)
    holdout = test_rows if len(test_rows) else train_rows
    report.reconstruction_accuracy = sequence_accuracy(model, holdout)
    report.token_accuracy = token_accuracy(model, holdout)
    return model, report


def latent_dimension_sweep(
    corpus: PlanCorpus,
    latent_dims: list[int],
    steps: int = 1200,
    seed: int = 0,
) -> dict[int, float]:
    """Reconstruction accuracy per latent dimension (reproduces Table 2)."""
    results: dict[int, float] = {}
    for latent_dim in latent_dims:
        _, report = train_vae(corpus, latent_dim=latent_dim, steps=steps, seed=seed)
        results[latent_dim] = report.reconstruction_accuracy
    return results
