"""The latent space wrapper used by the Bayesian optimization loop.

A :class:`LatentSpace` bundles a trained VAE with the plan codec so the BO
loop can move between three representations: join trees, padded token
sequences and latent vectors.  It also exposes the box bounds of the latent
region covered by the training corpus, which TuRBO uses as its global search
domain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.query import Query
from repro.exceptions import ModelError
from repro.plans.encoding import PlanCodec
from repro.plans.jointree import JoinTree
from repro.vae.model import PlanVAE


@dataclass
class LatentSpace:
    """Encode/decode helpers plus the bounding box of the training embeddings."""

    model: PlanVAE
    codec: PlanCodec
    lower: np.ndarray
    upper: np.ndarray

    @classmethod
    def from_corpus(cls, model: PlanVAE, codec: PlanCodec, sequences: np.ndarray,
                    margin: float = 0.25) -> "LatentSpace":
        """Build the latent space, deriving bounds from the corpus embeddings."""
        if len(sequences) == 0:
            raise ModelError("cannot derive latent bounds from an empty corpus")
        mu, _ = model.encode(sequences)
        span = mu.max(axis=0) - mu.min(axis=0)
        pad = margin * np.where(span > 0, span, 1.0)
        return cls(model=model, codec=codec, lower=mu.min(axis=0) - pad, upper=mu.max(axis=0) + pad)

    # ------------------------------------------------------------------ dimensions
    @property
    def dim(self) -> int:
        return self.model.config.latent_dim

    @property
    def max_length(self) -> int:
        return self.model.config.max_length

    # ------------------------------------------------------------------ conversions
    def embed_tokens(self, sequences: np.ndarray) -> np.ndarray:
        """Mean latent vectors of padded token sequences."""
        mu, _ = self.model.encode(sequences)
        return mu

    def embed_plan(self, plan: JoinTree, query: Query) -> np.ndarray:
        """Latent vector of a single plan."""
        tokens = np.asarray(
            [self.codec.encode_padded(plan, query, self.max_length)], dtype=np.int64
        )
        return self.embed_tokens(tokens)[0]

    def embed_plans(self, plans: list[JoinTree], query: Query) -> np.ndarray:
        tokens = np.asarray(
            [self.codec.encode_padded(plan, query, self.max_length) for plan in plans],
            dtype=np.int64,
        )
        return self.embed_tokens(tokens)

    def decode_vector(self, vector: np.ndarray, query: Query) -> JoinTree:
        """Decode one latent vector to a valid join tree for ``query``."""
        tokens = self.model.decode_tokens(np.atleast_2d(vector))[0]
        return self.codec.decode([int(token) for token in tokens], query)

    def decode_vectors(self, vectors: np.ndarray, query: Query) -> list[JoinTree]:
        tokens = self.model.decode_tokens(np.atleast_2d(vectors))
        return [self.codec.decode([int(t) for t in row], query) for row in tokens]

    # ------------------------------------------------------------------ search domain
    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        return self.lower.copy(), self.upper.copy()

    def clip(self, vectors: np.ndarray) -> np.ndarray:
        """Clip candidate vectors into the search box."""
        return np.clip(vectors, self.lower, self.upper)

    def random_vectors(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random vectors inside the latent box."""
        return rng.uniform(self.lower, self.upper, size=(count, self.dim))
