"""Training-data generation for the plan VAE.

Following Section 4.2 of the paper, the corpus is built **without executing a
single query**: random PK-FK equijoin queries are sampled from the schema's
alias-k reference graph, each is planned by the default optimizer under the
default hint set plus a handful of feature-disabling hint sets (to diversify
the operators seen), and the resulting join trees are encoded into padded
plan strings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.engine import Database
from repro.db.query import Query
from repro.plans.encoding import PlanCodec, sequence_length
from repro.plans.hints import HintSet, bao_hint_sets
from repro.plans.jointree import JOIN_OPS, JoinOp
from repro.plans.vocabulary import PlanVocabulary
from repro.workloads.generator import FilterSpec, RandomQuerySampler


def diversification_hint_sets() -> list[HintSet]:
    """Hint sets used to diversify VAE training plans (default + single-op sets)."""
    hint_sets = [HintSet()]
    for op in JOIN_OPS:
        hint_sets.append(HintSet(join_ops=frozenset([op])))
    hint_sets.append(HintSet(join_ops=frozenset([JoinOp.HASH, JoinOp.MERGE])))
    return hint_sets


@dataclass
class PlanCorpus:
    """A padded token matrix of training plans plus the split used for evaluation."""

    sequences: np.ndarray
    max_length: int
    vocabulary: PlanVocabulary

    def split(self, train_fraction: float = 0.8, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic train/test split of the corpus rows."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.sequences))
        cut = int(len(order) * train_fraction)
        return self.sequences[order[:cut]], self.sequences[order[cut:]]

    @property
    def num_sequences(self) -> int:
        return len(self.sequences)


def build_plan_corpus(
    database: Database,
    vocabulary: PlanVocabulary,
    max_aliases: int = 1,
    num_queries: int = 300,
    max_tables: int = 10,
    filter_specs: dict[str, FilterSpec] | None = None,
    seed: int = 0,
) -> PlanCorpus:
    """Sample random queries, plan them under several hint sets and encode the plans.

    The corpus length is ``3 * (max_tables - 1)`` tokens; shorter plans are
    padded.  Duplicate encodings are removed.
    """
    sampler = RandomQuerySampler(
        database.schema,
        max_aliases=max_aliases,
        relations=database.relations,
        filter_specs=filter_specs,
        min_tables=3,
        max_tables=max_tables,
    )
    queries = sampler.sample(num_queries, seed=seed)
    codec = PlanCodec(vocabulary)
    max_length = sequence_length(max_tables)
    hint_sets = diversification_hint_sets()
    rows: list[list[int]] = []
    seen: set[tuple[int, ...]] = set()
    for query in queries:
        for hint_set in hint_sets:
            plan = database.plan(query, hint_set)
            encoded = tuple(codec.encode_padded(plan, query, max_length))
            if encoded in seen:
                continue
            seen.add(encoded)
            rows.append(list(encoded))
    sequences = np.asarray(rows, dtype=np.int64)
    return PlanCorpus(sequences=sequences, max_length=max_length, vocabulary=vocabulary)


def corpus_from_workload_plans(
    database: Database,
    vocabulary: PlanVocabulary,
    queries: list[Query],
    max_length: int,
    hint_sets: list[HintSet] | None = None,
) -> PlanCorpus:
    """Corpus built from the actual workload's hinted plans (used in drift retraining)."""
    codec = PlanCodec(vocabulary)
    hint_sets = hint_sets or bao_hint_sets()
    rows: list[list[int]] = []
    seen: set[tuple[int, ...]] = set()
    for query in queries:
        for hint_set in hint_sets:
            plan = database.plan(query, hint_set)
            encoded = tuple(codec.encode_padded(plan, query, max_length))
            if encoded not in seen:
                seen.add(encoded)
                rows.append(list(encoded))
    return PlanCorpus(
        sequences=np.asarray(rows, dtype=np.int64),
        max_length=max_length,
        vocabulary=vocabulary,
    )
