"""The plan variational autoencoder.

Architecture: token embeddings, a position-concatenating encoder MLP that
produces the mean and log-variance of the latent Gaussian, and a decoder MLP
that maps a latent vector to per-position token logits.  This is a compact
stand-in for the paper's transformer VAE; the property BO needs is only that
plans with similar strings land near each other in a continuous latent space
with good reconstruction accuracy, which this model provides at our corpus
sizes (see Table 2's reproduction in ``benchmarks/bench_table2``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.nn.layers import Embedding, Linear, Parameter, Tanh
from repro.nn.losses import cross_entropy, gaussian_kl, softmax


@dataclass
class VAEConfig:
    """Hyper-parameters of the plan VAE."""

    vocab_size: int
    max_length: int
    latent_dim: int = 16
    embed_dim: int = 16
    hidden_dim: int = 128
    beta: float = 0.05


@dataclass
class VAELosses:
    """Loss components of one training step."""

    total: float
    reconstruction: float
    kl: float


class PlanVAE:
    """Sequence VAE over padded plan strings."""

    def __init__(self, config: VAEConfig, seed: int = 0) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        flat = config.max_length * config.embed_dim
        self.embedding = Embedding(config.vocab_size, config.embed_dim, rng)
        self.enc_hidden = Linear(flat, config.hidden_dim, rng)
        self.enc_act = Tanh()
        self.enc_mu = Linear(config.hidden_dim, config.latent_dim, rng)
        self.enc_logvar = Linear(config.hidden_dim, config.latent_dim, rng)
        self.dec_hidden = Linear(config.latent_dim, config.hidden_dim, rng)
        self.dec_act = Tanh()
        self.dec_out = Linear(config.hidden_dim, config.max_length * config.vocab_size, rng)

    # ------------------------------------------------------------------ parameters
    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in (
            self.embedding,
            self.enc_hidden,
            self.enc_mu,
            self.enc_logvar,
            self.dec_hidden,
            self.dec_out,
        ):
            params.extend(layer.parameters())
        return params

    def num_parameters(self) -> int:
        return sum(int(np.prod(p.shape)) for p in self.parameters())

    # ------------------------------------------------------------------ forward passes
    def encode(self, tokens: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (mu, logvar) for a batch of token sequences."""
        tokens = self._check_tokens(tokens)
        embedded = self.embedding.forward(tokens)
        flat = embedded.reshape(len(tokens), -1)
        hidden = self.enc_act.forward(self.enc_hidden.forward(flat))
        return self.enc_mu.forward(hidden), self.enc_logvar.forward(hidden)

    def decode_logits(self, latent: np.ndarray) -> np.ndarray:
        """Per-position token logits, shape ``(batch, max_length, vocab)``."""
        latent = np.atleast_2d(np.asarray(latent, dtype=np.float64))
        hidden = self.dec_act.forward(self.dec_hidden.forward(latent))
        logits = self.dec_out.forward(hidden)
        return logits.reshape(len(latent), self.config.max_length, self.config.vocab_size)

    def decode_tokens(self, latent: np.ndarray, rng: np.random.Generator | None = None,
                      temperature: float = 0.0) -> np.ndarray:
        """Decode latent vectors to token sequences (argmax or sampled)."""
        logits = self.decode_logits(latent)
        if temperature <= 0.0:
            return logits.argmax(axis=-1)
        rng = rng or np.random.default_rng(0)
        probs = softmax(logits / temperature)
        batch, length, vocab = probs.shape
        flat = probs.reshape(-1, vocab)
        cumulative = np.cumsum(flat, axis=1)
        draws = rng.random((flat.shape[0], 1))
        samples = (cumulative < draws).sum(axis=1)
        return samples.reshape(batch, length)

    def reconstruct(self, tokens: np.ndarray) -> np.ndarray:
        """Deterministic round-trip: encode to the mean and decode with argmax."""
        mu, _ = self.encode(tokens)
        return self.decode_tokens(mu)

    # ------------------------------------------------------------------ training
    def train_step(self, tokens: np.ndarray, rng: np.random.Generator) -> VAELosses:
        """One forward/backward pass; gradients accumulate into the parameters."""
        tokens = self._check_tokens(tokens)
        batch = len(tokens)
        # Encoder forward.
        embedded = self.embedding.forward(tokens)
        flat = embedded.reshape(batch, -1)
        hidden = self.enc_act.forward(self.enc_hidden.forward(flat))
        mu = self.enc_mu.forward(hidden)
        logvar = np.clip(self.enc_logvar.forward(hidden), -8.0, 8.0)
        # Reparameterization.
        eps = rng.standard_normal(mu.shape)
        std = np.exp(0.5 * logvar)
        latent = mu + std * eps
        # Decoder forward.
        dec_hidden = self.dec_act.forward(self.dec_hidden.forward(latent))
        logits = self.dec_out.forward(dec_hidden).reshape(
            batch, self.config.max_length, self.config.vocab_size
        )
        # Losses.
        recon_loss, grad_logits = cross_entropy(logits, tokens)
        kl_loss, grad_mu_kl, grad_logvar_kl = gaussian_kl(mu, logvar)
        total = recon_loss + self.config.beta * kl_loss
        # Decoder backward.
        grad_dec_out = grad_logits.reshape(batch, -1)
        grad_dec_hidden = self.dec_out.backward(grad_dec_out)
        grad_latent = self.dec_hidden.backward(self.dec_act.backward(grad_dec_hidden))
        # Reparameterization backward.
        grad_mu = grad_latent + self.config.beta * grad_mu_kl
        grad_logvar = grad_latent * eps * 0.5 * std + self.config.beta * grad_logvar_kl
        # Encoder backward.
        grad_hidden = self.enc_mu.backward(grad_mu) + self.enc_logvar.backward(grad_logvar)
        grad_flat = self.enc_hidden.backward(self.enc_act.backward(grad_hidden))
        self.embedding.backward(grad_flat.reshape(batch, self.config.max_length, -1))
        return VAELosses(total=float(total), reconstruction=float(recon_loss), kl=float(kl_loss))

    # ------------------------------------------------------------------ weights I/O
    def get_weights(self) -> list[np.ndarray]:
        return [parameter.value.copy() for parameter in self.parameters()]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        parameters = self.parameters()
        if len(weights) != len(parameters):
            raise ModelError(
                f"expected {len(parameters)} weight arrays, got {len(weights)}"
            )
        for parameter, value in zip(parameters, weights):
            if parameter.value.shape != value.shape:
                raise ModelError("weight shape mismatch while loading VAE weights")
            parameter.value = value.copy()

    # ------------------------------------------------------------------ helpers
    def _check_tokens(self, tokens: np.ndarray) -> np.ndarray:
        tokens = np.atleast_2d(np.asarray(tokens, dtype=np.int64))
        if tokens.shape[1] != self.config.max_length:
            raise ModelError(
                f"token sequences must have length {self.config.max_length}, got {tokens.shape[1]}"
            )
        if tokens.min() < 0 or tokens.max() >= self.config.vocab_size:
            raise ModelError("token id out of vocabulary range")
        return tokens
