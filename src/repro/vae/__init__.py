"""The plan VAE: training corpus, model, training loop and latent-space wrapper."""

from repro.vae.dataset import PlanCorpus, build_plan_corpus, corpus_from_workload_plans
from repro.vae.latent import LatentSpace
from repro.vae.model import PlanVAE, VAEConfig, VAELosses
from repro.vae.training import (
    TrainingReport,
    latent_dimension_sweep,
    sequence_accuracy,
    token_accuracy,
    train_vae,
)

__all__ = [
    "LatentSpace",
    "PlanCorpus",
    "PlanVAE",
    "TrainingReport",
    "VAEConfig",
    "VAELosses",
    "build_plan_corpus",
    "corpus_from_workload_plans",
    "latent_dimension_sweep",
    "sequence_accuracy",
    "token_accuracy",
    "train_vae",
]
