"""Synthetic data generation for the database substrate.

The experiments in the paper rely on real datasets (IMDB, StackOverflow,
DSB) whose skew and cross-column correlation make the default optimizer's
independence-assumption estimates wrong, which is exactly what leaves room
for offline optimization to find much faster plans.  This module generates
scaled-down synthetic relations with the same two properties:

* **Skewed foreign keys** — FK columns follow a (truncated) Zipf
  distribution over the referenced primary keys, so some join partners fan
  out enormously while most barely join at all.
* **Correlated attribute columns** — categorical attributes are generated
  as noisy functions of the row's foreign keys, so multi-predicate
  selectivities deviate strongly from the product of single-column
  selectivities.

Foreign-key skew is *fanout-capped*: the hottest key's probability mass is
clamped to ``fk_fanout_cap`` times the uniform share (water-filling the
excess over the remaining keys).  Uncapped Zipf mass is scale-invariant — the
top key always absorbs ~1/H(P, s) of all references — so at small scales a
handful of keys fan out into intermediates that exceed the executor's
simulated timeout for *every* plan, leaving offline optimization nothing to
improve (the "JOB_1a at scale 0.15" pathology).  The cap bounds worst-case
join fanout at C× the average while keeping an order of magnitude of skew,
so default plans stay executable at small scales and bad join orders still
blow past timeouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db.catalog import Schema, Table
from repro.db.relation import Relation
from repro.exceptions import CatalogError
from repro.utils.seeding import stable_digest


@dataclass
class ColumnSpec:
    """How to populate one non-key column.

    Parameters
    ----------
    kind:
        ``"categorical"`` (zipf-skewed categorical ids), ``"uniform"``
        (uniform ints in ``[0, cardinality)``), ``"date"`` (ordinal days in
        ``[date_min, date_max]``), or ``"derived"`` (a noisy function of a
        foreign-key column, producing cross-column correlation).
    cardinality:
        Number of distinct values for categorical/uniform columns.
    skew:
        Zipf exponent for categorical columns (0 disables skew).
    source_column:
        For ``"derived"`` columns: the column in the same table whose value
        seeds this one.
    noise:
        For ``"derived"`` columns: probability of replacing the derived value
        with a uniformly random one.
    """

    kind: str = "categorical"
    cardinality: int = 100
    skew: float = 1.1
    date_min: int = 0
    date_max: int = 3650
    source_column: str | None = None
    noise: float = 0.1


@dataclass
class TableSpec:
    """How to populate one table: row count plus per-column specs."""

    num_rows: int
    column_specs: dict[str, ColumnSpec] = field(default_factory=dict)
    #: Zipf exponent used for every FK column of this table.
    fk_skew: float = 1.2
    #: Per-table override of the generator-wide FK fanout cap (multiples of
    #: the uniform share).  ``None`` uses the generator default.
    fk_fanout_cap: float | None = None


#: Default cap on any single key's share of a table's FK references, as a
#: multiple of the uniform share ``1 / population``.  16x keeps strong skew
#: (the default optimizer still misestimates) while bounding worst-case join
#: fanout so scaled-down workloads stay executable.
DEFAULT_FK_FANOUT_CAP = 16.0


def capped_zipf_weights(population: int, skew: float, fanout_cap: float) -> np.ndarray:
    """Zipf weights with the top shares clamped to ``fanout_cap / population``.

    The clamped excess is redistributed proportionally over the uncapped keys
    (water-filling), iterating until no key exceeds the cap; the result is a
    valid distribution whose hottest key receives at most ``fanout_cap`` times
    the uniform share.
    """
    if population <= 0:
        raise CatalogError("population must be positive")
    ranks = np.arange(1, population + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    cap = fanout_cap / population
    if cap >= 1.0:
        return weights
    for _ in range(32):
        over = weights > cap
        if not over.any():
            break
        excess = float((weights[over] - cap).sum())
        weights[over] = cap
        under = ~over
        under_total = float(weights[under].sum())
        if under_total <= 0.0:
            # Everything is at the cap: the capped distribution is uniform.
            weights[:] = 1.0 / population
            break
        weights[under] += excess * weights[under] / under_total
    return weights / weights.sum()


def zipf_choices(
    rng: np.random.Generator,
    population: int,
    size: int,
    skew: float,
    fanout_cap: float | None = None,
) -> np.ndarray:
    """Sample ``size`` integers from ``[0, population)`` with Zipf-like skew.

    A ``skew`` of 0 gives the uniform distribution; larger values concentrate
    probability mass on small indices.  The indices are then shuffled through a
    fixed permutation so that "popular" ids are spread across the key space,
    matching real data where popularity is not correlated with key order.
    ``fanout_cap`` clamps the hottest key's share to that multiple of the
    uniform share (see :func:`capped_zipf_weights`); ``None`` leaves the raw
    Zipf distribution untouched.
    """
    if population <= 0:
        raise CatalogError("population must be positive")
    if skew <= 0:
        return rng.integers(0, population, size=size)
    if fanout_cap is not None:
        weights = capped_zipf_weights(population, skew, fanout_cap)
    else:
        ranks = np.arange(1, population + 1, dtype=np.float64)
        weights = ranks ** (-skew)
        weights /= weights.sum()
    draws = rng.choice(population, size=size, p=weights)
    permutation = np.random.default_rng(population).permutation(population)
    return permutation[draws]


class DataGenerator:
    """Populate a :class:`~repro.db.catalog.Schema` with synthetic rows."""

    def __init__(
        self,
        schema: Schema,
        specs: dict[str, TableSpec],
        seed: int = 0,
        fk_fanout_cap: float | None = DEFAULT_FK_FANOUT_CAP,
    ) -> None:
        self.schema = schema
        self.specs = specs
        self.seed = seed
        self.fk_fanout_cap = fk_fanout_cap
        missing = [name for name in schema.table_names if name not in specs]
        if missing:
            raise CatalogError(f"missing TableSpec for tables: {missing}")

    def generate(self) -> dict[str, Relation]:
        """Generate every relation, respecting FK references between tables.

        Tables are generated in an order where referenced tables come first so
        that FK columns can be drawn from already-known primary keys.
        """
        order = self._generation_order()
        relations: dict[str, Relation] = {}
        for table_name in order:
            relations[table_name] = self._generate_table(self.schema.table(table_name), relations)
        return relations

    # ------------------------------------------------------------------ internals
    def _generation_order(self) -> list[str]:
        """Topological-ish order: referenced tables before referencing tables."""
        remaining = set(self.schema.table_names)
        deps: dict[str, set[str]] = {name: set() for name in remaining}
        for fk in self.schema.foreign_keys:
            if fk.ref_table != fk.table:
                deps[fk.table].add(fk.ref_table)
        order: list[str] = []
        while remaining:
            ready = sorted(name for name in remaining if not (deps[name] & remaining))
            if not ready:
                # Cycle in the FK graph: break it deterministically.
                ready = [sorted(remaining)[0]]
            for name in ready:
                order.append(name)
                remaining.remove(name)
        return order

    def _generate_table(self, table: Table, relations: dict[str, Relation]) -> Relation:
        spec = self.specs[table.name]
        rng = np.random.default_rng((self.seed, stable_digest(table.name, bits=16)))
        num_rows = spec.num_rows
        columns: dict[str, np.ndarray] = {}
        # Primary key: dense 0..n-1.
        columns[table.primary_key] = np.arange(num_rows, dtype=np.int64)
        # Foreign keys: zipf over referenced primary keys.
        fk_columns = {
            fk.column: fk
            for fk in self.schema.foreign_keys
            if fk.table == table.name and fk.column != table.primary_key
        }
        fanout_cap = spec.fk_fanout_cap if spec.fk_fanout_cap is not None else self.fk_fanout_cap
        for column_name, fk in fk_columns.items():
            ref_relation = relations.get(fk.ref_table)
            if ref_relation is None:
                population = self.specs[fk.ref_table].num_rows
            else:
                population = max(ref_relation.num_rows, 1)
            columns[column_name] = zipf_choices(
                rng, population, num_rows, spec.fk_skew, fanout_cap=fanout_cap
            ).astype(np.int64)
        # Remaining attribute columns.
        for column in table.columns:
            if column.name in columns:
                continue
            columns[column.name] = self._generate_attribute(
                rng, column.name, spec, columns, num_rows
            )
        return Relation(table, columns)

    def _generate_attribute(
        self,
        rng: np.random.Generator,
        name: str,
        spec: TableSpec,
        existing: dict[str, np.ndarray],
        num_rows: int,
    ) -> np.ndarray:
        column_spec = spec.column_specs.get(name, ColumnSpec())
        if column_spec.kind == "uniform":
            return rng.integers(0, column_spec.cardinality, size=num_rows).astype(np.int64)
        if column_spec.kind == "date":
            low, high = column_spec.date_min, column_spec.date_max
            return rng.integers(low, high + 1, size=num_rows).astype(np.int64)
        if column_spec.kind == "derived":
            source = column_spec.source_column
            if source is None or source not in existing:
                raise CatalogError(
                    f"derived column {name!r} needs an existing source_column, got {source!r}"
                )
            base = (existing[source] * 2654435761) % column_spec.cardinality
            noise_mask = rng.random(num_rows) < column_spec.noise
            noise = rng.integers(0, column_spec.cardinality, size=num_rows)
            return np.where(noise_mask, noise, base).astype(np.int64)
        if column_spec.kind == "categorical":
            return zipf_choices(
                rng, column_spec.cardinality, num_rows, column_spec.skew
            ).astype(np.int64)
        raise CatalogError(f"unknown column kind {column_spec.kind!r} for column {name!r}")
