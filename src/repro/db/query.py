"""Query objects: table references, join predicates and filters.

BayesQO only needs to know which table aliases a query joins, which join
predicates connect them, and which filters restrict the base tables — the
plan string language deliberately does not encode predicates (paper
Section 4.1).  A :class:`Query` captures exactly that, plus a SQL-like
rendering used for display, examples and the PlanLM conditioning text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from repro.db.catalog import Schema, alias_table
from repro.exceptions import QueryError


@dataclass(frozen=True)
class TableRef:
    """One aliased occurrence of a base table in a query."""

    alias: str
    table: str

    def __post_init__(self) -> None:
        if not self.alias or not self.table:
            raise QueryError("table reference needs both an alias and a table name")


@dataclass(frozen=True)
class JoinPredicate:
    """An equijoin predicate ``left_alias.left_column = right_alias.right_column``."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def aliases(self) -> tuple[str, str]:
        return (self.left_alias, self.right_alias)

    def reversed(self) -> "JoinPredicate":
        return JoinPredicate(self.right_alias, self.right_column, self.left_alias, self.left_column)

    def connects(self, left_side: set[str], right_side: set[str]) -> bool:
        """True if this predicate joins one alias from each of the two sets."""
        return (self.left_alias in left_side and self.right_alias in right_side) or (
            self.left_alias in right_side and self.right_alias in left_side
        )


@dataclass(frozen=True)
class FilterPredicate:
    """A single-table filter ``alias.column op value``."""

    alias: str
    column: str
    op: str
    value: object

    def render(self) -> str:
        if self.op == "in":
            values = ", ".join(str(v) for v in self.value)  # type: ignore[union-attr]
            return f"{self.alias}.{self.column} IN ({values})"
        return f"{self.alias}.{self.column} {self.op} {self.value}"


@dataclass
class Query:
    """A select-project-join query over aliased tables.

    Parameters
    ----------
    name:
        Workload-unique identifier, e.g. ``"JOB_17a"``.
    table_refs:
        The aliased tables joined by the query.
    join_predicates:
        Equijoin predicates between aliases.
    filters:
        Base-table filter predicates.
    template:
        Optional template identifier (used by CEB/Stack-style workloads and
        by the LLM template-generalization experiment).
    """

    name: str
    table_refs: list[TableRef]
    join_predicates: list[JoinPredicate]
    filters: list[FilterPredicate] = field(default_factory=list)
    template: str | None = None

    def __post_init__(self) -> None:
        aliases = [ref.alias for ref in self.table_refs]
        if len(aliases) != len(set(aliases)):
            raise QueryError(f"query {self.name!r} has duplicate aliases")
        alias_set = set(aliases)
        for predicate in self.join_predicates:
            for alias in predicate.aliases():
                if alias not in alias_set:
                    raise QueryError(
                        f"query {self.name!r}: join predicate references unknown alias {alias!r}"
                    )
        for flt in self.filters:
            if flt.alias not in alias_set:
                raise QueryError(
                    f"query {self.name!r}: filter references unknown alias {flt.alias!r}"
                )

    # ------------------------------------------------------------------ accessors
    @property
    def aliases(self) -> list[str]:
        return [ref.alias for ref in self.table_refs]

    @property
    def num_tables(self) -> int:
        return len(self.table_refs)

    @property
    def num_joins(self) -> int:
        return len(self.join_predicates)

    def table_of(self, alias: str) -> str:
        for ref in self.table_refs:
            if ref.alias == alias:
                return ref.table
        raise QueryError(f"query {self.name!r} has no alias {alias!r}")

    def filters_for(self, alias: str) -> list[FilterPredicate]:
        return [flt for flt in self.filters if flt.alias == alias]

    def predicates_between(self, left_side: set[str], right_side: set[str]) -> list[JoinPredicate]:
        """Join predicates connecting the two alias sets (used by the executor)."""
        return [p for p in self.join_predicates if p.connects(left_side, right_side)]

    # ------------------------------------------------------------------ graph views
    def join_graph(self) -> nx.Graph:
        """Undirected graph over aliases with one edge per join predicate."""
        graph = nx.Graph()
        graph.add_nodes_from(self.aliases)
        for predicate in self.join_predicates:
            graph.add_edge(predicate.left_alias, predicate.right_alias, predicate=predicate)
        return graph

    def is_connected(self) -> bool:
        """True if the join graph is connected (no mandatory cross join)."""
        graph = self.join_graph()
        if graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(graph)

    def validate_against(self, schema: Schema) -> None:
        """Check that every referenced table/column exists in ``schema``."""
        for ref in self.table_refs:
            schema.table(ref.table)
        for predicate in self.join_predicates:
            schema.table(self.table_of(predicate.left_alias)).column(predicate.left_column)
            schema.table(self.table_of(predicate.right_alias)).column(predicate.right_column)
        for flt in self.filters:
            schema.table(self.table_of(flt.alias)).column(flt.column)

    # ------------------------------------------------------------------ rendering
    def sql(self) -> str:
        """A SQL-like textual rendering of the query (display / LLM prompt only)."""
        from_clause = ", ".join(f"{ref.table} AS {sql_alias(ref.alias)}" for ref in self.table_refs)
        conditions = [
            f"{sql_alias(p.left_alias)}.{p.left_column} = {sql_alias(p.right_alias)}.{p.right_column}"
            for p in self.join_predicates
        ]
        conditions.extend(
            flt.render().replace(flt.alias, sql_alias(flt.alias), 1) for flt in self.filters
        )
        where_clause = " AND ".join(conditions) if conditions else "TRUE"
        return f"SELECT COUNT(*) FROM {from_clause} WHERE {where_clause}"

    def signature(self) -> tuple[str, ...]:
        """Canonical, order-independent signature of the joined tables (for the plan cache)."""
        return tuple(sorted(f"{ref.alias}:{ref.table}" for ref in self.table_refs))


def sql_alias(alias: str) -> str:
    """Render an internal ``table#n`` alias as a SQL-friendly identifier."""
    return alias.replace("#", "_")


def queries_by_template(queries: Iterable[Query]) -> dict[str, list[Query]]:
    """Group queries by their template id (queries without a template get their own group)."""
    grouped: dict[str, list[Query]] = {}
    for query in queries:
        key = query.template or query.name
        grouped.setdefault(key, []).append(query)
    return grouped


def alias_base_tables(query: Query) -> dict[str, str]:
    """Map each alias of ``query`` to its base table (consistency helper)."""
    mapping = {ref.alias: ref.table for ref in query.table_refs}
    for alias, table in mapping.items():
        derived = alias_table(alias)
        if "#" in alias and derived != table:
            raise QueryError(
                f"alias {alias!r} encodes table {derived!r} but is declared for {table!r}"
            )
    return mapping
