"""Schema catalog: tables, columns, foreign keys and indexes.

The catalog is the metadata layer of the database substrate.  It knows nothing
about the stored rows; it only describes the relational structure that the
query generator, the cardinality estimator and the plan-string vocabulary all
consume.  The most important derived structure is the *reference graph*
(tables as nodes, PK-FK references as edges) and its *alias-k* expansion used
to sample random queries (paper Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import networkx as nx

from repro.exceptions import CatalogError

#: Column data types supported by the substrate.  Values are stored as numpy
#: int64 (categorical / id / date ordinal) or float64 arrays.
COLUMN_TYPES = ("int", "float", "date")


@dataclass(frozen=True)
class Column:
    """A single column of a table.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    dtype:
        One of :data:`COLUMN_TYPES`.
    """

    name: str
    dtype: str = "int"

    def __post_init__(self) -> None:
        if self.dtype not in COLUMN_TYPES:
            raise CatalogError(f"unknown column dtype {self.dtype!r} for column {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A PK-FK reference ``table.column -> ref_table.ref_column``."""

    table: str
    column: str
    ref_table: str
    ref_column: str

    def as_edge(self) -> tuple[str, str]:
        """Return the (referencing, referenced) table pair."""
        return (self.table, self.ref_table)


@dataclass(frozen=True)
class Index:
    """A secondary index over one column of a table."""

    table: str
    column: str

    @property
    def name(self) -> str:
        return f"idx_{self.table}_{self.column}"


@dataclass
class Table:
    """A table definition: name, columns and primary key."""

    name: str
    columns: list[Column]
    primary_key: str = "id"

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise CatalogError(f"duplicate column names in table {self.name!r}")
        if self.primary_key not in names:
            raise CatalogError(
                f"primary key {self.primary_key!r} is not a column of table {self.name!r}"
            )

    def column(self, name: str) -> Column:
        """Return the column named ``name`` or raise :class:`CatalogError`."""
        for column in self.columns:
            if column.name == name:
                return column
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]


class Schema:
    """A database schema: a set of tables plus PK-FK references and indexes."""

    def __init__(
        self,
        name: str,
        tables: Iterable[Table],
        foreign_keys: Iterable[ForeignKey] = (),
        indexes: Iterable[Index] = (),
    ) -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        for table in tables:
            if table.name in self._tables:
                raise CatalogError(f"duplicate table {table.name!r} in schema {name!r}")
            self._tables[table.name] = table
        self.foreign_keys: list[ForeignKey] = list(foreign_keys)
        for fk in self.foreign_keys:
            self._validate_foreign_key(fk)
        self.indexes: list[Index] = list(indexes)
        for index in self.indexes:
            self.table(index.table).column(index.column)

    # ------------------------------------------------------------------ basic accessors
    def _validate_foreign_key(self, fk: ForeignKey) -> None:
        self.table(fk.table).column(fk.column)
        self.table(fk.ref_table).column(fk.ref_column)

    def table(self, name: str) -> Table:
        """Return the table named ``name`` or raise :class:`CatalogError`."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise CatalogError(f"schema {self.name!r} has no table {name!r}") from exc

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def tables(self) -> list[Table]:
        return list(self._tables.values())

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    # ------------------------------------------------------------------ indexes
    def add_index(self, table: str, column: str) -> Index:
        """Register (idempotently) an index on ``table.column`` and return it."""
        self.table(table).column(column)
        for index in self.indexes:
            if index.table == table and index.column == column:
                return index
        index = Index(table, column)
        self.indexes.append(index)
        return index

    def has_index(self, table: str, column: str) -> bool:
        return any(index.table == table and index.column == column for index in self.indexes)

    def index_all_join_keys(self) -> None:
        """Create an index on every column participating in a PK-FK reference.

        This mirrors the experimental setup of the paper ("we create indexes on
        all join keys").
        """
        for fk in self.foreign_keys:
            self.add_index(fk.table, fk.column)
            self.add_index(fk.ref_table, fk.ref_column)

    # ------------------------------------------------------------------ join metadata
    def join_columns(self, table_a: str, table_b: str) -> list[tuple[str, str]]:
        """Return ``(column_in_a, column_in_b)`` pairs for every FK joining the two tables."""
        pairs: list[tuple[str, str]] = []
        for fk in self.foreign_keys:
            if fk.table == table_a and fk.ref_table == table_b:
                pairs.append((fk.column, fk.ref_column))
            elif fk.table == table_b and fk.ref_table == table_a:
                pairs.append((fk.ref_column, fk.column))
        return pairs

    def reference_graph(self) -> nx.Graph:
        """Undirected graph with one node per table and one edge per PK-FK reference."""
        graph = nx.Graph()
        graph.add_nodes_from(self.table_names)
        for fk in self.foreign_keys:
            graph.add_edge(fk.table, fk.ref_table)
        return graph

    def alias_k_graph(self, k: int) -> nx.Graph:
        """The alias-``k`` reference graph used to sample random queries.

        Each table contributes ``k`` alias nodes (``table#1`` ... ``table#k``)
        and every PK-FK reference contributes edges between all alias pairs of
        the two tables (paper Section 4.2).
        """
        if k < 1:
            raise CatalogError(f"alias multiplicity must be >= 1, got {k}")
        graph = nx.Graph()
        for table in self.table_names:
            for i in range(1, k + 1):
                graph.add_node(alias_name(table, i), table=table, ordinal=i)
        for fk in self.foreign_keys:
            for i in range(1, k + 1):
                for j in range(1, k + 1):
                    left = alias_name(fk.table, i)
                    right = alias_name(fk.ref_table, j)
                    if left != right:
                        graph.add_edge(left, right, fk=fk)
        return graph


def alias_name(table: str, ordinal: int) -> str:
    """Canonical alias for the ``ordinal``-th occurrence of ``table`` in a query."""
    return f"{table}#{ordinal}"


def alias_table(alias: str) -> str:
    """Return the base table of an alias produced by :func:`alias_name`."""
    return alias.split("#", 1)[0]


def alias_ordinal(alias: str) -> int:
    """Return the occurrence number of an alias produced by :func:`alias_name`."""
    if "#" not in alias:
        return 1
    return int(alias.split("#", 1)[1])
