"""The default query optimizer: System R dynamic programming plus hint support.

This plays the role PostgreSQL's planner plays in the paper: it produces a
"reasonable but not globally optimal" plan for any query, quickly, from
statistics alone.  It supports Bao-style hint sets (restricting which join
operators and scan methods may be used), which is how both the Bao baseline
and BayesQO's initializer obtain their 49 candidate plans per query.

For queries joining at most :attr:`PlanOptimizer.dp_table_limit` tables the
optimizer runs exact dynamic programming over connected sub-plans; beyond
that it falls back to a greedy constructive search (the analogue of
PostgreSQL's GEQO threshold).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.cardinality import CardinalityEstimator
from repro.db.catalog import Schema
from repro.db.cost import CostParams, DEFAULT_COST_PARAMS, index_scan_cost, join_cost, seq_scan_cost
from repro.db.query import Query
from repro.db.statistics import TableStats
from repro.exceptions import PlanError, QueryError
from repro.plans.hints import DEFAULT_HINT_SET, HintSet
from repro.plans.jointree import JOIN_OPS, JoinOp, JoinTree


@dataclass
class _PartialPlan:
    """Best plan found so far for one subset of aliases."""

    tree: JoinTree
    cost: float
    rows: float


class PlanOptimizer:
    """Cost-based plan search over join orders and physical operators."""

    def __init__(
        self,
        schema: Schema,
        stats: dict[str, TableStats],
        cost_params: CostParams = DEFAULT_COST_PARAMS,
        dp_table_limit: int = 10,
    ) -> None:
        self.schema = schema
        self.stats = stats
        self.estimator = CardinalityEstimator(stats)
        self.cost_params = cost_params
        self.dp_table_limit = dp_table_limit

    # ------------------------------------------------------------------ public API
    def plan(self, query: Query, hint_set: HintSet = DEFAULT_HINT_SET) -> JoinTree:
        """Return the optimizer's chosen join tree for ``query`` under ``hint_set``."""
        if query.num_tables == 0:
            raise QueryError(f"query {query.name!r} joins no tables")
        if query.num_tables == 1:
            return JoinTree.leaf(query.aliases[0])
        if query.num_tables <= self.dp_table_limit:
            return self._dynamic_programming(query, hint_set)
        return self._greedy(query, hint_set)

    def estimated_cost(self, query: Query, tree: JoinTree, hint_set: HintSet = DEFAULT_HINT_SET) -> float:
        """Estimated total cost of executing ``tree`` (scan costs included)."""
        tree.validate_for_query(query)
        total = 0.0
        for alias in tree.leaf_aliases():
            total += self._scan_cost(query, alias, hint_set)
        for node in tree.join_nodes():
            left = frozenset(node.left.leaf_aliases())  # type: ignore[union-attr]
            right = frozenset(node.right.leaf_aliases())  # type: ignore[union-attr]
            left_rows, right_rows, output_rows = self.estimator.estimate_join(query, left, right)
            total += self._join_cost(query, node.op, left, right, left_rows, right_rows, output_rows)
        return total

    # ------------------------------------------------------------------ cost helpers
    def _allowed_ops(self, hint_set: HintSet) -> list[JoinOp]:
        return [op for op in JOIN_OPS if hint_set.allows_join(op)]

    def _scan_cost(self, query: Query, alias: str, hint_set: HintSet) -> float:
        table = query.table_of(alias)
        table_rows = float(self.stats[table].num_rows)
        estimate = self.estimator.base_estimate(query, alias)
        indexed_filter = any(
            self.schema.has_index(table, flt.column) for flt in query.filters_for(alias)
        )
        index_cost = (
            index_scan_cost(table_rows, estimate.rows, self.cost_params)
            if indexed_filter and hint_set.allows_index_scan()
            else float("inf")
        )
        seq_cost = (
            seq_scan_cost(table_rows, self.cost_params)
            if hint_set.allows_seq_scan()
            else float("inf")
        )
        best = min(index_cost, seq_cost)
        if best == float("inf"):
            # The hint set disabled every applicable scan; fall back to a seq scan,
            # mirroring PostgreSQL's behaviour of treating enable_* as a soft penalty.
            best = seq_scan_cost(table_rows, self.cost_params) * 100.0
        return best

    def _inner_index_info(self, query: Query, right: frozenset[str]) -> tuple[bool, float]:
        """Whether the inner side is a single base table with an index on a join column."""
        if len(right) != 1:
            return False, 0.0
        alias = next(iter(right))
        table = query.table_of(alias)
        table_rows = float(self.stats[table].num_rows)
        for predicate in query.join_predicates:
            if predicate.left_alias == alias:
                column = predicate.left_column
            elif predicate.right_alias == alias:
                column = predicate.right_column
            else:
                continue
            if self.schema.has_index(table, column):
                return True, table_rows
        return False, table_rows

    def _join_cost(
        self,
        query: Query,
        op: JoinOp,
        left: frozenset[str],
        right: frozenset[str],
        left_rows: float,
        right_rows: float,
        output_rows: float,
    ) -> float:
        inner_indexed, inner_table_rows = self._inner_index_info(query, right)
        return join_cost(
            op,
            left_rows,
            right_rows,
            output_rows,
            inner_indexed=inner_indexed,
            inner_table_rows=inner_table_rows,
            params=self.cost_params,
        )

    # ------------------------------------------------------------------ DP search
    def _dynamic_programming(self, query: Query, hint_set: HintSet) -> JoinTree:
        aliases = query.aliases
        allowed_ops = self._allowed_ops(hint_set)
        best: dict[frozenset[str], _PartialPlan] = {}
        for alias in aliases:
            subset = frozenset([alias])
            best[subset] = _PartialPlan(
                tree=JoinTree.leaf(alias),
                cost=self._scan_cost(query, alias, hint_set),
                rows=self.estimator.base_estimate(query, alias).rows,
            )
        connected = query.is_connected()
        for size in range(2, len(aliases) + 1):
            for subset in _subsets_of_size(aliases, size):
                candidate = self._best_split(query, subset, best, allowed_ops, require_predicate=True)
                if candidate is None and (not connected or size == len(aliases)):
                    # Allow cross joins only when the join graph forces them.
                    candidate = self._best_split(
                        query, subset, best, allowed_ops, require_predicate=False
                    )
                if candidate is not None:
                    best[subset] = candidate
        full = frozenset(aliases)
        if full not in best:
            # Disconnected intermediate subsets can make the strict-predicate DP
            # miss the full set; retry allowing cross joins everywhere.
            return self._greedy(query, hint_set)
        return best[full].tree

    def _best_split(
        self,
        query: Query,
        subset: frozenset[str],
        best: dict[frozenset[str], _PartialPlan],
        allowed_ops: list[JoinOp],
        require_predicate: bool,
    ) -> _PartialPlan | None:
        winner: _PartialPlan | None = None
        rows = self.estimator.estimate_subset(query, subset)
        for left in _proper_subsets(subset):
            right = subset - left
            left_plan = best.get(left)
            right_plan = best.get(right)
            if left_plan is None or right_plan is None:
                continue
            if require_predicate and not query.predicates_between(set(left), set(right)):
                continue
            for op in allowed_ops:
                cost = (
                    left_plan.cost
                    + right_plan.cost
                    + self._join_cost(query, op, left, right, left_plan.rows, right_plan.rows, rows)
                )
                if winner is None or cost < winner.cost:
                    winner = _PartialPlan(
                        tree=JoinTree.join(left_plan.tree, right_plan.tree, op),
                        cost=cost,
                        rows=rows,
                    )
        return winner

    # ------------------------------------------------------------------ greedy fallback
    def _greedy(self, query: Query, hint_set: HintSet) -> JoinTree:
        """Greedy constructive search used above the DP table limit."""
        allowed_ops = self._allowed_ops(hint_set)
        components: dict[frozenset[str], _PartialPlan] = {}
        for alias in query.aliases:
            subset = frozenset([alias])
            components[subset] = _PartialPlan(
                tree=JoinTree.leaf(alias),
                cost=self._scan_cost(query, alias, hint_set),
                rows=self.estimator.base_estimate(query, alias).rows,
            )
        while len(components) > 1:
            choice = self._cheapest_merge(query, components, allowed_ops, require_predicate=True)
            if choice is None:
                choice = self._cheapest_merge(query, components, allowed_ops, require_predicate=False)
            if choice is None:
                raise PlanError(f"greedy search failed for query {query.name!r}")
            left_key, right_key, plan = choice
            del components[left_key]
            del components[right_key]
            components[left_key | right_key] = plan
        return next(iter(components.values())).tree

    def _cheapest_merge(
        self,
        query: Query,
        components: dict[frozenset[str], _PartialPlan],
        allowed_ops: list[JoinOp],
        require_predicate: bool,
    ) -> tuple[frozenset[str], frozenset[str], _PartialPlan] | None:
        winner: tuple[frozenset[str], frozenset[str], _PartialPlan] | None = None
        keys = list(components)
        for i, left_key in enumerate(keys):
            for right_key in keys[i + 1 :]:
                if require_predicate and not query.predicates_between(set(left_key), set(right_key)):
                    continue
                rows = self.estimator.estimate_subset(query, left_key | right_key)
                left_plan = components[left_key]
                right_plan = components[right_key]
                for left, right, lp, rp in (
                    (left_key, right_key, left_plan, right_plan),
                    (right_key, left_key, right_plan, left_plan),
                ):
                    for op in allowed_ops:
                        cost = lp.cost + rp.cost + self._join_cost(
                            query, op, left, right, lp.rows, rp.rows, rows
                        )
                        if winner is None or cost < winner[2].cost:
                            winner = (
                                left,
                                right,
                                _PartialPlan(
                                    tree=JoinTree.join(lp.tree, rp.tree, op), cost=cost, rows=rows
                                ),
                            )
        return winner


def _subsets_of_size(aliases: list[str], size: int):
    from itertools import combinations

    for combo in combinations(aliases, size):
        yield frozenset(combo)


def _proper_subsets(subset: frozenset[str]):
    items = sorted(subset)
    n = len(items)
    for mask in range(1, (1 << n) - 1):
        yield frozenset(items[i] for i in range(n) if mask & (1 << i))
