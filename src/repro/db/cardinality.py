"""Cardinality estimation for the default optimizer.

This is a deliberately classical estimator in the System R / PostgreSQL
mould: per-column histograms, independence across predicates, and the
``1 / max(ndv_left, ndv_right)`` rule for equijoins.  On skewed and
correlated data these assumptions produce the systematic misestimates that
make the default plans suboptimal — the gap BayesQO exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.query import Query
from repro.db.statistics import TableStats
from repro.exceptions import QueryError

#: Floor applied to every estimated cardinality (PostgreSQL clamps to 1 row).
MIN_ROWS = 1.0


@dataclass
class BaseEstimate:
    """Estimated cardinality of one filtered base table."""

    alias: str
    table_rows: float
    selectivity: float

    @property
    def rows(self) -> float:
        return max(self.table_rows * self.selectivity, MIN_ROWS)


class CardinalityEstimator:
    """Estimates intermediate-result sizes for join subtrees of a query.

    Parameters
    ----------
    stats:
        Per-table statistics produced by :func:`repro.db.statistics.analyze_all`.
    """

    def __init__(self, stats: dict[str, TableStats]) -> None:
        self.stats = stats

    # ------------------------------------------------------------------ base tables
    def base_estimate(self, query: Query, alias: str) -> BaseEstimate:
        """Estimated row count of ``alias`` after applying its filters."""
        table = query.table_of(alias)
        try:
            table_stats = self.stats[table]
        except KeyError as exc:
            raise QueryError(f"no statistics for table {table!r}") from exc
        selectivity = 1.0
        for flt in query.filters_for(alias):
            selectivity *= table_stats.column(flt.column).selectivity(flt.op, flt.value)
        return BaseEstimate(alias, float(table_stats.num_rows), selectivity)

    # ------------------------------------------------------------------ joins
    def join_selectivity(self, query: Query, left: set[str], right: set[str]) -> float:
        """Combined selectivity of all predicates connecting two alias sets.

        Returns 1.0 when no predicate connects them (a cross join).
        """
        selectivity = 1.0
        for predicate in query.predicates_between(left, right):
            left_table = query.table_of(predicate.left_alias)
            right_table = query.table_of(predicate.right_alias)
            ndv_left = self.stats[left_table].column(predicate.left_column).num_distinct
            ndv_right = self.stats[right_table].column(predicate.right_column).num_distinct
            selectivity *= 1.0 / max(ndv_left, ndv_right, 1)
        return selectivity

    def estimate_subset(self, query: Query, aliases: frozenset[str]) -> float:
        """Estimated cardinality of joining all aliases in ``aliases``.

        Uses the textbook formula: product of filtered base cardinalities times
        the product of selectivities of every join predicate internal to the
        subset.  The result does not depend on join order, matching how a
        System R optimizer costs intermediate results.
        """
        if not aliases:
            raise QueryError("cannot estimate the cardinality of an empty alias set")
        rows = 1.0
        for alias in aliases:
            rows *= self.base_estimate(query, alias).rows
        alias_set = set(aliases)
        for predicate in query.join_predicates:
            left, right = predicate.aliases()
            if left in alias_set and right in alias_set:
                left_table = query.table_of(left)
                right_table = query.table_of(right)
                ndv_left = self.stats[left_table].column(predicate.left_column).num_distinct
                ndv_right = self.stats[right_table].column(predicate.right_column).num_distinct
                rows *= 1.0 / max(ndv_left, ndv_right, 1)
        return max(rows, MIN_ROWS)

    def estimate_join(
        self, query: Query, left: frozenset[str], right: frozenset[str]
    ) -> tuple[float, float, float]:
        """Estimated (left_rows, right_rows, output_rows) for joining two subsets."""
        left_rows = self.estimate_subset(query, left)
        right_rows = self.estimate_subset(query, right)
        output_rows = self.estimate_subset(query, left | right)
        return left_rows, right_rows, output_rows
