"""The database substrate: catalog, storage, statistics, planner and executor."""

from repro.db.catalog import Column, ForeignKey, Index, Schema, Table
from repro.db.engine import Database, DatabaseInfo
from repro.db.executor import ExecutionResult, Executor
from repro.db.optimizer import PlanOptimizer
from repro.db.query import FilterPredicate, JoinPredicate, Query, TableRef
from repro.db.relation import Relation

__all__ = [
    "Column",
    "Database",
    "DatabaseInfo",
    "ExecutionResult",
    "Executor",
    "FilterPredicate",
    "ForeignKey",
    "Index",
    "JoinPredicate",
    "PlanOptimizer",
    "Query",
    "Relation",
    "Schema",
    "Table",
    "TableRef",
]
