"""The database substrate: catalog, storage, statistics, planner and executor."""

from repro.db.catalog import Column, ForeignKey, Index, Schema, Table
from repro.db.engine import Database, DatabaseInfo
from repro.db.executor import ExecutionResult, Executor
from repro.db.optimizer import PlanOptimizer
from repro.db.plan_cache import CacheStats, ExecutionCache, ExecutionCacheConfig
from repro.db.query import FilterPredicate, JoinPredicate, Query, TableRef
from repro.db.relation import Relation

__all__ = [
    "CacheStats",
    "Column",
    "Database",
    "DatabaseInfo",
    "ExecutionCache",
    "ExecutionCacheConfig",
    "ExecutionResult",
    "Executor",
    "FilterPredicate",
    "ForeignKey",
    "Index",
    "JoinPredicate",
    "PlanOptimizer",
    "Query",
    "Relation",
    "Schema",
    "Table",
    "TableRef",
]
