"""Operator cost model.

A single cost model serves two purposes:

* the **default optimizer** evaluates it on *estimated* cardinalities to pick
  its plan (like PostgreSQL's planner costs), and
* the **executor** evaluates it on the *true* cardinalities observed while a
  plan runs, producing the simulated latency reported for that plan.

Because both sides share the same operator formulas, the only source of
"optimizer is wrong" behaviour is cardinality misestimation — which matches
the premise of the paper (Leis et al.'s finding that cardinality errors, not
cost model errors, dominate plan quality).

All costs are expressed in simulated seconds.  The constants are scaled so a
well-chosen plan over the bundled workloads runs in tens of milliseconds to a
few seconds while a terrible plan (cross joins, misplaced nested loops) runs
for minutes to hours — the orders-of-magnitude dynamic range that makes
timeouts essential.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.plans.jointree import JoinOp


@dataclass(frozen=True)
class CostParams:
    """Per-row cost constants (simulated seconds)."""

    #: Cost to scan one row sequentially.
    seq_row: float = 1.0e-6
    #: Cost per index probe (paid once per lookup, on top of per-match cost).
    index_probe: float = 4.0e-6
    #: Cost per row returned from an index scan.
    index_row: float = 2.0e-6
    #: Hash join: cost per row to build the hash table.
    hash_build_row: float = 1.5e-6
    #: Hash join: cost per row to probe the hash table.
    hash_probe_row: float = 1.0e-6
    #: Merge join: per-row sort constant (multiplied by log2 of the input size).
    sort_row: float = 2.5e-7
    #: Merge join: per-row cost of the merge pass.
    merge_row: float = 6.0e-7
    #: Nested loop join: cost per (outer, inner) pair examined.
    nl_pair: float = 2.5e-8
    #: Indexed nested loop: cost per outer-row index lookup.
    inl_probe: float = 3.0e-6
    #: Cost per output row of any join.
    output_row: float = 5.0e-7


DEFAULT_COST_PARAMS = CostParams()


def seq_scan_cost(table_rows: float, params: CostParams = DEFAULT_COST_PARAMS) -> float:
    """Cost of scanning (and filtering) every row of a base table."""
    return params.seq_row * max(table_rows, 0.0)


def index_scan_cost(
    table_rows: float, matching_rows: float, params: CostParams = DEFAULT_COST_PARAMS
) -> float:
    """Cost of an index scan returning ``matching_rows`` of ``table_rows``."""
    probe = params.index_probe * math.log2(max(table_rows, 2.0))
    return probe + params.index_row * max(matching_rows, 0.0)


def hash_join_cost(
    outer_rows: float,
    inner_rows: float,
    output_rows: float,
    params: CostParams = DEFAULT_COST_PARAMS,
) -> float:
    """Hash join: build on the inner (right) input, probe with the outer (left)."""
    return (
        params.hash_build_row * max(inner_rows, 0.0)
        + params.hash_probe_row * max(outer_rows, 0.0)
        + params.output_row * max(output_rows, 0.0)
    )


def merge_join_cost(
    outer_rows: float,
    inner_rows: float,
    output_rows: float,
    params: CostParams = DEFAULT_COST_PARAMS,
) -> float:
    """Sort-merge join: sort both inputs, then a linear merge pass."""
    sort_cost = 0.0
    for rows in (outer_rows, inner_rows):
        rows = max(rows, 0.0)
        if rows > 1:
            sort_cost += params.sort_row * rows * math.log2(rows)
    merge_cost = params.merge_row * (max(outer_rows, 0.0) + max(inner_rows, 0.0))
    return sort_cost + merge_cost + params.output_row * max(output_rows, 0.0)


def nested_loop_cost(
    outer_rows: float,
    inner_rows: float,
    output_rows: float,
    inner_indexed: bool,
    inner_table_rows: float,
    params: CostParams = DEFAULT_COST_PARAMS,
) -> float:
    """Nested-loop join, using an index on the inner side when available.

    Without an index the cost is quadratic in the input sizes, which is what
    makes a misplaced nested loop catastrophically slow — exactly the plans a
    timeout must cut short.
    """
    outer_rows = max(outer_rows, 0.0)
    inner_rows = max(inner_rows, 0.0)
    output_rows = max(output_rows, 0.0)
    if inner_indexed:
        probe = params.inl_probe * math.log2(max(inner_table_rows, 2.0))
        return outer_rows * probe + params.output_row * output_rows
    return params.nl_pair * outer_rows * inner_rows + params.output_row * output_rows


def join_cost(
    op: JoinOp,
    outer_rows: float,
    inner_rows: float,
    output_rows: float,
    inner_indexed: bool = False,
    inner_table_rows: float = 0.0,
    params: CostParams = DEFAULT_COST_PARAMS,
) -> float:
    """Dispatch to the cost formula for ``op``."""
    if op is JoinOp.HASH:
        return hash_join_cost(outer_rows, inner_rows, output_rows, params)
    if op is JoinOp.MERGE:
        return merge_join_cost(outer_rows, inner_rows, output_rows, params)
    return nested_loop_cost(
        outer_rows, inner_rows, output_rows, inner_indexed, inner_table_rows, params
    )
