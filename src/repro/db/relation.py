"""In-memory columnar relations.

A :class:`Relation` stores the rows of one table as a dictionary of numpy
arrays (one array per column).  Relations are deliberately simple: the
execution engine only needs filtering by predicate, projection of join
columns and row counts.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.db.catalog import Table
from repro.exceptions import CatalogError, ExecutionError

#: Comparison operators supported by filter predicates.
FILTER_OPS = ("=", "!=", "<", "<=", ">", ">=", "in")


class Relation:
    """Columnar storage for one table.

    Parameters
    ----------
    table:
        The catalog entry describing this relation.
    columns:
        Mapping from column name to a 1-D numpy array.  All arrays must have
        the same length.
    """

    def __init__(self, table: Table, columns: Mapping[str, np.ndarray]) -> None:
        self.table = table
        self._columns: dict[str, np.ndarray] = {}
        length: int | None = None
        for column in table.columns:
            if column.name not in columns:
                raise CatalogError(
                    f"relation for table {table.name!r} is missing column {column.name!r}"
                )
            array = np.asarray(columns[column.name])
            if array.ndim != 1:
                raise CatalogError(f"column {column.name!r} must be 1-D")
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise CatalogError(
                    f"column {column.name!r} has {len(array)} rows, expected {length}"
                )
            self._columns[column.name] = array
        self._num_rows = int(length or 0)

    # ------------------------------------------------------------------ accessors
    @property
    def name(self) -> str:
        return self.table.name

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def column(self, name: str) -> np.ndarray:
        """Return the full array for ``name`` (no copy)."""
        try:
            return self._columns[name]
        except KeyError as exc:
            raise CatalogError(f"relation {self.name!r} has no column {name!r}") from exc

    def take(self, rows: np.ndarray, column: str) -> np.ndarray:
        """Return the values of ``column`` at the given row positions."""
        return self.column(column)[rows]

    # ------------------------------------------------------------------ mutation (used by drift simulation)
    def with_rows(self, rows: np.ndarray) -> "Relation":
        """Return a new relation restricted to the given row positions."""
        return Relation(self.table, {name: arr[rows] for name, arr in self._columns.items()})

    # ------------------------------------------------------------------ filtering
    def filter_mask(self, column: str, op: str, value) -> np.ndarray:
        """Return a boolean mask selecting the rows where ``column op value`` holds."""
        values = self.column(column)
        if op == "=":
            return values == value
        if op == "!=":
            return values != value
        if op == "<":
            return values < value
        if op == "<=":
            return values <= value
        if op == ">":
            return values > value
        if op == ">=":
            return values >= value
        if op == "in":
            return np.isin(values, np.asarray(list(value)))
        raise ExecutionError(f"unsupported filter operator {op!r}")

    def select(self, predicates: Iterable[tuple[str, str, object]]) -> np.ndarray:
        """Return the row positions satisfying every ``(column, op, value)`` predicate."""
        mask = np.ones(self._num_rows, dtype=bool)
        for column, op, value in predicates:
            mask &= self.filter_mask(column, op, value)
        return np.flatnonzero(mask)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name!r}, rows={self._num_rows})"
