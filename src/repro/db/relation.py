"""In-memory columnar relations.

A :class:`Relation` stores the rows of one table as a dictionary of numpy
arrays (one array per column).  Relations are deliberately simple: the
execution engine only needs filtering by predicate, projection of join
columns and row counts.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.db import kernels
from repro.db.catalog import Table
from repro.exceptions import CatalogError, ExecutionError

#: Comparison operators supported by filter predicates.
FILTER_OPS = ("=", "!=", "<", "<=", ">", ">=", "in")

#: Soft cap on entries in each per-relation kernel cache (predicate bitmaps,
#: selection positions, join indexes).  Eviction is FIFO; a miss only costs
#: recomputation, never correctness.
KERNEL_CACHE_CAP = 256


class Relation:
    """Columnar storage for one table.

    Parameters
    ----------
    table:
        The catalog entry describing this relation.
    columns:
        Mapping from column name to a 1-D numpy array.  All arrays must have
        the same length.
    """

    def __init__(self, table: Table, columns: Mapping[str, np.ndarray]) -> None:
        self.table = table
        self._columns: dict[str, np.ndarray] = {}
        length: int | None = None
        for column in table.columns:
            if column.name not in columns:
                raise CatalogError(
                    f"relation for table {table.name!r} is missing column {column.name!r}"
                )
            array = np.asarray(columns[column.name])
            if array.ndim != 1:
                raise CatalogError(f"column {column.name!r} must be 1-D")
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise CatalogError(
                    f"column {column.name!r} has {len(array)} rows, expected {length}"
                )
            self._columns[column.name] = array
        self._num_rows = int(length or 0)
        # Kernel caches: pure functions of the (immutable) column arrays, so
        # sharing hits across Database snapshots is always safe.  Concurrent
        # readers (thread-pool backends) may race a miss and compute the same
        # value twice — benign, the values are deterministic.
        self._mask_cache: dict[tuple, np.ndarray] = {}
        self._select_cache: dict[tuple, np.ndarray] = {}
        self._index_cache: dict[tuple, kernels.JoinIndex] = {}

    # ------------------------------------------------------------------ accessors
    @property
    def name(self) -> str:
        return self.table.name

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def column(self, name: str) -> np.ndarray:
        """Return the full array for ``name`` (no copy)."""
        try:
            return self._columns[name]
        except KeyError as exc:
            raise CatalogError(f"relation {self.name!r} has no column {name!r}") from exc

    def take(self, rows: np.ndarray, column: str) -> np.ndarray:
        """Return the values of ``column`` at the given row positions."""
        return self.column(column)[rows]

    # ------------------------------------------------------------------ mutation (used by drift simulation)
    def with_rows(self, rows: np.ndarray) -> "Relation":
        """Return a new relation restricted to the given row positions."""
        return Relation(self.table, {name: arr[rows] for name, arr in self._columns.items()})

    # ------------------------------------------------------------------ filtering
    def filter_mask(self, column: str, op: str, value) -> np.ndarray:
        """Return a boolean mask selecting the rows where ``column op value`` holds."""
        values = self.column(column)
        if op == "=":
            return values == value
        if op == "!=":
            return values != value
        if op == "<":
            return values < value
        if op == "<=":
            return values <= value
        if op == ">":
            return values > value
        if op == ">=":
            return values >= value
        if op == "in":
            return np.isin(values, np.asarray(list(value)))
        raise ExecutionError(f"unsupported filter operator {op!r}")

    def select(self, predicates: Iterable[tuple[str, str, object]]) -> np.ndarray:
        """Return the row positions satisfying every ``(column, op, value)`` predicate."""
        mask = np.ones(self._num_rows, dtype=bool)
        for column, op, value in predicates:
            mask &= self.filter_mask(column, op, value)
        return np.flatnonzero(mask)

    # ------------------------------------------------------------------ kernel caches
    @staticmethod
    def _cache_put(cache: dict, key, value) -> None:
        if len(cache) >= KERNEL_CACHE_CAP:
            cache.pop(next(iter(cache)))
        cache[key] = value

    def cached_mask(self, column: str, op: str, value, key: tuple | None = None) -> np.ndarray:
        """Like :meth:`filter_mask`, memoized per predicate.

        Callers must not mutate the returned mask (use ``mask & other``,
        never ``mask &= other``).
        """
        if key is None:
            key = kernels.predicate_key(column, op, value)
        mask = self._mask_cache.get(key)
        if mask is None:
            mask = self.filter_mask(column, op, value)
            self._cache_put(self._mask_cache, key, mask)
        return mask

    def select_cached(
        self, predicates: Iterable[tuple[str, str, object]]
    ) -> tuple[np.ndarray, tuple]:
        """Memoized :meth:`select` over cached predicate bitmaps.

        Returns ``(positions, selection key)``; the key identifies this
        filter set for :meth:`join_index` lookups.  The positions array is
        value-identical to :meth:`select`'s and must not be mutated.
        """
        preds = tuple(predicates)
        key = tuple(kernels.predicate_key(*pred) for pred in preds)
        positions = self._select_cache.get(key)
        if positions is None:
            if preds:
                mask: np.ndarray | None = None
                for pred, pred_key in zip(preds, key):
                    cached = self.cached_mask(*pred, key=pred_key)
                    mask = cached if mask is None else mask & cached
                positions = np.flatnonzero(mask)
            else:
                positions = np.arange(self._num_rows)
            self._cache_put(self._select_cache, key, positions)
        return positions, key

    def join_index(
        self, select_key: tuple, positions: np.ndarray, column: str
    ) -> kernels.JoinIndex:
        """Factorized join index over ``column`` at the given selection.

        Keyed by ``(selection key, column)`` so every plan scanning this
        relation with the same filters probes one shared sorted/dense index
        instead of re-sorting the build side per join.
        """
        key = (select_key, column)
        index = self._index_cache.get(key)
        if index is None:
            index = kernels.build_join_index(self.column(column)[positions])
            self._cache_put(self._index_cache, key, index)
        return index

    # ------------------------------------------------------------------ serialization
    def __getstate__(self) -> dict:
        """Ship the columns, not the kernel caches.

        Process-pool workers rebuild caches privately on first use; shipping
        them would bloat the replica payload for no warm-start benefit worth
        the bytes.
        """
        state = self.__dict__.copy()
        state["_mask_cache"] = {}
        state["_select_cache"] = {}
        state["_index_cache"] = {}
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name!r}, rows={self._num_rows})"
