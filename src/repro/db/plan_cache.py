"""Workload-wide execution memoization: outcome replay + subplan reuse.

The offline tuner executes hundreds of candidate plans per query, and
trust-region proposals are *local edits* — consecutive plans share most of
their join subtrees, and the optimizer frequently revisits plans it has
already executed.  This module makes both the repeated and the overlapping
case cheap while keeping results bit-for-bit identical to scratch execution:

* **Outcome cache** — one entry per ``(query, plan)`` fingerprint holding the
  ordered *charge-event log* of an execution (every cost the executor charged,
  plus node-completion markers).  Replaying the log through a fresh
  ``_ExecutionState`` repeats the exact float additions in the exact order,
  so the replayed latency, timeout behaviour, node count and cost breakdown
  are identical to re-executing the plan — for *any* timeout the entry can
  serve.  A completed log serves every timeout (the accumulated simulated
  time exceeds the timeout at precisely the same charge it would have on a
  real run); a log censored at ``T`` serves any timeout ``<= T`` and is
  upgraded when a later run observes further.

* **Subplan memo** — a bounded LRU over join-subtree fingerprints caching
  each subtree's materialized intermediate *and* the event-log segment that
  produced it.  A new plan only pays for the join nodes it does not share
  with previously executed plans of the same query; shared subtrees replay
  their recorded charges (never recompute them) and reuse the intermediate
  arrays directly.  Entries are charged by the byte size of their retained
  position arrays and evicted least-recently-used under ``max_bytes``.

Both caches key queries by *content* (tables, join predicates, filters), not
by name, so two Query objects describing the same query share entries and
two same-named queries with different filters never collide.  The cache is a
plain data container — replay itself lives in :mod:`repro.db.executor`,
which owns the timeout semantics.

Caches are deliberately **not pickled** with the database
(:meth:`~repro.db.engine.Database.__getstate__` ships only constructor
inputs): every :class:`~repro.exec.process_pool.ProcessPoolBackend` worker
rebuilds its replica with a fresh, private cache and warms it alongside
``Database.warmup``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.executor import _Intermediate
    from repro.db.query import Query
    from repro.plans.jointree import JoinTree

#: One entry of a charge-event log: ``(category, cost)`` for an
#: ``_ExecutionState.charge`` call, or ``(NODE_EVENT, 0.0)`` marking a
#: completed operator (``nodes_executed`` increment).  Replay consumes the
#: log in order, so the accumulated simulated time goes through the exact
#: same sequence of float additions as the recording run.
Event = tuple[str, float]

#: Event category marking an operator completion rather than a cost charge.
NODE_EVENT = "__node__"

#: Event category marking the executor's materialization work cap firing
#: (the cost field carries the offending row count).  The cap aborts the
#: execution regardless of how much simulated time has accumulated, so it
#: must be an explicit event for replay to censor at the same point.
CAP_EVENT = "__cap__"

#: Default budget for materialized subplan intermediates (bytes).
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class ExecutionCacheConfig:
    """Knobs of the execution-memoization layer.

    ``enabled`` turns the whole layer off (scratch execution, zero overhead);
    ``max_bytes`` bounds the subplan memo's materialized intermediates (the
    outcome cache stores only event logs — a few hundred bytes per plan —
    and is not byte-bounded).  ``max_entry_bytes`` (default: an eighth of
    the budget) keeps any single intermediate from monopolizing it: bad
    join orders materialize intermediates up to the executor's work cap —
    hundreds of MB that would evict dozens of small, frequently shared
    subtrees, cost allocator churn to retain, and rarely get reused (their
    *exact* revisits are already free through the outcome cache, which
    stores only the charge log).
    """

    enabled: bool = True
    max_bytes: int = DEFAULT_CACHE_BYTES
    #: Per-entry cap on a memoized intermediate; ``None`` derives
    #: ``max_bytes // 8``.
    max_entry_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        if self.max_entry_bytes is not None and self.max_entry_bytes < 0:
            raise ValueError("max_entry_bytes must be non-negative")

    @property
    def entry_limit(self) -> int:
        return (
            self.max_entry_bytes
            if self.max_entry_bytes is not None
            else self.max_bytes // 8
        )


@dataclass(frozen=True)
class CacheStats:
    """Per-execution cache observability, attached to every ExecutionResult.

    ``outcome_hit`` — the whole execution was replayed from the outcome
    cache; ``subplan_hits``/``subplan_misses`` — join-subtree memo activity
    during a scratch execution (zero on an outcome replay); ``bytes_cached``
    — the subplan memo's footprint after this execution.
    """

    outcome_hit: bool = False
    subplan_hits: int = 0
    subplan_misses: int = 0
    bytes_cached: int = 0
    #: The execution ran inside a plan batch (``Executor.run_batch``); its
    #: ``subplan_hits`` then count shared-subtree savings against the batch's
    #: dedup cache (ephemeral when persistent caching is off).
    batched: bool = False


@dataclass
class CacheCounters:
    """Cumulative counters of one :class:`ExecutionCache` instance."""

    outcome_hits: int = 0
    outcome_misses: int = 0
    subplan_hits: int = 0
    subplan_misses: int = 0
    evictions: int = 0

    def snapshot(self) -> dict:
        return {
            "outcome_hits": self.outcome_hits,
            "outcome_misses": self.outcome_misses,
            "subplan_hits": self.subplan_hits,
            "subplan_misses": self.subplan_misses,
            "evictions": self.evictions,
        }


# ------------------------------------------------------------------ fingerprints
def query_fingerprint(query: "Query") -> tuple:
    """Content-based identity of a query: tables, join predicates, filters.

    Deliberately ignores ``query.name``: ad-hoc Query objects describing the
    same query share cache entries, and reused names with different filters
    never collide.  Filter values may be lists (``in`` predicates); they are
    rendered to strings so the fingerprint stays hashable.
    """
    tables = tuple(sorted((ref.alias, ref.table) for ref in query.table_refs))
    joins = tuple(
        sorted(
            min(
                (p.left_alias, p.left_column, p.right_alias, p.right_column),
                (p.right_alias, p.right_column, p.left_alias, p.left_column),
            )
            for p in query.join_predicates
        )
    )
    filters = tuple(sorted((f.alias, f.column, f.op, repr(f.value)) for f in query.filters))
    return (tables, joins, filters)


def plan_fingerprint(query: "Query", plan: "JoinTree") -> tuple:
    """Identity of one ``(query, plan)`` execution: query content + the
    plan's canonical rendering (structure + operators; children not
    commuted, matching the latency-noise seed)."""
    return (query_fingerprint(query), plan.canonical())


# ------------------------------------------------------------------ entries
@dataclass
class OutcomeEntry:
    """The replayable record of one plan execution.

    ``completed`` — the recording run charged every operator (it may still
    have been censored by the *post-noise* latency check; the log itself is
    complete, so it serves any timeout).  ``work_capped`` — the run hit the
    executor's materialization cap, which fires deterministically at the same
    node for every timeout, so the entry serves any finite timeout.
    Otherwise the log is truncated at the charge that exceeded
    ``observed_to`` and can only serve timeouts ``<= observed_to``.
    """

    events: list[Event]
    completed: bool
    observed_to: float | None
    output_rows: int | None
    work_capped: bool = False

    def serves(self, timeout: float | None) -> bool:
        """Whether replaying this entry reproduces execution under ``timeout``.

        A completed log always does.  A work-capped log serves any timeout
        (without one, a real run raises ExecutionError instead — that path
        re-executes).  A censored-at-T log serves any timeout ``<= T``: the
        accumulated time exceeds the smaller timeout at (or before) the
        charge where the recording run aborted.
        """
        if self.completed:
            return True
        if timeout is None:
            return False
        if self.work_capped:
            return True
        return self.observed_to is not None and timeout <= self.observed_to


@dataclass
class SubplanEntry:
    """One memoized subtree: its intermediate and the charges that built it.

    ``intermediate`` is ``None`` for *events-only* entries — subtrees whose
    materialized arrays exceeded the per-entry byte cap.  Their charge log is
    still enough to serve the common catastrophic case: when replaying the
    recorded charges from the current accumulated time would already exceed
    the execution's timeout, the executor censors without materializing
    anything (the arrays would have been thrown away at the abort anyway).
    When the charges would *not* exceed the timeout, the subtree is
    re-executed for real — the arrays are genuinely needed then.
    """

    intermediate: "_Intermediate | None"
    events: list[Event]
    nbytes: int


def intermediate_nbytes(intermediate: "_Intermediate") -> int:
    """Memory charged for a cached intermediate: its retained position arrays."""
    return sum(positions.nbytes for positions in intermediate.positions.values())


def _events_nbytes(events: list[Event]) -> int:
    """LRU accounting for an events-only entry (small, but never free)."""
    return 64 + 48 * len(events)


# ------------------------------------------------------------------ the cache
class ExecutionCache:
    """The workload-wide execution memo: outcome cache + subplan LRU.

    One instance serves every query executed through its
    :class:`~repro.db.executor.Executor`; the executor owns replay, this
    class owns storage, eviction and accounting.  Not thread-safe by design:
    each execution actor (the inline executor, each process-pool worker)
    holds its own instance.
    """

    def __init__(self, config: ExecutionCacheConfig | None = None) -> None:
        self.config = config or ExecutionCacheConfig()
        self.counters = CacheCounters()
        self._outcomes: dict[tuple, OutcomeEntry] = {}
        # Insertion order doubles as recency order (moved on every hit).
        self._subplans: dict[tuple, SubplanEntry] = {}
        self._subplan_bytes = 0

    # ------------------------------------------------------------------ outcome side
    def lookup_outcome(self, key: tuple, timeout: float | None) -> OutcomeEntry | None:
        """The entry for ``key`` if it can serve ``timeout``, else ``None``."""
        entry = self._outcomes.get(key)
        if entry is not None and entry.serves(timeout):
            self.counters.outcome_hits += 1
            return entry
        self.counters.outcome_misses += 1
        return None

    def store_outcome(
        self,
        key: tuple,
        events: list[Event],
        completed: bool,
        observed_to: float | None,
        output_rows: int | None,
        work_capped: bool = False,
    ) -> None:
        """Record an execution, keeping the most informative entry per key.

        A completed log beats any censored one; a work-capped log beats a
        time-censored one (it serves every finite timeout); among
        time-censored logs the one observed to the larger timeout wins.
        """
        existing = self._outcomes.get(key)
        if existing is not None and not completed:
            if existing.completed or (existing.work_capped and not work_capped):
                return
            if not work_capped and (
                observed_to is None
                or (existing.observed_to is not None and existing.observed_to >= observed_to)
            ):
                return
        self._outcomes[key] = OutcomeEntry(
            events=events,
            completed=completed,
            observed_to=observed_to,
            output_rows=output_rows,
            work_capped=work_capped,
        )

    def export_outcomes(self) -> list[tuple]:
        """The outcome cache as plain picklable tuples (for checkpoints).

        Only the outcome side travels: it is the part that carries replayable
        execution *results*.  The subplan memo is a pure performance
        structure rebuilt naturally as execution resumes, and its
        intermediates can be large.
        """
        return [
            (
                key,
                list(entry.events),
                entry.completed,
                entry.observed_to,
                entry.output_rows,
                entry.work_capped,
            )
            for key, entry in self._outcomes.items()
        ]

    def import_outcomes(self, payload: Iterable[tuple]) -> int:
        """Restore entries exported by :meth:`export_outcomes`.

        Goes through :meth:`store_outcome`, so restoring into a cache that
        already holds fresher entries keeps the most informative one — the
        import is an upsert, not a blind overwrite.  Returns the number of
        entries offered.
        """
        count = 0
        for key, events, completed, observed_to, output_rows, work_capped in payload:
            self.store_outcome(
                tuple(key),
                list(events),
                completed,
                observed_to,
                output_rows,
                work_capped=work_capped,
            )
            count += 1
        return count

    # ------------------------------------------------------------------ subplan side
    def get_subplan(self, key: tuple) -> SubplanEntry | None:
        """The entry for ``key``, recency-refreshed; does **not** count stats.

        The executor decides whether the entry is actually *usable* (an
        events-only entry only serves executions it can censor), so hit/miss
        accounting lives with the caller — see :meth:`count_subplan_hit` /
        :meth:`count_subplan_miss`.
        """
        entry = self._subplans.get(key)
        if entry is None:
            return None
        # Refresh recency: re-insertion moves the key to the dict's end.
        del self._subplans[key]
        self._subplans[key] = entry
        return entry

    def count_subplan_hit(self) -> None:
        self.counters.subplan_hits += 1

    def count_subplan_miss(self) -> None:
        self.counters.subplan_misses += 1

    def put_subplan(self, key: tuple, intermediate: "_Intermediate", events: list[Event]) -> None:
        array_bytes = intermediate_nbytes(intermediate)
        if array_bytes > min(self.config.entry_limit, self.config.max_bytes):
            # Oversized: retaining the arrays would evict many small shared
            # entries (and bloat the allocator); keep the charge log only.
            stored: "_Intermediate | None" = None
            nbytes = _events_nbytes(events)
        else:
            stored = intermediate
            # The event log is charged too, so even zero-byte intermediates
            # (empty or fully pruned position sets) are never free.
            nbytes = array_bytes + _events_nbytes(events)
        if nbytes > self.config.max_bytes:
            return
        old = self._subplans.pop(key, None)
        if old is not None:
            self._subplan_bytes -= old.nbytes
        self._subplans[key] = SubplanEntry(stored, events, nbytes)
        self._subplan_bytes += nbytes
        # Evict oldest-first until under budget.  The just-inserted entry sits
        # at the recency end and fits on its own (guarded above), so it is
        # never the eviction victim.
        while self._subplan_bytes > self.config.max_bytes:
            evicted_key = next(iter(self._subplans))
            self._subplan_bytes -= self._subplans.pop(evicted_key).nbytes
            self.counters.evictions += 1

    # ------------------------------------------------------------------ accounting
    @property
    def subplan_bytes(self) -> int:
        return self._subplan_bytes

    @property
    def num_outcomes(self) -> int:
        return len(self._outcomes)

    @property
    def num_subplans(self) -> int:
        return len(self._subplans)

    def subplan_keys(self) -> Iterable[tuple]:
        """Current subplan keys, oldest first (exposed for tests)."""
        return tuple(self._subplans)

    def clear(self) -> None:
        self._outcomes.clear()
        self._subplans.clear()
        self._subplan_bytes = 0
