"""The :class:`Database` facade: schema + data + statistics + planner + executor.

This is the substrate object every higher layer works against.  It exposes the
four capabilities the paper's system model assumes of the DBMS:

1. a default optimizer that produces reasonable (not optimal) plans,
2. execution against a read snapshot,
3. acceptance of physical plans / hints that fix join orders and operators,
4. PK-FK equijoin queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.catalog import Schema
from repro.db.cost import CostParams, DEFAULT_COST_PARAMS
from repro.db.executor import ExecutionResult, Executor
from repro.db.optimizer import PlanOptimizer
from repro.db.plan_cache import ExecutionCache, ExecutionCacheConfig
from repro.db.query import Query
from repro.db.relation import Relation
from repro.db.statistics import TableStats, analyze_all
from repro.exceptions import CatalogError
from repro.plans.hints import DEFAULT_HINT_SET, HintSet
from repro.plans.jointree import JoinTree


@dataclass
class DatabaseInfo:
    """Summary information about a database instance (used by Table 1)."""

    name: str
    num_tables: int
    total_rows: int
    size_bytes: int


class Database:
    """An in-memory analytical database instance.

    Parameters
    ----------
    schema:
        Catalog describing the tables, foreign keys and indexes.
    relations:
        Stored data, one :class:`~repro.db.relation.Relation` per table.
    cost_params:
        Operator cost constants shared by the planner and the executor.
    noise_sigma:
        Log-normal execution latency noise (0 disables noise).
    seed:
        Seed for the latency noise.
    exec_cache:
        The execution-memoization layer (see :mod:`repro.db.plan_cache`):
        ``True`` (the default) enables it with default limits, ``False``
        disables it, or pass an :class:`ExecutionCacheConfig` for explicit
        limits.  Caching never changes results — repeated and overlapping
        plan executions just stop paying for work already done.
    use_kernels:
        Execute through the columnar kernels of :mod:`repro.db.kernels`
        (the default).  ``False`` selects the pre-kernel reference executor
        path; results are bit-for-bit identical either way.
    """

    def __init__(
        self,
        schema: Schema,
        relations: dict[str, Relation],
        cost_params: CostParams = DEFAULT_COST_PARAMS,
        noise_sigma: float = 0.0,
        seed: int = 0,
        exec_cache: ExecutionCacheConfig | bool = True,
        use_kernels: bool = True,
    ) -> None:
        missing = [name for name in schema.table_names if name not in relations]
        if missing:
            raise CatalogError(f"missing relations for tables: {missing}")
        self.schema = schema
        self.relations = relations
        self.cost_params = cost_params
        self.exec_cache_config = self._normalize_cache_config(exec_cache)
        self.stats: dict[str, TableStats] = analyze_all(relations)
        self.optimizer = PlanOptimizer(schema, self.stats, cost_params)
        self.executor = Executor(
            schema,
            relations,
            cost_params,
            noise_sigma=noise_sigma,
            seed=seed,
            cache=self._build_cache(self.exec_cache_config),
            use_kernels=use_kernels,
        )

    @staticmethod
    def _normalize_cache_config(exec_cache: ExecutionCacheConfig | bool) -> ExecutionCacheConfig:
        if exec_cache is True:
            return ExecutionCacheConfig()
        if exec_cache is False:
            return ExecutionCacheConfig(enabled=False)
        return exec_cache

    @staticmethod
    def _build_cache(config: ExecutionCacheConfig) -> ExecutionCache | None:
        return ExecutionCache(config) if config.enabled else None

    # ------------------------------------------------------------------ execution cache
    @property
    def execution_cache(self) -> ExecutionCache | None:
        """The executor's memoization layer (``None`` when disabled)."""
        return self.executor.cache

    def with_execution_cache(self, config: ExecutionCacheConfig | bool) -> "Database":
        """A snapshot of this database carrying ``config`` as its cache setup.

        Shares the same immutable relations; returns ``self`` unchanged when
        the normalized config already matches.  This is how
        :class:`~repro.core.config.ExecutionServiceConfig` overrides are
        applied without mutating the caller's database (see
        :func:`repro.exec.apply_cache_overrides`).
        """
        config = self._normalize_cache_config(config)
        if config == self.exec_cache_config:
            return self
        return Database(
            self.schema,
            self.relations,
            self.cost_params,
            noise_sigma=self.executor.noise_sigma,
            seed=self.executor.seed,
            exec_cache=config,
            use_kernels=self.executor.use_kernels,
        )

    def set_execution_cache(self, config: ExecutionCacheConfig | bool) -> None:
        """Reconfigure the memoization layer of *this* database in place.

        Reconfiguring to the *same* config is a no-op, so warm cache state
        survives repeated calls.  The execution service never calls this on
        a user's database — it derives a snapshot via
        :meth:`with_execution_cache` instead.
        """
        config = self._normalize_cache_config(config)
        if config == self.exec_cache_config:
            return
        self.exec_cache_config = config
        self.executor.cache = self._build_cache(config)

    # ------------------------------------------------------------------ planning
    def plan(self, query: Query, hint_set: HintSet = DEFAULT_HINT_SET) -> JoinTree:
        """Default-optimizer plan for ``query`` under ``hint_set``."""
        query.validate_against(self.schema)
        return self.optimizer.plan(query, hint_set)

    def estimated_cost(self, query: Query, plan: JoinTree) -> float:
        """Planner cost estimate for an arbitrary plan (uses estimated cardinalities)."""
        return self.optimizer.estimated_cost(query, plan)

    # ------------------------------------------------------------------ execution
    def execute(
        self, query: Query, plan: JoinTree | None = None, timeout: float | None = None
    ) -> ExecutionResult:
        """Execute ``plan`` (or the default plan) against the read snapshot."""
        if plan is None:
            plan = self.plan(query)
        return self.executor.execute(query, plan, timeout=timeout)

    def execute_batch(
        self, query: Query, plans: list[JoinTree], timeouts=None
    ) -> list[ExecutionResult]:
        """Execute sibling plans for one query in one pass over shared subtrees.

        ``timeouts`` is a per-plan list (or one value applied to all).  The
        results are bit-for-bit identical to calling :meth:`execute` once per
        plan in order — including per-plan censoring and work-cap aborts; the
        batch only dedups shared join-subtree work (see
        :class:`~repro.db.executor.BatchExecutor`).
        """
        return self.executor.run_batch(query, plans, timeouts)

    def default_latency(self, query: Query) -> float:
        """Latency of the default-optimizer plan."""
        return self.execute(query).latency

    # ------------------------------------------------------------------ serialization
    def __getstate__(self) -> dict:
        """Pickle only the constructor inputs.

        Statistics, the planner and the executor are all deterministic
        functions of (schema, relations, cost params, noise, seed); rebuilding
        them on unpickle keeps the payload small and guarantees a worker
        process reconstructs exactly the replica ``__init__`` would have built.
        This is what lets a :class:`~repro.exec.ProcessPoolBackend` ship one
        database to each worker and hold it warm across plan executions.
        """
        return {
            "schema": self.schema,
            "relations": self.relations,
            "cost_params": self.cost_params,
            "noise_sigma": self.executor.noise_sigma,
            "seed": self.executor.seed,
            "exec_cache": self.exec_cache_config,
            "use_kernels": self.executor.use_kernels,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["schema"],
            state["relations"],
            state["cost_params"],
            noise_sigma=state["noise_sigma"],
            seed=state["seed"],
            # Pre-cache pickles (older state dicts) rebuild with the default.
            exec_cache=state.get("exec_cache", True),
            use_kernels=state.get("use_kernels", True),
        )

    #: Timeout used when warmup pre-executes default plans to prime the
    #: execution cache (the technique's own initial timeout, so pathological
    #: defaults cost a bounded amount of simulated work).
    WARMUP_TIMEOUT = 600.0

    def warmup(self, queries: list[Query]) -> None:
        """Plan each query once so a freshly built replica is ready to serve.

        Planning runs the cardinality estimator and join-order search end to
        end, touching the statistics and relation pages a replica needs hot;
        process-pool workers call this once at startup so the first real plan
        execution pays no cold-start penalty.  When the execution cache is
        enabled, warmup additionally executes each query's default plan once
        (bounded by :attr:`WARMUP_TIMEOUT`), priming the subplan memo with
        the base-table scans and default join subtrees — the fragments
        optimizer proposals most often share.  Queries whose planning or
        warm execution fails are skipped — the error will surface (with
        context) when the query is actually executed.
        """
        for query in queries:
            try:
                plan = self.plan(query)
                if self.execution_cache is not None:
                    self.executor.execute(query, plan, timeout=self.WARMUP_TIMEOUT)
            except Exception:  # noqa: BLE001 - warmup is best-effort by design
                continue

    # ------------------------------------------------------------------ snapshots / drift
    def snapshot(self) -> "Database":
        """A read snapshot sharing the same immutable relations.

        The executor never mutates relations, so sharing is safe; the snapshot
        exists to model the paper's "execute against a read snapshot" rule and
        to give drift simulations an object to derive from.
        """
        return Database(
            self.schema,
            dict(self.relations),
            self.cost_params,
            noise_sigma=self.executor.noise_sigma,
            seed=self.executor.seed,
            exec_cache=self.exec_cache_config,
            use_kernels=self.executor.use_kernels,
        )

    def with_relations(self, relations: dict[str, Relation]) -> "Database":
        """A new database over different data (used by the drift simulation)."""
        return Database(
            self.schema,
            relations,
            self.cost_params,
            noise_sigma=self.executor.noise_sigma,
            seed=self.executor.seed,
            exec_cache=self.exec_cache_config,
            use_kernels=self.executor.use_kernels,
        )

    # ------------------------------------------------------------------ metadata
    def info(self, name: str | None = None) -> DatabaseInfo:
        """Size summary used for Table 1."""
        total_rows = sum(rel.num_rows for rel in self.relations.values())
        size_bytes = sum(
            rel.num_rows * len(rel.column_names) * np.dtype(np.int64).itemsize
            for rel in self.relations.values()
        )
        return DatabaseInfo(
            name=name or self.schema.name,
            num_tables=len(self.schema),
            total_rows=total_rows,
            size_bytes=size_bytes,
        )

    def table_rows(self, table: str) -> int:
        return self.relations[table].num_rows
