"""The :class:`Database` facade: schema + data + statistics + planner + executor.

This is the substrate object every higher layer works against.  It exposes the
four capabilities the paper's system model assumes of the DBMS:

1. a default optimizer that produces reasonable (not optimal) plans,
2. execution against a read snapshot,
3. acceptance of physical plans / hints that fix join orders and operators,
4. PK-FK equijoin queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.catalog import Schema
from repro.db.cost import CostParams, DEFAULT_COST_PARAMS
from repro.db.executor import ExecutionResult, Executor
from repro.db.optimizer import PlanOptimizer
from repro.db.query import Query
from repro.db.relation import Relation
from repro.db.statistics import TableStats, analyze_all
from repro.exceptions import CatalogError
from repro.plans.hints import DEFAULT_HINT_SET, HintSet
from repro.plans.jointree import JoinTree


@dataclass
class DatabaseInfo:
    """Summary information about a database instance (used by Table 1)."""

    name: str
    num_tables: int
    total_rows: int
    size_bytes: int


class Database:
    """An in-memory analytical database instance.

    Parameters
    ----------
    schema:
        Catalog describing the tables, foreign keys and indexes.
    relations:
        Stored data, one :class:`~repro.db.relation.Relation` per table.
    cost_params:
        Operator cost constants shared by the planner and the executor.
    noise_sigma:
        Log-normal execution latency noise (0 disables noise).
    seed:
        Seed for the latency noise.
    """

    def __init__(
        self,
        schema: Schema,
        relations: dict[str, Relation],
        cost_params: CostParams = DEFAULT_COST_PARAMS,
        noise_sigma: float = 0.0,
        seed: int = 0,
    ) -> None:
        missing = [name for name in schema.table_names if name not in relations]
        if missing:
            raise CatalogError(f"missing relations for tables: {missing}")
        self.schema = schema
        self.relations = relations
        self.cost_params = cost_params
        self.stats: dict[str, TableStats] = analyze_all(relations)
        self.optimizer = PlanOptimizer(schema, self.stats, cost_params)
        self.executor = Executor(
            schema, relations, cost_params, noise_sigma=noise_sigma, seed=seed
        )

    # ------------------------------------------------------------------ planning
    def plan(self, query: Query, hint_set: HintSet = DEFAULT_HINT_SET) -> JoinTree:
        """Default-optimizer plan for ``query`` under ``hint_set``."""
        query.validate_against(self.schema)
        return self.optimizer.plan(query, hint_set)

    def estimated_cost(self, query: Query, plan: JoinTree) -> float:
        """Planner cost estimate for an arbitrary plan (uses estimated cardinalities)."""
        return self.optimizer.estimated_cost(query, plan)

    # ------------------------------------------------------------------ execution
    def execute(
        self, query: Query, plan: JoinTree | None = None, timeout: float | None = None
    ) -> ExecutionResult:
        """Execute ``plan`` (or the default plan) against the read snapshot."""
        if plan is None:
            plan = self.plan(query)
        return self.executor.execute(query, plan, timeout=timeout)

    def default_latency(self, query: Query) -> float:
        """Latency of the default-optimizer plan."""
        return self.execute(query).latency

    # ------------------------------------------------------------------ serialization
    def __getstate__(self) -> dict:
        """Pickle only the constructor inputs.

        Statistics, the planner and the executor are all deterministic
        functions of (schema, relations, cost params, noise, seed); rebuilding
        them on unpickle keeps the payload small and guarantees a worker
        process reconstructs exactly the replica ``__init__`` would have built.
        This is what lets a :class:`~repro.exec.ProcessPoolBackend` ship one
        database to each worker and hold it warm across plan executions.
        """
        return {
            "schema": self.schema,
            "relations": self.relations,
            "cost_params": self.cost_params,
            "noise_sigma": self.executor.noise_sigma,
            "seed": self.executor.seed,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["schema"],
            state["relations"],
            state["cost_params"],
            noise_sigma=state["noise_sigma"],
            seed=state["seed"],
        )

    def warmup(self, queries: list[Query]) -> None:
        """Plan each query once so a freshly built replica is ready to serve.

        Planning runs the cardinality estimator and join-order search end to
        end, touching the statistics and relation pages a replica needs hot;
        process-pool workers call this once at startup so the first real plan
        execution pays no cold-start penalty.  Queries whose planning fails
        are skipped — the error will surface (with context) when the query is
        actually executed.
        """
        for query in queries:
            try:
                self.plan(query)
            except Exception:  # noqa: BLE001 - warmup is best-effort by design
                continue

    # ------------------------------------------------------------------ snapshots / drift
    def snapshot(self) -> "Database":
        """A read snapshot sharing the same immutable relations.

        The executor never mutates relations, so sharing is safe; the snapshot
        exists to model the paper's "execute against a read snapshot" rule and
        to give drift simulations an object to derive from.
        """
        return Database(
            self.schema,
            dict(self.relations),
            self.cost_params,
            noise_sigma=self.executor.noise_sigma,
            seed=self.executor.seed,
        )

    def with_relations(self, relations: dict[str, Relation]) -> "Database":
        """A new database over different data (used by the drift simulation)."""
        return Database(
            self.schema,
            relations,
            self.cost_params,
            noise_sigma=self.executor.noise_sigma,
            seed=self.executor.seed,
        )

    # ------------------------------------------------------------------ metadata
    def info(self, name: str | None = None) -> DatabaseInfo:
        """Size summary used for Table 1."""
        total_rows = sum(rel.num_rows for rel in self.relations.values())
        size_bytes = sum(
            rel.num_rows * len(rel.column_names) * np.dtype(np.int64).itemsize
            for rel in self.relations.values()
        )
        return DatabaseInfo(
            name=name or self.schema.name,
            num_tables=len(self.schema),
            total_rows=total_rows,
            size_bytes=size_bytes,
        )

    def table_rows(self, table: str) -> int:
        return self.relations[table].num_rows
