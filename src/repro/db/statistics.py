"""Table statistics: row counts, NDVs and equi-depth histograms.

The default optimizer's cardinality estimator (and therefore its plan
choices) is driven entirely by these statistics.  Like PostgreSQL's
``pg_statistic``, they are a lossy summary — histograms are per-column and
the estimator assumes independence — which is precisely why the default
optimizer leaves room for offline optimization on correlated, skewed data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db.relation import Relation
from repro.exceptions import CatalogError

#: Number of histogram buckets kept per column (PostgreSQL's default is 100).
DEFAULT_BUCKETS = 50
#: Number of most-common values tracked per column.
DEFAULT_MCVS = 10


@dataclass
class ColumnStats:
    """Summary statistics for one column."""

    name: str
    num_rows: int
    num_distinct: int
    min_value: float
    max_value: float
    #: Equi-depth histogram bucket boundaries (length ``buckets + 1``).
    histogram: np.ndarray
    #: Most common values and their frequencies (fractions of the table).
    mcv_values: np.ndarray = field(default_factory=lambda: np.array([], dtype=np.int64))
    mcv_fractions: np.ndarray = field(default_factory=lambda: np.array([], dtype=np.float64))

    # ------------------------------------------------------------------ selectivity estimates
    def selectivity_eq(self, value: float) -> float:
        """Estimated fraction of rows with ``column = value``."""
        if self.num_rows == 0 or self.num_distinct == 0:
            return 0.0
        if len(self.mcv_values):
            match = np.flatnonzero(self.mcv_values == value)
            if len(match):
                return float(self.mcv_fractions[match[0]])
        non_mcv_fraction = 1.0 - float(self.mcv_fractions.sum())
        non_mcv_distinct = max(self.num_distinct - len(self.mcv_values), 1)
        return max(non_mcv_fraction / non_mcv_distinct, 1.0 / max(self.num_rows, 1))

    def selectivity_range(self, op: str, value: float) -> float:
        """Estimated fraction of rows satisfying ``column op value`` for range ops."""
        if self.num_rows == 0:
            return 0.0
        if self.max_value == self.min_value:
            covered = 1.0 if _range_holds(self.min_value, op, value) else 0.0
            return covered
        fraction_below = self._fraction_below(value)
        if op in ("<", "<="):
            return float(np.clip(fraction_below, 0.0, 1.0))
        if op in (">", ">="):
            return float(np.clip(1.0 - fraction_below, 0.0, 1.0))
        raise CatalogError(f"selectivity_range does not handle operator {op!r}")

    def selectivity(self, op: str, value) -> float:
        """Estimated selectivity of a single predicate on this column."""
        if op == "=":
            return self.selectivity_eq(value)
        if op == "!=":
            return float(np.clip(1.0 - self.selectivity_eq(value), 0.0, 1.0))
        if op == "in":
            values = list(value)
            return float(np.clip(sum(self.selectivity_eq(v) for v in values), 0.0, 1.0))
        return self.selectivity_range(op, value)

    def _fraction_below(self, value: float) -> float:
        """Fraction of rows with ``column <= value`` according to the histogram."""
        boundaries = self.histogram
        if len(boundaries) < 2:
            span = self.max_value - self.min_value
            if span <= 0:
                return 1.0 if value >= self.min_value else 0.0
            return (value - self.min_value) / span
        position = np.searchsorted(boundaries, value, side="right")
        if position <= 0:
            return 0.0
        if position >= len(boundaries):
            return 1.0
        buckets = len(boundaries) - 1
        lower, upper = boundaries[position - 1], boundaries[position]
        within = 0.0 if upper == lower else (value - lower) / (upper - lower)
        return ((position - 1) + within) / buckets


@dataclass
class TableStats:
    """Statistics for one table: row count plus per-column stats."""

    table_name: str
    num_rows: int
    columns: dict[str, ColumnStats]

    def column(self, name: str) -> ColumnStats:
        try:
            return self.columns[name]
        except KeyError as exc:
            raise CatalogError(
                f"no statistics for column {name!r} of table {self.table_name!r}"
            ) from exc


def analyze_relation(
    relation: Relation, buckets: int = DEFAULT_BUCKETS, mcvs: int = DEFAULT_MCVS
) -> TableStats:
    """Compute :class:`TableStats` for a relation (the ``ANALYZE`` equivalent)."""
    columns: dict[str, ColumnStats] = {}
    for name in relation.column_names:
        values = relation.column(name).astype(np.float64)
        columns[name] = _analyze_column(name, values, buckets, mcvs)
    return TableStats(relation.name, relation.num_rows, columns)


def analyze_all(
    relations: dict[str, Relation], buckets: int = DEFAULT_BUCKETS, mcvs: int = DEFAULT_MCVS
) -> dict[str, TableStats]:
    """Analyze every relation of a database."""
    return {name: analyze_relation(rel, buckets, mcvs) for name, rel in relations.items()}


def _analyze_column(name: str, values: np.ndarray, buckets: int, mcvs: int) -> ColumnStats:
    num_rows = len(values)
    if num_rows == 0:
        return ColumnStats(
            name=name,
            num_rows=0,
            num_distinct=0,
            min_value=0.0,
            max_value=0.0,
            histogram=np.array([0.0, 0.0]),
        )
    unique, counts = np.unique(values, return_counts=True)
    order = np.argsort(counts)[::-1]
    top = order[: min(mcvs, len(order))]
    quantiles = np.linspace(0.0, 1.0, buckets + 1)
    histogram = np.quantile(values, quantiles)
    return ColumnStats(
        name=name,
        num_rows=num_rows,
        num_distinct=int(len(unique)),
        min_value=float(values.min()),
        max_value=float(values.max()),
        histogram=histogram,
        mcv_values=unique[top].astype(np.int64),
        mcv_fractions=(counts[top] / num_rows).astype(np.float64),
    )


def _range_holds(column_value: float, op: str, value: float) -> bool:
    if op == "<":
        return column_value < value
    if op == "<=":
        return column_value <= value
    if op == ">":
        return column_value > value
    if op == ">=":
        return column_value >= value
    raise CatalogError(f"unsupported range operator {op!r}")
