"""Pure columnar operators for the executor hot path.

Everything in this module is a function (or an immutable index structure)
over numpy arrays: no executor state, no charge accounting, no cache access.
The executor composes these kernels into join execution; the split exists so
the kernels can be property-tested for exact equivalence against the
reference implementations (see ``tests/test_kernels_batch.py``) and reused
by future vectorized operators.

Determinism contract
--------------------
Every kernel here produces **bit-for-bit the same match pairs in the same
order** as the reference sort-merge path that shipped with the seed
executor:

* match pairs are ordered by left row, and within one left row by the
  *original* position of the right row (guaranteed by the stable argsort in
  :func:`build_join_index` / :func:`match_counts`);
* the hash-factorized probe (:func:`probe_join_index`) is a direct-address
  lookup into exactly the arrays the sort-merge path computes, so its
  expansion is identical;
* the fused residual filter ANDs per-predicate equality masks — boolean
  masking preserves order and equality tests are independent, so fusing is
  indistinguishable from filtering predicate by predicate.

Because the executor's simulated charges depend only on match *counts*
(which are order-independent) and the pair ordering is preserved anyway,
swapping kernels in or out can never change a latency, a censoring decision
or a charge-event stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MatchCounts",
    "JoinIndex",
    "PairSet",
    "match_counts",
    "expand_matches",
    "expand_matches_fast",
    "expand_pairs",
    "build_join_index",
    "probe_join_index",
    "fused_equality_filter",
    "predicate_key",
]

#: Ceiling on the dense direct-address table of a :class:`JoinIndex`: the
#: key domain (max - min + 1) must fit under ``max(this, 4 * num_keys)`` or
#: the index stays sort-merge only.  Generated columns are small ints, so
#: real workloads essentially always qualify.
MAX_DIRECT_DOMAIN = 65536

_EMPTY = np.array([], dtype=np.int64)


@dataclass
class MatchCounts:
    """Per-left-row match ranges against the sorted right keys (pre-materialization).

    ``order`` is the stable argsort of the right keys, ``lo``/``counts`` the
    start offset and length of each left row's run inside the sorted keys.
    ``lo`` is only meaningful where ``counts > 0`` — zero-count rows may
    carry an arbitrary offset (the direct-address probe leaves 0 where the
    sort-merge path leaves an insertion point); :func:`expand_matches`
    never reads them.
    """

    order: np.ndarray
    lo: np.ndarray
    counts: np.ndarray
    total: int
    num_left: int


def match_counts(left_keys: np.ndarray, right_keys: np.ndarray) -> MatchCounts:
    """Sort-merge match: how many right rows match each left row (no materialization)."""
    if len(left_keys) == 0 or len(right_keys) == 0:
        return MatchCounts(order=_EMPTY, lo=_EMPTY,
                           counts=np.zeros(len(left_keys), dtype=np.int64),
                           total=0, num_left=len(left_keys))
    order = np.argsort(right_keys, kind="stable")
    sorted_keys = right_keys[order]
    lo = np.searchsorted(sorted_keys, left_keys, side="left")
    hi = np.searchsorted(sorted_keys, left_keys, side="right")
    counts = hi - lo
    return MatchCounts(order=order, lo=lo, counts=counts, total=int(counts.sum()),
                       num_left=len(left_keys))


def expand_matches(match: MatchCounts) -> tuple[np.ndarray, np.ndarray]:
    """Materialize the matching (left index, right index) pairs.

    The *reference* expansion — the implementation the seed executor
    shipped, kept verbatim as the equivalence baseline for
    :func:`expand_matches_fast` and the ``bench_exec_kernels`` gate.
    """
    if match.total == 0:
        return _EMPTY, _EMPTY
    left_idx = np.repeat(np.arange(match.num_left), match.counts)
    starts = np.repeat(match.lo, match.counts)
    offsets = np.arange(match.total) - np.repeat(
        np.cumsum(match.counts) - match.counts, match.counts
    )
    right_idx = match.order[starts + offsets]
    return left_idx, right_idx


def expand_matches_fast(match: MatchCounts) -> tuple[np.ndarray, np.ndarray]:
    """Pair expansion with fewer passes; output identical to :func:`expand_matches`.

    Two fast paths replace the reference's three ``np.repeat`` + two
    ``np.arange`` passes:

    * **unique-match** — when no probe row matches more than one build row
      (every FK -> PK join, the common case), the pairs are just the
      nonzero-count rows plus one gather: no repeats, no cumsum;
    * **run concatenation** — otherwise the sorted-side positions are the
      concatenation of the runs ``[lo_i, lo_i + counts_i)``, i.e. a single
      cumulative sum over unit steps with a per-run jump scattered at each
      run start.

    Both produce the exact reference ordering: pairs grouped by left row, and
    within one left row ordered by the build row's original position.
    """
    if match.total == 0:
        return _EMPTY, _EMPTY
    counts = match.counts
    if int(counts.max()) <= 1:
        if match.total == match.num_left:
            # Every probe row matched exactly once: no gather of lo needed.
            return np.arange(match.num_left), match.order[match.lo]
        left_idx = np.nonzero(counts)[0]
        return left_idx, match.order[match.lo[left_idx]]
    nonzero = np.nonzero(counts)[0]
    lo = match.lo[nonzero]
    run_counts = counts[nonzero]
    run_starts = np.cumsum(run_counts) - run_counts
    steps = np.ones(match.total, dtype=np.int64)
    steps[0] = lo[0]
    if len(nonzero) > 1:
        # Jump from the last position of run i-1 (lo[i-1] + counts[i-1] - 1)
        # to the first of run i (lo[i]).
        steps[run_starts[1:]] = lo[1:] - (lo[:-1] + run_counts[:-1]) + 1
    right_idx = match.order[np.cumsum(steps)]
    return np.repeat(nonzero, run_counts), right_idx


@dataclass
class PairSet:
    """The matched row pairs of one join, in reference order (left-major).

    The left side may stay *factorized* — represented as the matching left
    rows plus their per-row match counts instead of a materialized index
    array — so left-side gathers run as a sequential ``np.repeat`` over the
    gathered row values rather than a random fancy-index through an index
    array that itself cost a pass to build (late materialization).

    Exactly one representation is active per side:

    * ``left_idx is not None`` — materialized (the reference path, and the
      kernel path after residual filtering);
    * ``left_all`` — every left row matched exactly once, in order: the left
      index is the identity, gathers return the input array *unsliced*
      (safe: the executor never mutates position arrays);
    * otherwise ``left_rows`` (+ ``run_counts`` when rows match more than
      once) hold the factorized form.

    ``gather_left``/``gather_right`` produce bit-for-bit the arrays
    ``values[left_idx]``/``values[right_idx]`` of the reference expansion.
    """

    count: int
    left_idx: np.ndarray | None
    right_idx: np.ndarray
    left_rows: np.ndarray | None = None
    run_counts: np.ndarray | None = None
    left_all: bool = False

    def gather_left(self, values: np.ndarray) -> np.ndarray:
        if self.left_idx is not None:
            return values[self.left_idx]
        if self.left_all:
            return values
        if self.run_counts is None:
            return values[self.left_rows]
        return np.repeat(values[self.left_rows], self.run_counts)

    def gather_right(self, values: np.ndarray) -> np.ndarray:
        return values[self.right_idx]

    def left_indices(self) -> np.ndarray:
        """Materialize the left index array (identical to the reference's)."""
        if self.left_idx is not None:
            return self.left_idx
        if self.left_all:
            return np.arange(self.count)
        if self.run_counts is None:
            return self.left_rows
        return np.repeat(self.left_rows, self.run_counts)


def expand_pairs(match: MatchCounts) -> PairSet:
    """Factorized pair expansion: materialize the right side only.

    The right index is computed exactly as :func:`expand_matches_fast`; the
    left side stays factorized inside the returned :class:`PairSet` so
    downstream gathers skip the left index array entirely.
    """
    if match.total == 0:
        return PairSet(0, _EMPTY, _EMPTY)
    counts = match.counts
    if int(counts.max()) <= 1:
        if match.total == match.num_left:
            return PairSet(match.total, None, match.order[match.lo], left_all=True)
        left_rows = np.nonzero(counts)[0]
        return PairSet(match.total, None, match.order[match.lo[left_rows]], left_rows=left_rows)
    nonzero = np.nonzero(counts)[0]
    lo = match.lo[nonzero]
    run_counts = counts[nonzero]
    run_starts = np.cumsum(run_counts) - run_counts
    steps = np.ones(match.total, dtype=np.int64)
    steps[0] = lo[0]
    if len(nonzero) > 1:
        steps[run_starts[1:]] = lo[1:] - (lo[:-1] + run_counts[:-1]) + 1
    right_idx = match.order[np.cumsum(steps)]
    return PairSet(match.total, None, right_idx, left_rows=nonzero, run_counts=run_counts)


@dataclass
class JoinIndex:
    """A factorized build side: sort once, probe many times.

    Always carries the stable sort (``order`` + ``sorted_keys``); for
    integer keys over a small domain it additionally carries a dense
    direct-address table (``starts_table``/``counts_table`` indexed by
    ``key - key_min``) so probes are O(1) array lookups instead of
    O(log n) binary searches — the vectorized analogue of a hash join
    whose hash function is the identity.
    """

    order: np.ndarray
    sorted_keys: np.ndarray
    key_min: int = 0
    starts_table: np.ndarray | None = None
    counts_table: np.ndarray | None = None

    @property
    def num_keys(self) -> int:
        return len(self.sorted_keys)


def build_join_index(keys: np.ndarray) -> JoinIndex:
    """Factorize ``keys`` for repeated probing (stable — preserves pair order)."""
    if len(keys) == 0:
        return JoinIndex(order=_EMPTY, sorted_keys=_EMPTY)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    index = JoinIndex(order=order, sorted_keys=sorted_keys)
    if np.issubdtype(sorted_keys.dtype, np.integer):
        key_min = int(sorted_keys[0])
        domain = int(sorted_keys[-1]) - key_min + 1
        if domain <= max(MAX_DIRECT_DOMAIN, 4 * len(sorted_keys)):
            counts_table = np.bincount(sorted_keys - key_min, minlength=domain)
            starts_table = np.concatenate(
                ([0], np.cumsum(counts_table)[:-1])
            ).astype(np.int64)
            index.key_min = key_min
            index.starts_table = starts_table
            index.counts_table = counts_table.astype(np.int64)
    return index


def probe_join_index(index: JoinIndex, left_keys: np.ndarray) -> MatchCounts:
    """Match ``left_keys`` against a factorized build side.

    Returns exactly what ``match_counts(left_keys, build_keys)`` would for
    the keys the index was built from — same ``order``, same ``counts``,
    same expansion — while skipping the per-join argsort (and, with a
    direct-address table, the binary searches too).
    """
    if len(left_keys) == 0 or index.num_keys == 0:
        return MatchCounts(order=_EMPTY, lo=_EMPTY,
                           counts=np.zeros(len(left_keys), dtype=np.int64),
                           total=0, num_left=len(left_keys))
    if index.starts_table is not None and np.issubdtype(left_keys.dtype, np.integer):
        relative = left_keys - index.key_min
        valid = (relative >= 0) & (relative < len(index.counts_table))
        clipped = np.where(valid, relative, 0)
        counts = np.where(valid, index.counts_table[clipped], 0)
        lo = np.where(valid, index.starts_table[clipped], 0)
    else:
        lo = np.searchsorted(index.sorted_keys, left_keys, side="left")
        hi = np.searchsorted(index.sorted_keys, left_keys, side="right")
        counts = hi - lo
    return MatchCounts(order=index.order, lo=lo, counts=counts,
                       total=int(counts.sum()), num_left=len(left_keys))


def fused_equality_filter(
    pairs: list[tuple[np.ndarray, np.ndarray]],
) -> np.ndarray | None:
    """AND the equality masks of every (left values, right values) pair.

    One fused boolean reduction over the full matched set — equivalent to
    filtering predicate by predicate because equality tests are independent
    and boolean masking preserves order.  Returns ``None`` for no pairs.
    """
    keep: np.ndarray | None = None
    for left_values, right_values in pairs:
        mask = left_values == right_values
        keep = mask if keep is None else keep & mask
    return keep


def predicate_key(column: str, op: str, value) -> tuple:
    """A hashable cache key for one ``(column, op, value)`` filter predicate.

    Values are hashed directly when possible; containers and arrays fall
    back to a content repr (the same convention
    :func:`~repro.db.plan_cache.query_fingerprint` uses).  A key collision
    would only cost a wrong *cached bitmap*, so reprs are built from the
    full contents, never truncated.
    """
    if isinstance(value, np.ndarray):
        return (column, op, "nd", value.dtype.str, value.tobytes())
    if isinstance(value, (list, tuple, set, frozenset)):
        return (column, op, "seq", repr(sorted(map(repr, value))))
    try:
        hash(value)
    except TypeError:
        return (column, op, "repr", repr(value))
    return (column, op, value)
