"""Physical plan execution with simulated latency and timeout support.

The executor really runs each join tree against the in-memory relations —
filters are evaluated, hash matches are computed, intermediate results are
materialized — so the cardinalities that drive the reported latency are the
*true* ones for the chosen join order.  Latency itself is *simulated*: it is
the cost model of :mod:`repro.db.cost` evaluated on the observed input and
output sizes of every operator, expressed in simulated seconds.  This keeps
wall-clock cost tiny (the whole benchmark suite runs on a laptop) while
preserving the property the paper depends on: plan latency spans orders of
magnitude across join orders, and bad plans must be cut short by timeouts.

Timeouts are enforced *during* execution: before and after each operator the
accumulated simulated time is compared against the timeout, and execution
aborts with a right-censored result as soon as it is exceeded.

Execution is memoized through an optional :class:`~repro.db.plan_cache.ExecutionCache`:
an identical ``(query, plan)`` pair replays its recorded charge-event log
instead of re-executing (timeout-aware — see
:class:`~repro.db.plan_cache.OutcomeEntry`), and within a scratch execution
every join subtree already seen for the same query replays its recorded
charges and reuses its materialized intermediate.  Replay repeats the exact
float additions of the recording run in the exact order, so latencies,
censoring, node counts and cost breakdowns are bit-for-bit identical with the
cache on or off.

The hot path is built from the columnar kernels of :mod:`repro.db.kernels`
(``use_kernels=True``, the default): per-relation predicate-bitmap and
selection caches, factorized join indexes on scanned build sides, and a fused
residual filter that gathers each matched (alias, column) once per join.  The
pre-kernel reference implementations are kept verbatim (``use_kernels=False``)
— the kernels are charge-for-charge indistinguishable from them (see
:mod:`repro.db.kernels` for the argument), which the property tests and the
``bench_exec_kernels`` gate verify.

A batch of sibling plans for one query can be executed in one pass via
:meth:`Executor.run_batch` (see :class:`BatchExecutor`): shared join subtrees
— keyed by the same canonical subtree keys the subplan memo uses — execute
exactly once per batch, and every plan's result is reconstructed by replaying
its own charge-event stream, so per-plan timeouts, censoring and work-cap
aborts behave exactly as in sequential execution.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.db import kernels
from repro.db.catalog import Schema
from repro.db.cost import CostParams, DEFAULT_COST_PARAMS, index_scan_cost, join_cost, seq_scan_cost
from repro.db.plan_cache import (
    CAP_EVENT,
    NODE_EVENT,
    CacheStats,
    Event,
    ExecutionCache,
    ExecutionCacheConfig,
    plan_fingerprint,
    query_fingerprint,
)
from repro.db.query import Query
from repro.db.relation import Relation
from repro.exceptions import ExecutionError
from repro.plans.jointree import JoinTree
from repro.utils.seeding import stable_digest

#: Hard cap on the number of rows the executor will materialize for a single
#: intermediate result.  Plans that exceed it without a timeout are treated as
#: timed out at the accumulated simulated time (documented substitution for
#: "this plan would run for days").
MAX_MATERIALIZED_ROWS = 15_000_000


@dataclass
class ExecutionResult:
    """Outcome of executing one plan.

    ``latency`` is the simulated latency in seconds.  For timed-out executions
    it equals the timeout that was applied (the plan ran *at least* this long),
    i.e. a right-censored observation.
    """

    latency: float
    timed_out: bool
    output_rows: int | None = None
    nodes_executed: int = 0
    timeout: float | None = None
    breakdown: dict[str, float] = field(default_factory=dict)
    #: Cache observability for this execution (``None`` when caching is off).
    cache: CacheStats | None = None

    @property
    def censored(self) -> bool:
        """Alias for :attr:`timed_out` using the BO terminology."""
        return self.timed_out


@dataclass
class _Intermediate:
    """An intermediate result.

    ``positions`` maps each *retained* alias to the base-table row position of
    every intermediate row.  Aliases whose columns can no longer influence the
    rest of the plan (no pending join predicate references them) are pruned to
    keep memory proportional to the join columns still needed; ``covered``
    remembers every alias the intermediate logically contains.

    ``scan`` tags kernel-path base-table scans with ``(table, selection key)``
    so joins against them can reuse the relation's cached factorized join
    index instead of re-sorting the build side.
    """

    positions: dict[str, np.ndarray]
    covered: set[str]
    count: int
    scan: tuple | None = None

    @property
    def aliases(self) -> set[str]:
        return self.covered

    @property
    def num_rows(self) -> int:
        return self.count


class _Timeout(Exception):
    """Internal signal: simulated time exceeded the timeout."""


class Executor:
    """Executes join trees against a set of relations.

    Parameters
    ----------
    schema:
        Catalog (used for index lookups).
    relations:
        The stored data, one relation per table.
    cost_params:
        Operator cost constants shared with the default optimizer.
    noise_sigma:
        Standard deviation of multiplicative log-normal latency noise.  Noise
        is deterministic per plan (seeded from the plan's canonical string) so
        repeated executions of the same plan observe the same latency.
    seed:
        Base seed for the latency noise.
    cache:
        Optional :class:`~repro.db.plan_cache.ExecutionCache`.  When set,
        repeated ``(query, plan)`` executions replay their recorded charge
        log and overlapping plans of the same query reuse memoized subtree
        intermediates — results are bit-for-bit identical either way.
    use_kernels:
        Execute through the columnar kernels of :mod:`repro.db.kernels`
        (cached predicate bitmaps/selections, factorized join indexes, fused
        residual filters).  ``False`` selects the pre-kernel reference path;
        results are bit-for-bit identical either way.
    """

    def __init__(
        self,
        schema: Schema,
        relations: dict[str, Relation],
        cost_params: CostParams = DEFAULT_COST_PARAMS,
        noise_sigma: float = 0.0,
        seed: int = 0,
        cache: ExecutionCache | None = None,
        use_kernels: bool = True,
    ) -> None:
        self.schema = schema
        self.relations = relations
        self.cost_params = cost_params
        self.noise_sigma = noise_sigma
        self.seed = seed
        self.cache = cache
        self.use_kernels = use_kernels

    # ------------------------------------------------------------------ public API
    def execute(
        self, query: Query, plan: JoinTree, timeout: float | None = None
    ) -> ExecutionResult:
        """Execute ``plan`` for ``query``; abort with a censored result after ``timeout``."""
        plan.validate_for_query(query)
        if self.cache is None:
            return self._execute_scratch(query, plan, timeout, None, None, None)
        outcome_key = plan_fingerprint(query, plan)
        entry = self.cache.lookup_outcome(outcome_key, timeout)
        if entry is not None:
            return self._replay_outcome(plan, entry, timeout, self.cache)
        return self._execute_scratch(
            query, plan, timeout, query_fingerprint(query), outcome_key, self.cache
        )

    def run_batch(
        self,
        query: Query,
        plans: Sequence[JoinTree],
        timeouts: "Sequence[float | None] | float | None" = None,
    ) -> list[ExecutionResult]:
        """Execute a batch of sibling plans in one pass over shared subtrees.

        Results are bit-for-bit identical to calling :meth:`execute` once per
        plan, in order — including per-plan timeout censoring and work-cap
        aborts.  See :class:`BatchExecutor`.
        """
        return BatchExecutor(self).run(query, plans, timeouts)

    def _execute_scratch(
        self,
        query: Query,
        plan: JoinTree,
        timeout: float | None,
        query_key: tuple | None,
        outcome_key: tuple | None,
        cache: ExecutionCache | None,
    ) -> ExecutionResult:
        """Execute for real, recording the charge log when caching is on.

        ``cache`` is passed explicitly (rather than read from ``self``) so a
        batch execution can thread its own ephemeral per-batch cache through
        without mutating executor state shared across threads.
        """
        caching = cache is not None and query_key is not None
        state = _ExecutionState(timeout=timeout, events=[] if caching else None)
        subplan_hits_before = cache.counters.subplan_hits if caching else 0
        subplan_misses_before = cache.counters.subplan_misses if caching else 0
        try:
            intermediate = self._execute_node(query, plan, state, cache, query_key, is_root=True)
        except _Timeout:
            assert timeout is not None
            if caching:
                cache.store_outcome(
                    outcome_key, state.events, completed=False,
                    observed_to=timeout, output_rows=None,
                    work_capped=bool(state.events) and state.events[-1][0] == CAP_EVENT,
                )
            return ExecutionResult(
                latency=timeout,
                timed_out=True,
                output_rows=None,
                nodes_executed=state.nodes_executed,
                timeout=timeout,
                breakdown=dict(state.breakdown),
                cache=self._scratch_stats(
                    cache if caching else None, subplan_hits_before, subplan_misses_before
                ),
            )
        if caching:
            cache.store_outcome(
                outcome_key, state.events, completed=True,
                observed_to=None, output_rows=intermediate.num_rows,
            )
        stats = self._scratch_stats(
            cache if caching else None, subplan_hits_before, subplan_misses_before
        )
        latency = self._apply_noise(plan, state.simulated_time)
        if timeout is not None and latency > timeout:
            return ExecutionResult(
                latency=timeout,
                timed_out=True,
                output_rows=None,
                nodes_executed=state.nodes_executed,
                timeout=timeout,
                breakdown=dict(state.breakdown),
                cache=stats,
            )
        return ExecutionResult(
            latency=latency,
            timed_out=False,
            output_rows=intermediate.num_rows,
            nodes_executed=state.nodes_executed,
            timeout=timeout,
            breakdown=dict(state.breakdown),
            cache=stats,
        )

    def _scratch_stats(
        self, cache: ExecutionCache | None, hits_before: int, misses_before: int
    ) -> CacheStats | None:
        if cache is None:
            return None
        return CacheStats(
            outcome_hit=False,
            subplan_hits=cache.counters.subplan_hits - hits_before,
            subplan_misses=cache.counters.subplan_misses - misses_before,
            bytes_cached=cache.subplan_bytes,
        )

    def _replay_outcome(
        self, plan: JoinTree, entry, timeout: float | None, cache: ExecutionCache
    ) -> ExecutionResult:
        """Re-produce an execution from its recorded charge log.

        The replay feeds the log through a fresh :class:`_ExecutionState`
        under the *requested* timeout, so censoring happens at exactly the
        charge where a real run would have aborted, and the accumulated
        simulated time goes through the identical sequence of additions.
        """
        state = _ExecutionState(timeout=timeout)
        stats = CacheStats(outcome_hit=True, bytes_cached=cache.subplan_bytes)
        try:
            state.replay(entry.events)
        except _Timeout:
            assert timeout is not None
            return ExecutionResult(
                latency=timeout,
                timed_out=True,
                output_rows=None,
                nodes_executed=state.nodes_executed,
                timeout=timeout,
                breakdown=dict(state.breakdown),
                cache=stats,
            )
        # The log replayed to completion; OutcomeEntry.serves guarantees this
        # only happens for completed recordings.
        latency = self._apply_noise(plan, state.simulated_time)
        if timeout is not None and latency > timeout:
            return ExecutionResult(
                latency=timeout,
                timed_out=True,
                output_rows=None,
                nodes_executed=state.nodes_executed,
                timeout=timeout,
                breakdown=dict(state.breakdown),
                cache=stats,
            )
        return ExecutionResult(
            latency=latency,
            timed_out=False,
            output_rows=entry.output_rows,
            nodes_executed=state.nodes_executed,
            timeout=timeout,
            breakdown=dict(state.breakdown),
            cache=stats,
        )

    def true_latency(self, query: Query, plan: JoinTree) -> float:
        """Latency of ``plan`` with no timeout (raises if the plan exceeds the work cap)."""
        result = self.execute(query, plan, timeout=None)
        if result.timed_out:
            raise ExecutionError(
                f"plan for query {query.name!r} exceeded the executor work cap; "
                "execute it with a timeout instead"
            )
        return result.latency

    # ------------------------------------------------------------------ node execution
    def _execute_node(
        self,
        query: Query,
        node: JoinTree,
        state: "_ExecutionState",
        cache: ExecutionCache | None,
        query_key: tuple | None = None,
        is_root: bool = False,
    ) -> _Intermediate:
        if query_key is None or cache is None:
            if node.is_leaf:
                return self._execute_scan(query, node.alias, state)  # type: ignore[arg-type]
            left = self._execute_node(query, node.left, state, cache)  # type: ignore[arg-type]
            right = self._execute_node(query, node.right, state, cache)  # type: ignore[arg-type]
            return self._execute_join(query, node, left, right, state)
        # The plan root is deliberately not memoized: a root subtree can only
        # match the identical (query, plan) pair, and a *completed* root is
        # exactly what the outcome cache stores — a root entry would
        # duplicate that log and never be hit.
        if is_root:
            if node.is_leaf:
                return self._execute_scan(query, node.alias, state)  # type: ignore[arg-type]
            left = self._execute_node(query, node.left, state, cache, query_key)  # type: ignore[arg-type]
            right = self._execute_node(query, node.right, state, cache, query_key)  # type: ignore[arg-type]
            return self._execute_join(query, node, left, right, state)
        # Memoized path: a subtree already executed for this query replays its
        # recorded charges (identical floats, identical timeout behaviour) and
        # returns the cached intermediate without touching the relations.
        subplan_key = (query_key, node.canonical())
        entry = cache.get_subplan(subplan_key)
        if entry is not None:
            if entry.intermediate is not None:
                cache.count_subplan_hit()
                state.replay(entry.events)
                return entry.intermediate
            if state.would_timeout(entry.events):
                # Events-only entry (intermediate was over the byte cap), but
                # its recorded charges alone blow the timeout from here: the
                # replay censors before any array would have been needed.
                cache.count_subplan_hit()
                state.replay(entry.events)
                raise AssertionError("events-only replay must censor")  # pragma: no cover
            # The charges fit under this timeout, so the arrays are genuinely
            # needed: fall through and execute the subtree for real.
        cache.count_subplan_miss()
        start = state.mark()
        if node.is_leaf:
            intermediate = self._execute_scan(query, node.alias, state)  # type: ignore[arg-type]
        else:
            left = self._execute_node(query, node.left, state, cache, query_key)  # type: ignore[arg-type]
            right = self._execute_node(query, node.right, state, cache, query_key)  # type: ignore[arg-type]
            intermediate = self._execute_join(query, node, left, right, state)
        # Only fully executed subtrees are cached: a _Timeout propagating
        # through here skips the put (its completed children were already
        # cached bottom-up).
        cache.put_subplan(subplan_key, intermediate, state.events_since(start))
        return intermediate

    def _execute_scan(self, query: Query, alias: str, state: "_ExecutionState") -> _Intermediate:
        table = query.table_of(alias)
        relation = self.relations[table]
        filters = query.filters_for(alias)
        scan: tuple | None = None
        if self.use_kernels:
            positions, select_key = relation.select_cached(
                (flt.column, flt.op, flt.value) for flt in filters
            )
            scan = (table, select_key)
        else:
            positions = relation.select((flt.column, flt.op, flt.value) for flt in filters)
        indexed = any(self.schema.has_index(table, flt.column) for flt in filters)
        if indexed:
            cost = index_scan_cost(relation.num_rows, len(positions), self.cost_params)
        else:
            cost = seq_scan_cost(relation.num_rows, self.cost_params)
        state.charge("scan", cost)
        state.count_node()
        return _Intermediate({alias: positions}, covered={alias}, count=len(positions), scan=scan)

    def _execute_join(
        self,
        query: Query,
        node: JoinTree,
        left: _Intermediate,
        right: _Intermediate,
        state: "_ExecutionState",
    ) -> _Intermediate:
        predicates = query.predicates_between(left.aliases, right.aliases)
        n_left, n_right = left.num_rows, right.num_rows
        inner_indexed, inner_table_rows = self._inner_index_info(query, node, predicates)
        # Charge the input-dependent part of the cost before doing the work so
        # that catastrophic operators (cross joins, misplaced nested loops) hit
        # the timeout without being materialized.
        pre_cost = join_cost(
            node.op,  # type: ignore[arg-type]
            n_left,
            n_right,
            0.0,
            inner_indexed=inner_indexed,
            inner_table_rows=inner_table_rows,
            params=self.cost_params,
        )
        state.charge("join", pre_cost)
        if predicates:
            pairs = self._match(query, left, right, predicates, state)
        else:
            left_idx, right_idx = self._cross_join(n_left, n_right, state)
            pairs = kernels.PairSet(len(left_idx), left_idx, right_idx)
        state.count_node()
        covered = left.covered | right.covered
        needed = self._needed_aliases(query, covered)
        positions: dict[str, np.ndarray] = {}
        for alias, pos in left.positions.items():
            if alias in needed:
                positions[alias] = pairs.gather_left(pos)
        for alias, pos in right.positions.items():
            if alias in needed:
                positions[alias] = pairs.gather_right(pos)
        return _Intermediate(positions, covered=covered, count=pairs.count)

    def _needed_aliases(self, query: Query, covered: set[str]) -> set[str]:
        """Aliases inside ``covered`` still referenced by a join predicate to outside it."""
        needed: set[str] = set()
        for predicate in query.join_predicates:
            left_alias, right_alias = predicate.aliases()
            if left_alias in covered and right_alias not in covered:
                needed.add(left_alias)
            elif right_alias in covered and left_alias not in covered:
                needed.add(right_alias)
        return needed

    # ------------------------------------------------------------------ matching
    def _values_for(self, query: Query, side: _Intermediate, alias: str, column: str) -> np.ndarray:
        relation = self.relations[query.table_of(alias)]
        return relation.take(side.positions[alias], column)

    @staticmethod
    def _orient(predicate, left: _Intermediate) -> tuple[str, str, str, str]:
        """Orient one join predicate as (left alias, left column, right alias, right column)."""
        if predicate.left_alias in left.aliases:
            return (predicate.left_alias, predicate.left_column,
                    predicate.right_alias, predicate.right_column)
        return (predicate.right_alias, predicate.right_column,
                predicate.left_alias, predicate.left_column)

    def _match(
        self,
        query: Query,
        left: _Intermediate,
        right: _Intermediate,
        predicates: list,
        state: "_ExecutionState",
    ) -> "kernels.PairSet":
        if self.use_kernels:
            return self._match_kernel(query, left, right, predicates, state)
        left_idx, right_idx = self._match_reference(query, left, right, predicates, state)
        return kernels.PairSet(len(left_idx), left_idx, right_idx)

    def _match_kernel(
        self,
        query: Query,
        left: _Intermediate,
        right: _Intermediate,
        predicates: list,
        state: "_ExecutionState",
    ) -> "kernels.PairSet":
        """Kernel-backed equi-match: factorized probe + fused residual filter.

        Charge-for-charge identical to :meth:`_match_reference` (same match
        totals, same charge order — see the determinism contract in
        :mod:`repro.db.kernels`), but the build side of a scanned relation is
        sorted once per (filter set, column) instead of once per join, the
        residual predicates gather only matched positions, each (alias,
        column) at most once per join, and — absent residual predicates —
        the left side of the returned pair set stays factorized so position
        gathers run as sequential repeats (late materialization).
        """
        first, *rest = predicates
        left_alias, left_column, right_alias, right_column = self._orient(first, left)
        full_values: dict[tuple[int, str, str], np.ndarray] = {}
        left_keys = self._values_for(query, left, left_alias, left_column)
        full_values[(0, left_alias, left_column)] = left_keys
        index = self._scan_join_index(query, right, right_alias, right_column)
        if index is not None:
            match = kernels.probe_join_index(index, left_keys)
        else:
            right_keys = self._values_for(query, right, right_alias, right_column)
            full_values[(1, right_alias, right_column)] = right_keys
            match = kernels.match_counts(left_keys, right_keys)
        # Check the output size and charge its cost *before* materializing it,
        # so catastrophic joins hit the timeout without allocating huge arrays.
        self._check_materialization(match.total, state)
        state.charge("join", self.cost_params.output_row * match.total)
        pairs = kernels.expand_pairs(match)
        if not rest or pairs.count == 0:
            return pairs
        left_idx, right_idx = pairs.left_indices(), pairs.right_idx
        sides = (left, right)
        idxs = (left_idx, right_idx)
        rows_memo: dict[tuple[int, str], np.ndarray] = {}
        values_memo: dict[tuple[int, str, str], np.ndarray] = {}

        def matched_values(side_no: int, alias: str, column: str) -> np.ndarray:
            values_key = (side_no, alias, column)
            values = values_memo.get(values_key)
            if values is not None:
                return values
            full = full_values.get(values_key)
            if full is not None:
                # The match keys were already gathered in full — slice them.
                values = full[idxs[side_no]]
            else:
                rows_key = (side_no, alias)
                rows = rows_memo.get(rows_key)
                if rows is None:
                    rows = sides[side_no].positions[alias][idxs[side_no]]
                    rows_memo[rows_key] = rows
                relation = self.relations[query.table_of(alias)]
                values = relation.column(column)[rows]
            values_memo[values_key] = values
            return values

        value_pairs = []
        for predicate in rest:
            la, lc, ra, rc = self._orient(predicate, left)
            value_pairs.append((matched_values(0, la, lc), matched_values(1, ra, rc)))
        keep = kernels.fused_equality_filter(value_pairs)
        if keep is not None:
            left_idx, right_idx = left_idx[keep], right_idx[keep]
        return kernels.PairSet(len(left_idx), left_idx, right_idx)

    def _scan_join_index(
        self, query: Query, side: _Intermediate, alias: str, column: str
    ) -> "kernels.JoinIndex | None":
        """The cached factorized index for a base-table-scan side, if any."""
        if side.scan is None or len(side.covered) != 1:
            return None
        table, select_key = side.scan
        return self.relations[table].join_index(select_key, side.positions[alias], column)

    def _match_reference(
        self,
        query: Query,
        left: _Intermediate,
        right: _Intermediate,
        predicates: list,
        state: "_ExecutionState",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Equi-match the two sides on the first predicate, then filter the rest.

        The pre-kernel implementation, kept verbatim as the equivalence
        reference for the kernel path and the benchmark baseline.
        """
        first, *rest = predicates
        if first.left_alias in left.aliases:
            left_alias, left_column = first.left_alias, first.left_column
            right_alias, right_column = first.right_alias, first.right_column
        else:
            left_alias, left_column = first.right_alias, first.right_column
            right_alias, right_column = first.left_alias, first.left_column
        left_keys = self._values_for(query, left, left_alias, left_column)
        right_keys = self._values_for(query, right, right_alias, right_column)
        match = kernels.match_counts(left_keys, right_keys)
        # Check the output size and charge its cost *before* materializing it,
        # so catastrophic joins hit the timeout without allocating huge arrays.
        self._check_materialization(match.total, state)
        state.charge("join", self.cost_params.output_row * match.total)
        left_idx, right_idx = kernels.expand_matches(match)
        for predicate in rest:
            if predicate.left_alias in left.aliases:
                la, lc, ra, rc = (
                    predicate.left_alias,
                    predicate.left_column,
                    predicate.right_alias,
                    predicate.right_column,
                )
            else:
                la, lc, ra, rc = (
                    predicate.right_alias,
                    predicate.right_column,
                    predicate.left_alias,
                    predicate.left_column,
                )
            lv = self._values_for(query, left, la, lc)[left_idx]
            rv = self._values_for(query, right, ra, rc)[right_idx]
            keep = lv == rv
            left_idx, right_idx = left_idx[keep], right_idx[keep]
        return left_idx, right_idx

    def _cross_join(
        self, n_left: int, n_right: int, state: "_ExecutionState"
    ) -> tuple[np.ndarray, np.ndarray]:
        output = n_left * n_right
        self._check_materialization(output, state)
        state.charge("join", self.cost_params.output_row * output)
        left_idx = np.repeat(np.arange(n_left), n_right)
        right_idx = np.tile(np.arange(n_right), n_left)
        return left_idx, right_idx

    def _check_materialization(self, rows: int, state: "_ExecutionState") -> None:
        if rows <= MAX_MATERIALIZED_ROWS:
            return
        # Charge the output cost analytically; this will normally blow past the
        # timeout.  Without a timeout we still refuse to materialize.
        state.charge("join", self.cost_params.output_row * rows)
        state.work_cap(rows)

    def _inner_index_info(self, query: Query, node: JoinTree, predicates: list) -> tuple[bool, float]:
        right = node.right
        if right is None or not right.is_leaf or not predicates:
            return False, 0.0
        alias = right.alias
        table = query.table_of(alias)  # type: ignore[arg-type]
        table_rows = float(self.relations[table].num_rows)
        for predicate in predicates:
            column = None
            if predicate.left_alias == alias:
                column = predicate.left_column
            elif predicate.right_alias == alias:
                column = predicate.right_column
            if column is not None and self.schema.has_index(table, column):
                return True, table_rows
        return False, table_rows

    # ------------------------------------------------------------------ noise
    def _apply_noise(self, plan: JoinTree, latency: float) -> float:
        if self.noise_sigma <= 0.0:
            return latency
        digest = stable_digest(self.seed, plan.canonical(), bits=32)
        rng = np.random.default_rng(digest)
        return float(latency * math.exp(rng.normal(0.0, self.noise_sigma)))


class BatchExecutor:
    """One-pass execution of sibling plans for a single query.

    The batch path reuses the machinery PR 5 proved bit-for-bit safe: an
    **ephemeral per-batch** :class:`~repro.db.plan_cache.ExecutionCache`
    deduplicates shared join subtrees across the batch (canonical subtree
    keys), executes each distinct subtree exactly once, and reconstructs
    every plan's result by replaying its own charge-event stream.  Replay
    runs under each plan's *own* timeout, so censoring and work-cap aborts
    trigger per plan even when the shared subtree completed for a sibling
    (a censored sibling's partially-executed subtrees are simply not cached
    — only completed segments replay).  Duplicate plans inside one batch
    dedup through the ephemeral outcome cache under the same
    timeout-serving rules as the persistent one.

    When the executor already has a persistent cache, that cache *is* the
    dedup structure (and additionally persists across batches), so the batch
    reduces to sequential execution against it.

    The per-result :class:`~repro.db.plan_cache.CacheStats` report the
    shared-subtree savings (``subplan_hits`` against the batch cache) and
    are flagged ``batched=True``.
    """

    def __init__(self, executor: Executor) -> None:
        self.executor = executor

    def run(
        self,
        query: Query,
        plans: Sequence[JoinTree],
        timeouts: "Sequence[float | None] | float | None" = None,
    ) -> list[ExecutionResult]:
        plans = list(plans)
        if timeouts is None or isinstance(timeouts, (int, float)):
            timeouts = [timeouts] * len(plans)
        else:
            timeouts = list(timeouts)
            if len(timeouts) != len(plans):
                raise ExecutionError(
                    f"run_batch got {len(plans)} plans but {len(timeouts)} timeouts"
                )
        executor = self.executor
        if executor.cache is not None:
            results = [
                executor.execute(query, plan, timeout)
                for plan, timeout in zip(plans, timeouts)
            ]
            return [self._mark_batched(result) for result in results]
        batch_cache = ExecutionCache(ExecutionCacheConfig())
        query_key = query_fingerprint(query)
        results = []
        for plan, timeout in zip(plans, timeouts):
            plan.validate_for_query(query)
            outcome_key = plan_fingerprint(query, plan)
            entry = batch_cache.lookup_outcome(outcome_key, timeout)
            if entry is not None:
                result = executor._replay_outcome(plan, entry, timeout, batch_cache)
            else:
                result = executor._execute_scratch(
                    query, plan, timeout, query_key, outcome_key, batch_cache
                )
            results.append(self._mark_batched(result))
        return results

    @staticmethod
    def _mark_batched(result: ExecutionResult) -> ExecutionResult:
        if result.cache is not None:
            result.cache = dataclasses.replace(result.cache, batched=True)
        return result


@dataclass
class _ExecutionState:
    timeout: float | None
    simulated_time: float = 0.0
    nodes_executed: int = 0
    breakdown: dict[str, float] = field(default_factory=dict)
    #: Charge-event log (recording is on when the executor has a cache).
    #: The event is appended *before* the timeout check so a censored log
    #: ends with the violating charge and replays to the same abort point.
    events: list[Event] | None = None

    def charge(self, category: str, cost: float) -> None:
        if self.events is not None:
            self.events.append((category, cost))
        self.simulated_time += cost
        self.breakdown[category] = self.breakdown.get(category, 0.0) + cost
        if self.timeout is not None and self.simulated_time > self.timeout:
            raise _Timeout

    def count_node(self) -> None:
        if self.events is not None:
            self.events.append((NODE_EVENT, 0.0))
        self.nodes_executed += 1

    def work_cap(self, rows: float) -> None:
        """Abort: an intermediate exceeded the materialization work cap.

        Unlike a timeout, the cap fires regardless of accumulated simulated
        time, so it must leave its own event in the log for replay to abort
        at the same point.
        """
        if self.events is not None:
            self.events.append((CAP_EVENT, float(rows)))
        if self.timeout is not None:
            raise _Timeout
        raise ExecutionError(
            f"intermediate result of {int(rows)} rows exceeds the executor work cap; "
            "execute this plan with a timeout"
        )

    def mark(self) -> int:
        """Current position in the event log (start of a subtree segment)."""
        return len(self.events) if self.events is not None else 0

    def events_since(self, start: int) -> list[Event]:
        return self.events[start:] if self.events is not None else []

    def replay(self, events: list[Event]) -> None:
        """Re-apply a recorded event segment through this state.

        Replayed events are themselves re-recorded (when recording is on), so
        a parent subtree's segment — and the whole plan's outcome log —
        contains its memoized children's charges too.
        """
        for category, cost in events:
            if category == NODE_EVENT:
                self.count_node()
            elif category == CAP_EVENT:
                self.work_cap(cost)
            else:
                self.charge(category, cost)

    def would_timeout(self, events: list[Event]) -> bool:
        """Whether replaying ``events`` from here would abort this execution.

        A dry run of :meth:`replay`'s accumulation — the same float additions
        in the same order against a local accumulator — with no side effects,
        so the caller can decide whether an events-only cache entry suffices.
        """
        if self.timeout is None:
            return False
        simulated = self.simulated_time
        for category, cost in events:
            if category == NODE_EVENT:
                continue
            if category == CAP_EVENT:
                return True
            simulated += cost
            if simulated > self.timeout:
                return True
        return False


# Re-exported kernel entry points: the matching math moved to
# :mod:`repro.db.kernels`; these aliases keep existing imports working.
_MatchCounts = kernels.MatchCounts
_match_counts = kernels.match_counts
_expand_matches = kernels.expand_matches


def _hash_match(left_keys: np.ndarray, right_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return index arrays (into left, into right) of every equal-key pair."""
    return kernels.expand_matches(kernels.match_counts(left_keys, right_keys))
