"""Worker supervision: hang watchdogs, retry with backoff, pool recovery.

A three-hour offline tuning session must not discard its run because one
worker crashed or one execution hung.  :class:`SupervisedBackend` wraps any
:class:`~repro.exec.backend.ExecutionBackend` with the recovery policy the
rest of the stack assumes:

* **Hang watchdog** — every request gets a wall-clock deadline
  (``request_deadline``); a request that has not completed by then is treated
  as an infrastructure failure (:class:`HangTimeout`) and retried.  A late
  result from the abandoned attempt is discarded, never double-observed.
* **Retry with exponential backoff + jitter** — infrastructure failures
  (:class:`~concurrent.futures.BrokenExecutor`, worker death;
  :class:`~repro.exec.backend.TransientBackendError`, network blips; hangs)
  are retried up to ``max_retries`` times, with delay
  ``min(backoff_max, backoff_base * 2**attempt)`` plus a deterministic jitter
  derived from :func:`~repro.utils.seeding.stable_digest` of the request —
  reproducible, yet decorrelated across requests.  Genuine execution errors
  (the plan itself failing) are **never** retried: they propagate untouched.
* **Pool rebuild** — when the wrapped backend reports itself unhealthy after
  a :class:`BrokenExecutor` (e.g. ``BrokenProcessPool``) and offers a
  ``rebuild()`` method (:class:`~repro.exec.process_pool.ProcessPoolBackend`
  does), the supervisor rebuilds it up to ``max_rebuilds`` times before
  giving up on it.
* **Graceful degradation** — with all pooled capacity lost (unhealthy, no
  rebuilds left), the supervisor routes every subsequent attempt to the
  ``fallback`` backend (typically an
  :class:`~repro.exec.backend.InlineBackend` on the scheduler thread): the
  session finishes slower instead of dying.

Budget semantics: the scheduler charges budget per *completed outcome*, and a
supervised request yields exactly one outcome no matter how many attempts it
took — retries cost wall-clock, never optimization budget.  The delivered
:class:`~repro.core.protocol.ExecutionOutcome` carries the attempt count in
its ``attempts`` field for observability.
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import BrokenExecutor, Future, InvalidStateError
from dataclasses import dataclass

from repro.core.protocol import ExecutionOutcome
from repro.exceptions import OptimizationError
from repro.exec.backend import (
    ExecutionBackend,
    ExecutionRequest,
    TransientBackendError,
    is_infra_failure,
)
from repro.utils.seeding import stable_digest


class HangTimeout(TransientBackendError):
    """A request exceeded its supervision deadline (treated as infrastructure)."""


@dataclass
class SupervisorCounters:
    """What one :class:`SupervisedBackend` had to do to keep requests alive."""

    submissions: int = 0
    attempts: int = 0
    retries: int = 0
    hangs: int = 0
    crashes: int = 0
    transients: int = 0
    rebuilds: int = 0
    fallback_attempts: int = 0
    give_ups: int = 0

    def snapshot(self) -> dict:
        return {
            "submissions": self.submissions,
            "attempts": self.attempts,
            "retries": self.retries,
            "hangs": self.hangs,
            "crashes": self.crashes,
            "transients": self.transients,
            "rebuilds": self.rebuilds,
            "fallback_attempts": self.fallback_attempts,
            "give_ups": self.give_ups,
        }


class SupervisedBackend:
    """Add hang watchdogs, bounded retry and degradation to any backend.

    Parameters
    ----------
    inner:
        The supervised backend.
    request_deadline:
        Wall-clock seconds one attempt may run before it is declared hung and
        retried.  ``None`` disables the watchdog (crashes/transients are
        still retried).
    max_retries:
        Retries per request beyond the first attempt.  ``0`` still classifies
        failures and rebuilds pools, but never re-submits.
    backoff_base / backoff_max / backoff_jitter:
        Exponential backoff: attempt ``k`` waits
        ``min(backoff_max, backoff_base * 2**k) * (1 + backoff_jitter * u)``
        where ``u`` is a stable per-request uniform deviate.
    max_rebuilds:
        How many times an unhealthy inner backend offering ``rebuild()`` is
        rebuilt before the supervisor degrades to the fallback.
    fallback:
        Backend used once the inner backend is considered lost; ``None``
        keeps submitting to the inner backend (its errors then propagate
        after ``max_retries``).
    """

    name = "supervised"

    def __init__(
        self,
        inner: ExecutionBackend,
        *,
        request_deadline: float | None = None,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        backoff_jitter: float = 0.25,
        max_rebuilds: int = 2,
        fallback: ExecutionBackend | None = None,
    ) -> None:
        if request_deadline is not None and request_deadline <= 0:
            raise OptimizationError("request_deadline must be positive")
        if max_retries < 0:
            raise OptimizationError("max_retries must be non-negative")
        if backoff_base <= 0:
            raise OptimizationError("backoff_base must be positive")
        if backoff_max < backoff_base:
            raise OptimizationError("backoff_max must be at least backoff_base")
        if backoff_jitter < 0:
            raise OptimizationError("backoff_jitter must be non-negative")
        if max_rebuilds < 0:
            raise OptimizationError("max_rebuilds must be non-negative")
        self.inner = inner
        self.fallback = fallback
        self.request_deadline = request_deadline
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.backoff_jitter = backoff_jitter
        self.max_rebuilds = max_rebuilds
        self.counters = SupervisorCounters()
        # RLock: inline backends complete futures synchronously inside
        # submit(), so completion callbacks can re-enter while _attempt holds
        # the lock.
        self._lock = threading.RLock()
        self._timers: set[threading.Timer] = set()
        self._rebuilds_done = 0
        self._degraded = False
        self._closed = False

    # ------------------------------------------------------------------ backend protocol
    def capacity(self) -> int:
        return self._current_backend().capacity()

    def healthy(self) -> bool:
        if self._closed:
            return False
        return self.inner.healthy() or self.fallback is not None

    def submit(self, request: ExecutionRequest) -> "Future[ExecutionOutcome]":
        if self._closed:
            raise OptimizationError("backend is closed")
        outer: Future[ExecutionOutcome] = Future()
        self.counters.submissions += 1
        self._attempt(request, outer, attempt=0)
        return outer

    def close(self) -> None:
        with self._lock:
            self._closed = True
            timers = list(self._timers)
            self._timers.clear()
        for timer in timers:
            timer.cancel()
        self.inner.close()
        if self.fallback is not None:
            self.fallback.close()

    # ------------------------------------------------------------------ observability
    @property
    def degraded(self) -> bool:
        """Whether the supervisor has abandoned the inner backend."""
        return self._degraded

    def report(self) -> dict:
        """Counters plus degradation state, for session health reports."""
        report = self.counters.snapshot()
        report["degraded"] = self._degraded
        report["pool_rebuilds_done"] = self._rebuilds_done
        return report

    # ------------------------------------------------------------------ supervision
    def _current_backend(self) -> ExecutionBackend:
        if self._degraded and self.fallback is not None:
            return self.fallback
        return self.inner

    def _attempt(self, request: ExecutionRequest, outer: Future, attempt: int) -> None:
        if outer.cancelled():
            return
        with self._lock:
            if self._closed:
                _resolve(outer, exc=OptimizationError("supervisor closed with request in flight"))
                return
            backend = self._current_backend()
            self.counters.attempts += 1
            if backend is self.fallback:
                self.counters.fallback_attempts += 1
        try:
            inner_future = backend.submit(request)
        except Exception as exc:  # noqa: BLE001 - classified below
            self._on_failure(request, outer, attempt, exc)
            return

        # One of {completion callback, watchdog} settles the attempt; the
        # loser finds `settled` set and discards its event (a late result
        # from a hung attempt must never be observed twice).
        settled = [False]
        timer: threading.Timer | None = None

        def on_done(done: Future) -> None:
            with self._lock:
                if settled[0]:
                    return
                settled[0] = True
                if timer is not None:
                    timer.cancel()
                    self._timers.discard(timer)
            exc = done.exception()
            if exc is None:
                outcome = done.result()
                if isinstance(outcome, ExecutionOutcome):
                    outcome = dataclasses.replace(outcome, attempts=attempt + 1)
                _resolve(outer, result=outcome)
            else:
                self._on_failure(request, outer, attempt, exc)

        if self.request_deadline is not None:

            def on_deadline() -> None:
                with self._lock:
                    if settled[0]:
                        return
                    settled[0] = True
                    if timer is not None:
                        self._timers.discard(timer)
                self.counters.hangs += 1
                inner_future.cancel()
                self._on_failure(
                    request,
                    outer,
                    attempt,
                    HangTimeout(
                        f"execution of query {request.query.name!r} exceeded the "
                        f"{self.request_deadline}s supervision deadline "
                        f"(attempt {attempt + 1})"
                    ),
                    counted=True,
                )

            timer = threading.Timer(self.request_deadline, on_deadline)
            timer.daemon = True
            with self._lock:
                if not self._closed:
                    self._timers.add(timer)
                    timer.start()
        inner_future.add_done_callback(on_done)

    def _on_failure(
        self,
        request: ExecutionRequest,
        outer: Future,
        attempt: int,
        exc: BaseException,
        counted: bool = False,
    ) -> None:
        if not is_infra_failure(exc):
            # The plan itself failed: propagate untouched, never retry.
            _resolve(outer, exc=exc)
            return
        if not counted:
            if isinstance(exc, BrokenExecutor):
                self.counters.crashes += 1
            else:
                self.counters.transients += 1
        self._maybe_recover(exc)
        if attempt >= self.max_retries:
            self.counters.give_ups += 1
            _resolve(outer, exc=exc)
            return
        self.counters.retries += 1
        delay = self._backoff_delay(request, attempt)
        retry = threading.Timer(delay, self._attempt, args=(request, outer, attempt + 1))
        retry.daemon = True
        with self._lock:
            if self._closed:
                _resolve(outer, exc=exc)
                return
            self._timers.add(retry)
        retry.start()

    def _maybe_recover(self, exc: BaseException) -> None:
        """After a worker death: rebuild the pool, or degrade to the fallback."""
        if not isinstance(exc, BrokenExecutor):
            return
        with self._lock:
            if self._degraded or self.inner.healthy():
                # Injected crashes (or a router with surviving members) leave
                # the backend healthy — nothing to recover.
                return
            rebuild = getattr(self.inner, "rebuild", None)
            if callable(rebuild) and self._rebuilds_done < self.max_rebuilds:
                self._rebuilds_done += 1
                self.counters.rebuilds += 1
            else:
                rebuild = None
                if self.fallback is not None:
                    self._degraded = True
        if rebuild is not None:
            rebuild()

    def _backoff_delay(self, request: ExecutionRequest, attempt: int) -> float:
        base = min(self.backoff_max, self.backoff_base * (2.0 ** attempt))
        deviate = stable_digest(
            "backoff", request.query.name, request.plan.canonical(), attempt, bits=32
        ) / float(1 << 32)
        return base * (1.0 + self.backoff_jitter * deviate)


def _resolve(outer: Future, result=None, exc=None) -> None:
    """Complete the outer future, tolerating a scheduler-side cancel."""
    try:
        if exc is not None:
            outer.set_exception(exc)
        else:
            outer.set_result(result)
    except InvalidStateError:  # pragma: no cover - cancelled mid-flight
        pass
