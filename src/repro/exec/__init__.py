"""The execution service: pluggable backends + cross-query scheduling policies.

The paper's offline tuner is throughput-bound on plan *executions*: every
technique's budget is time spent executing proposed plans, so how fast and
how concurrently those executions run determines wall-clock end to end.  This
subsystem separates **where executions run** from **which query runs next**,
behind two small contracts the :class:`~repro.harness.runner.WorkloadSession`
scheduler drives:

**Backends** (:class:`ExecutionBackend`) — turn an :class:`ExecutionRequest`
(query + plan + timeout) into a future :class:`ExecutionOutcome`:

* :class:`InlineBackend` — on the scheduler thread; sequential runs are
  bit-for-bit the pre-subsystem behaviour.
* :class:`ThreadPoolBackend` — a thread pool; overlaps *waiting* (DBMS
  round-trips), the PR 2 interleaved mode.
* :class:`ProcessPoolBackend` — worker processes, each holding a warm
  :class:`~repro.db.engine.Database` replica; scales *CPU-bound* simulated
  executions past the GIL.  Determinism rests on the sha256-based stable
  seeding of every latency/RNG digest (:mod:`repro.utils.seeding`).
* :class:`MultiBackendRouter` — fans executions over several independent
  backends with per-member occupancy and health tracking; infrastructure
  failures are retried on the surviving members.
* :class:`FabricBackend` — lease-based dispatch over shared-nothing node
  *processes* speaking the socket protocol of :mod:`repro.exec.remote`:
  heartbeat liveness, deterministic lease reassignment on node loss,
  probation/half-open rejoin, cross-node outcome-cache replication and
  graceful degradation to inline execution.

**Policies** (:class:`SchedulingPolicy`) — pick which ready query state gets
the next free slot:

* :class:`RoundRobin` — FIFO; reproduces the PR 2 schedule exactly.
* :class:`BudgetAwarePriority` — spends remaining budget on the queries whose
  surrogate posterior predicts the largest expected improvement (techniques
  advertising ``predicts_improvement`` in the registry), falling back to
  worst-incumbent-first for model-free techniques.

Policies reorder work *across* queries only; each query's own plan sequence
is unchanged, so final traces are identical under every backend/policy pair —
verified by the determinism tests (``tests/test_exec.py``) and the
``benchmarks/bench_exec_backends.py`` gate.

Configuration: either hand a ``WorkloadSession`` backend/policy instances, or
describe them with :class:`~repro.core.config.ExecutionServiceConfig` —
``backend`` ("inline" / "thread" / "process" / "fabric"), ``max_workers``, ``policy``
("round_robin" / "budget_aware"), ``replicas`` (> 1 puts a router in front),
``start_method`` and ``warmup`` — and let :func:`make_backend` /
:func:`make_policy` build them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import ExecutionServiceConfig
from repro.core.protocol import ExecutionOutcome
from repro.db.plan_cache import CacheStats, ExecutionCache, ExecutionCacheConfig
from repro.db.query import Query
from repro.exceptions import OptimizationError
from repro.exec.backend import (
    ExecutionBackend,
    ExecutionRequest,
    InlineBackend,
    ThreadPoolBackend,
    TransientBackendError,
    is_infra_failure,
    perform_batch,
    perform_request,
    submit_request_batch,
)
from repro.exec.fabric import FabricBackend, FabricCounters, start_local_fabric
from repro.exec.faults import (
    FaultCounters,
    FaultInjectionBackend,
    FaultInjectionConfig,
    InjectedTransientError,
    InjectedWorkerCrash,
    NetworkFaultConfig,
    NetworkFaultCounters,
)
from repro.exec.policy import BudgetAwarePriority, RoundRobin, SchedulingPolicy
from repro.exec.process_pool import ProcessPoolBackend, RemoteExecutionError
from repro.exec.remote import NodeLostError, RemoteNodeBackend
from repro.exec.router import BackendStatus, BackendUnavailableError, MultiBackendRouter
from repro.exec.supervisor import HangTimeout, SupervisedBackend, SupervisorCounters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.engine import Database

__all__ = [
    "BackendStatus",
    "BackendUnavailableError",
    "BudgetAwarePriority",
    "CacheStats",
    "ExecutionBackend",
    "ExecutionCache",
    "ExecutionCacheConfig",
    "ExecutionOutcome",
    "ExecutionRequest",
    "ExecutionServiceConfig",
    "FabricBackend",
    "FabricCounters",
    "FaultCounters",
    "FaultInjectionBackend",
    "FaultInjectionConfig",
    "HangTimeout",
    "InjectedTransientError",
    "InjectedWorkerCrash",
    "InlineBackend",
    "MultiBackendRouter",
    "NetworkFaultConfig",
    "NetworkFaultCounters",
    "NodeLostError",
    "ProcessPoolBackend",
    "RemoteExecutionError",
    "RemoteNodeBackend",
    "RoundRobin",
    "SchedulingPolicy",
    "SupervisedBackend",
    "SupervisorCounters",
    "ThreadPoolBackend",
    "TransientBackendError",
    "apply_cache_overrides",
    "backend_health",
    "is_infra_failure",
    "make_backend",
    "make_policy",
    "perform_batch",
    "perform_request",
    "start_local_fabric",
    "submit_request_batch",
]


def backend_health(backend: "ExecutionBackend | None") -> dict:
    """Health snapshot of a backend stack's wrapper layers.

    Walks supervisor -> fault harness -> router/pool by the ``inner``
    convention, so any holder of a composed backend (the scheduler's
    :class:`~repro.harness.runner.WorkloadSession`, the serving layer's
    :class:`~repro.serve.server.PlanServer`) reports degradation — retries
    burned, replicas on probation, injected faults — the same way.
    """
    report: dict = {}
    layer = backend
    seen: set[int] = set()
    while layer is not None and id(layer) not in seen:
        seen.add(id(layer))
        if isinstance(layer, SupervisedBackend):
            report["supervisor"] = layer.report()
        elif isinstance(layer, FaultInjectionBackend):
            report["faults"] = layer.counters.snapshot()
        elif isinstance(layer, MultiBackendRouter):
            report["router"] = [status.snapshot() for status in layer.statuses()]
        elif isinstance(layer, FabricBackend):
            # Per-node liveness, lease reassignments, reconnect/backoff
            # counters and shipped-log cache hits — one section, shared by
            # WorkloadSession.health_report() and PlanServer health.
            report["fabric"] = layer.health_snapshot()
        layer = getattr(layer, "inner", None)
    return report


def apply_cache_overrides(config: ExecutionServiceConfig, database: "Database") -> "Database":
    """The database the service config's cache knobs describe.

    Returns ``database`` untouched when both knobs are ``None`` (the
    defaults — the database's own ``exec_cache`` choice stands) or when the
    database does not expose the cache API (duck-typed wrappers).  With an
    explicit override, a snapshot sharing the same relations carries the
    merged config, so the caller's database is never silently reconfigured
    and its warm cache state is never dropped.
    """
    if config.plan_cache is None and config.plan_cache_bytes is None:
        return database
    if not hasattr(database, "with_execution_cache"):
        return database
    current = database.exec_cache_config
    return database.with_execution_cache(
        ExecutionCacheConfig(
            enabled=config.plan_cache if config.plan_cache is not None else current.enabled,
            max_bytes=(
                config.plan_cache_bytes
                if config.plan_cache_bytes is not None
                else current.max_bytes
            ),
            max_entry_bytes=current.max_entry_bytes,
        )
    )


def make_backend(
    config: ExecutionServiceConfig,
    database: "Database",
    queries: "list[Query] | None" = None,
    tracer=None,
) -> ExecutionBackend:
    """Build the backend an :class:`ExecutionServiceConfig` describes.

    With ``replicas > 1`` every replica is an independent backend instance
    (process backends get their own worker pools) behind one
    :class:`MultiBackendRouter`.

    The config's execution-memoization knobs (``plan_cache`` /
    ``plan_cache_bytes``) are applied through
    :func:`apply_cache_overrides` first, so they govern inline/thread
    execution directly and ride the pickled constructor inputs into every
    process-pool worker replica (each worker rebuilds a fresh, private
    cache).  Knobs left at ``None`` keep whatever ``exec_cache``
    configuration the database was built with, and overrides never mutate
    the caller's database — a snapshot sharing the same relations carries
    them instead.
    """
    database = apply_cache_overrides(config, database)
    tracing = tracer is not None and getattr(tracer, "enabled", False)

    def one_backend() -> ExecutionBackend:
        if config.backend == "inline":
            return InlineBackend(database, tracer=tracer if tracing else None)
        if config.backend == "thread":
            return ThreadPoolBackend(
                database,
                max_workers=config.max_workers,
                tracer=tracer if tracing else None,
            )
        if config.backend == "process":
            # Workers record into private tracers and ship drained spans back
            # on outcomes; the parent-side tracer object itself never crosses.
            return ProcessPoolBackend(
                database,
                max_workers=config.max_workers,
                queries=queries,
                start_method=config.start_method,
                warmup=config.warmup,
                trace=tracing,
            )
        if config.backend == "fabric":
            # Localhost node processes behind the fabric coordinator; node
            # tracers ship spans back on outcomes like the process pool.
            network_faults = config.fabric_network_faults
            if network_faults is not None and not isinstance(network_faults, NetworkFaultConfig):
                network_faults = NetworkFaultConfig(**dict(network_faults))  # type: ignore[arg-type]
            return start_local_fabric(
                database,
                queries=queries,
                num_nodes=config.fabric_nodes,
                warmup=config.warmup,
                trace=tracing,
                heartbeat_interval=config.fabric_heartbeat_interval,
                heartbeat_timeout=config.fabric_heartbeat_timeout,
                start_method=config.start_method,
                max_failures=config.max_failures,
                network_faults=network_faults,
            )
        raise OptimizationError(f"unknown execution backend {config.backend!r}")

    if config.replicas == 1:
        backend = one_backend()
    else:
        backend = MultiBackendRouter(
            [one_backend() for _ in range(config.replicas)],
            max_failures=config.max_failures,
            probation_seconds=config.probation_seconds,
        )

    # Fault injection sits *inside* supervision so injected faults exercise
    # the real recovery paths (watchdog, retry, rebuild, degradation).
    if config.fault_injection is not None:
        fault_config = config.fault_injection
        if not isinstance(fault_config, FaultInjectionConfig):
            fault_config = FaultInjectionConfig(**dict(fault_config))  # type: ignore[arg-type]
        backend = FaultInjectionBackend(backend, fault_config)

    if config.supervised or config.request_deadline is not None:
        # The fallback gives the session somewhere to run when all pooled
        # capacity is lost; pointless when the primary already *is* inline.
        fallback: ExecutionBackend | None = None
        if not (config.backend == "inline" and config.replicas == 1):
            fallback = InlineBackend(database)
        backend = SupervisedBackend(
            backend,
            request_deadline=config.request_deadline,
            max_retries=config.max_retries,
            backoff_base=config.backoff_base,
            backoff_max=config.backoff_max,
            backoff_jitter=config.backoff_jitter,
            max_rebuilds=config.pool_rebuilds,
            fallback=fallback,
        )
    return backend


def make_policy(name: str) -> SchedulingPolicy:
    """Build the scheduling policy ``name`` refers to."""
    if name == "round_robin":
        return RoundRobin()
    if name == "budget_aware":
        return BudgetAwarePriority()
    raise OptimizationError(f"unknown scheduling policy {name!r}")
