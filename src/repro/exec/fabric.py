"""The fabric coordinator: lease-based dispatch over remote execution nodes.

:class:`FabricBackend` implements the
:class:`~repro.exec.backend.ExecutionBackend` protocol over N node links
(normally :class:`~repro.exec.remote.RemoteNodeBackend`; anything duck-typing
``submit``/``healthy``/``capacity``/``close`` works, which is what the unit
tests exploit).  Robustness is the design center:

* **Leases.**  Every request is owned by a lease.  Dispatch hands the lease
  to the least-loaded eligible node; an infrastructure failure (node died,
  link lost, heartbeat deadline) returns the lease to the *front* of the
  central queue and the next dispatch reassigns it — deterministically, to
  the least-loaded survivor, preferring a different node than the one that
  just failed.  The scheduler's future resolves exactly once no matter how
  many nodes attempt the lease, so the budget is never double-charged; the
  delivered outcome's ``attempts`` field records the reassignment count.
* **Probation / half-open probes.**  A node charged ``max_failures``
  infrastructure failures sits out ``probation_seconds`` (doubling per
  relapse), then gets a single half-open probe — the router's machinery
  (:mod:`repro.exec.router`), re-grounded on links that also *reconnect*
  themselves with exponential backoff underneath.
* **Work conservation.**  There are no per-node queues to steal from:
  nodes hold at most ``capacity()`` leases and everything else waits in the
  central queue, so a straggler can never hoard work an idle node could
  run — work-stealing by construction.  The scheduling-policy layer sees the
  fabric's full capacity and keeps that many proposals in flight.
* **Degradation.**  With every node unhealthy for ``degrade_after`` seconds
  (or a lease out of ``max_lease_attempts``), leases run on the ``fallback``
  backend (inline on the coordinator) — the run finishes slower instead of
  dying.
* **Cache replication.**  Outcome replies carry node-side outcome-cache
  event-log deltas; the fabric imports them into the coordinator's cache and
  piggybacks them onto every *other* node's next request frame — guarded by
  the data signature exchanged at handshake, so logs never replay against a
  different data snapshot.  A plan executed on one node replays everywhere.
* **Seeded network chaos.**  A :class:`~repro.exec.faults.NetworkFaultConfig`
  drives connection drops, partitions, slow links and node kills from the
  same ``(seed, query, plan, attempt)`` digest schedule as the PR 6 fault
  harness, so a chaos run is a pure function of its config — and because
  execution outcomes are deterministic in ``(query, plan, timeout)``, chaos
  traces are bit-for-bit identical to fault-free inline ones.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.protocol import ExecutionOutcome
from repro.exceptions import OptimizationError
from repro.exec.backend import ExecutionRequest, InlineBackend, is_infra_failure
from repro.exec.faults import NetworkFaultConfig, NetworkFaultCounters, _copy_completion
from repro.exec.node import start_node_process
from repro.exec.remote import RemoteNodeBackend
from repro.exec.router import BackendUnavailableError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.engine import Database
    from repro.db.query import Query


@dataclass
class FabricCounters:
    """What the fabric did to keep leases alive."""

    submissions: int = 0
    dispatched: int = 0
    completed: int = 0
    lease_reassignments: int = 0
    degraded_executions: int = 0
    give_ups: int = 0
    events_imported: int = 0
    events_replicated: int = 0

    def snapshot(self) -> dict:
        return {
            "submissions": self.submissions,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "lease_reassignments": self.lease_reassignments,
            "degraded_executions": self.degraded_executions,
            "give_ups": self.give_ups,
            "events_imported": self.events_imported,
            "events_replicated": self.events_replicated,
        }


class _Lease:
    """Ownership record of one in-flight request."""

    __slots__ = ("request", "outer", "attempt", "last_slot")

    def __init__(self, request: ExecutionRequest) -> None:
        self.request = request
        self.outer: "Future[ExecutionOutcome]" = Future()
        #: Reassignments so far (0 on the first dispatch).
        self.attempt = 0
        #: The slot that last tried (and failed) this lease, avoided on
        #: reassignment when any other node is eligible.
        self.last_slot: "_NodeSlot | None" = None


class _NodeSlot:
    """Fabric-side bookkeeping for one node link (mirrors the router's member)."""

    def __init__(self, node, index: int) -> None:
        self.node = node
        self.name = getattr(node, "name", f"node[{index}]")
        self.occupancy = 0
        self.dispatched = 0
        self.completed = 0
        self.reassigned_in = 0
        self.failures = 0
        self.probation_until: float | None = None
        self.probations = 0

    def on_probation(self, now: float) -> bool:
        return self.probation_until is not None and now < self.probation_until

    def probing(self, now: float) -> bool:
        return self.probation_until is not None and now >= self.probation_until

    def eligible(self, now: float) -> bool:
        if self.on_probation(now) or not self.node.healthy():
            return False
        window = max(1, self.node.capacity())
        if self.probing(now):
            # Half-open: exactly one probe in flight until a success clears it.
            window = 1
        return self.occupancy < window

    def load(self) -> float:
        return self.occupancy / max(1, self.node.capacity())

    def status(self, now: float) -> dict:
        report = {
            "occupancy": self.occupancy,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "lease_reassignments_received": self.reassigned_in,
            "failures": self.failures,
            "on_probation": self.on_probation(now),
            "probations": self.probations,
        }
        node_status = getattr(self.node, "status", None)
        if callable(node_status):
            report.update(node_status())
        else:
            report["name"] = self.name
            report["live"] = self.node.healthy()
        return report


class FabricBackend:
    """Coordinate plan executions over shared-nothing execution nodes."""

    name = "fabric"

    def __init__(
        self,
        nodes: list,
        *,
        database: "Database | None" = None,
        fallback=None,
        max_failures: int = 3,
        probation_seconds: float = 1.0,
        max_lease_attempts: int | None = None,
        degrade_after: float = 2.0,
        network_faults: NetworkFaultConfig | None = None,
        replicate_cache: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not nodes:
            raise OptimizationError("fabric needs at least one node")
        if max_failures < 1:
            raise OptimizationError("max_failures must be at least 1")
        if probation_seconds <= 0:
            raise OptimizationError("probation_seconds must be positive")
        if max_lease_attempts is not None and max_lease_attempts < 1:
            raise OptimizationError("max_lease_attempts must be at least 1")
        if degrade_after < 0:
            raise OptimizationError("degrade_after must be non-negative")
        self._slots = [_NodeSlot(node, index) for index, node in enumerate(nodes)]
        self.database = database
        self.fallback = fallback
        self._max_failures = max_failures
        self._probation_seconds = probation_seconds
        self._max_lease_attempts = (
            max_lease_attempts if max_lease_attempts is not None else 3 * len(nodes)
        )
        self._degrade_after = degrade_after
        self.network_faults = network_faults
        self.network_counters = NetworkFaultCounters()
        self._replicate_cache = replicate_cache
        self._clock = clock
        self.counters = FabricCounters()
        # RLock: node doubles (and dead links) settle futures synchronously
        # inside submit(), re-entering the dispatch path.
        self._lock = threading.RLock()
        self._pending: "deque[list[_Lease]]" = deque()
        self._fault_attempts: dict[tuple, int] = {}
        self._kills_done = 0
        self._all_unhealthy_since: float | None = None
        self._pump: threading.Thread | None = None
        self._closed = False
        self._owned_processes: list = []
        for slot in self._slots:
            if hasattr(slot.node, "add_listener"):
                slot.node.add_listener(self._wake)
            if hasattr(slot.node, "on_events"):
                slot.node.on_events = self._on_node_events

    # ------------------------------------------------------------------ backend protocol
    def capacity(self) -> int:
        # Static by design: nodes that are momentarily lost reconnect, and a
        # stable capacity keeps the scheduler's in-flight target steady.
        return sum(max(1, slot.node.capacity()) for slot in self._slots)

    def healthy(self) -> bool:
        if self._closed:
            return False
        return self.fallback is not None or any(slot.node.healthy() for slot in self._slots)

    def submit(self, request: ExecutionRequest) -> "Future[ExecutionOutcome]":
        if self._closed:
            raise OptimizationError("backend is closed")
        lease = _Lease(request)
        with self._lock:
            self.counters.submissions += 1
            self._pending.append([lease])
        self._ensure_pump()
        self._dispatch()
        return lease.outer

    def submit_batch(
        self, requests: "list[ExecutionRequest]"
    ) -> "list[Future[ExecutionOutcome]]":
        """Keep a same-query batch together on one node (one-pass subtrees).

        The group dispatches as a unit; if its node fails mid-flight the
        group disbands and the leases reassign individually — correctness
        first, the batching win only when the fleet is calm.
        """
        requests = list(requests)
        if len(requests) == 1:
            return [self.submit(requests[0])]
        if self._closed:
            raise OptimizationError("backend is closed")
        leases = [_Lease(request) for request in requests]
        with self._lock:
            self.counters.submissions += len(leases)
            self._pending.append(leases)
        self._ensure_pump()
        self._dispatch()
        return [lease.outer for lease in leases]

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending)
            self._pending.clear()
        error = OptimizationError("fabric closed with leases queued")
        for group in pending:
            for lease in group:
                _settle(lease.outer, exc=error)
        for slot in self._slots:
            slot.node.close()
        if self.fallback is not None:
            self.fallback.close()
        for process in self._owned_processes:
            try:
                process.join(timeout=2.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=2.0)
            except Exception:  # noqa: BLE001 - already-dead processes
                pass

    # ------------------------------------------------------------------ dispatch
    def _wake(self) -> None:
        if not self._closed:
            self._dispatch()

    def _ensure_pump(self) -> None:
        # A tiny timer thread re-runs dispatch so queued leases make progress
        # on probation expiry / degradation deadlines even with no link event.
        with self._lock:
            if self._pump is None or not self._pump.is_alive():
                self._pump = threading.Thread(
                    target=self._pump_loop, name="fabric-pump", daemon=True
                )
                self._pump.start()

    def _pump_loop(self) -> None:
        while not self._closed:
            time.sleep(0.02)
            if self._pending:
                self._dispatch()

    def _choose(self, now: float, avoid: "_NodeSlot | None") -> "_NodeSlot | None":
        candidates = [slot for slot in self._slots if slot.eligible(now)]
        if avoid is not None and len(candidates) > 1:
            candidates = [slot for slot in candidates if slot is not avoid]
        if not candidates:
            return None
        return min(candidates, key=lambda slot: (slot.load(), slot.name))

    def _dispatch(self) -> None:
        while True:
            with self._lock:
                if self._closed or not self._pending:
                    return
                now = self._clock()
                group = self._pending[0]
                live_group = [lease for lease in group if not lease.outer.cancelled()]
                if not live_group:
                    self._pending.popleft()
                    continue
                slot = self._choose(now, live_group[0].last_slot)
                if slot is None:
                    if not self._maybe_degrade(now):
                        return
                    self._pending.popleft()
                    group_to_fallback = live_group
                    slot = None
                else:
                    self._pending.popleft()
                    self._all_unhealthy_since = None
                    slot.occupancy += 1
                    slot.dispatched += len(live_group)
                    if live_group[0].attempt > 0:
                        slot.reassigned_in += len(live_group)
            if slot is None:
                self._run_on_fallback(group_to_fallback)
                continue
            self._dispatch_to(slot, live_group)

    def _maybe_degrade(self, now: float) -> bool:
        """Whether queued leases should run on the fallback *now*."""
        if self.fallback is None:
            return False
        if any(slot.node.healthy() for slot in self._slots):
            self._all_unhealthy_since = None
            return False
        if self._all_unhealthy_since is None:
            self._all_unhealthy_since = now
        return now - self._all_unhealthy_since >= self._degrade_after

    def _dispatch_to(self, slot: "_NodeSlot", group: "list[_Lease]") -> None:
        fault = self._decide_fault(group[0])
        if fault in ("kill", "drop", "partition") and not hasattr(
            slot.node, f"inject_{fault}"
        ):
            # Link-level faults are only meaningful against a real link;
            # against doubles without the hooks the dispatch runs clean.
            fault = None
        if fault == "kill":
            # The node dies before it ever sees the lease; dispatch re-picks.
            with self._lock:
                slot.occupancy -= 1
                slot.dispatched -= len(group)
                if group[0].attempt > 0:
                    slot.reassigned_in -= len(group)
                self._pending.appendleft(group)
            self.network_counters.kills += 1
            slot.node.inject_kill()
            self._record_failure(slot)
            self._dispatch()
            return
        if fault == "partition":
            # The lease is sent into the blackhole; only the heartbeat
            # deadline can reclaim it.
            self.network_counters.partitions += 1
            slot.node.inject_partition(self.network_faults.partition_seconds)
        self.counters.dispatched += len(group)
        try:
            if len(group) > 1 and hasattr(slot.node, "submit_batch"):
                requests = [lease.request for lease in group]
                inner_futures = slot.node.submit_batch(requests)
            else:
                inner_futures = [slot.node.submit(lease.request) for lease in group]
        except Exception as exc:  # noqa: BLE001 - classified by the failure path
            with self._lock:
                slot.occupancy -= 1
            if is_infra_failure(exc):
                self._record_failure(slot)
                self._requeue(slot, group, exc)
            else:
                for lease in group:
                    _settle(lease.outer, exc=exc)
            return
        if fault == "slow_link":
            self.network_counters.slow_links += 1
            inner_futures = [
                self._delay(future, self.network_faults.slow_link_seconds)
                for future in inner_futures
            ]
        remaining = [len(group)]
        for lease, inner in zip(group, inner_futures):
            inner.add_done_callback(
                lambda done, lease=lease: self._on_lease_done(slot, lease, done, remaining)
            )
        if fault == "drop":
            # The link drops with the lease in flight: every pending request
            # on the node fails over, this lease included.
            self.network_counters.drops += 1
            drop = getattr(slot.node, "inject_drop", None)
            if drop is not None:
                drop()

    def _on_lease_done(
        self, slot: "_NodeSlot", lease: _Lease, inner: "Future", remaining: list
    ) -> None:
        with self._lock:
            remaining[0] -= 1
            if remaining[0] == 0:
                slot.occupancy -= 1
        try:
            exc = inner.exception()
        except BaseException as err:  # noqa: BLE001 - CancelledError and friends
            exc = err
        if exc is None:
            outcome = inner.result()
            with self._lock:
                slot.completed += 1
                slot.failures = 0
                slot.probation_until = None
                slot.probations = 0
                self.counters.completed += 1
            if lease.attempt > 0 and isinstance(outcome, ExecutionOutcome):
                outcome = dataclasses.replace(outcome, attempts=lease.attempt + 1)
            _settle(lease.outer, result=outcome)
            self._dispatch()
            return
        if is_infra_failure(exc):
            self._record_failure(slot)
            self._requeue(slot, [lease], exc)
        else:
            # The plan itself failed: propagate untouched, no health charge.
            _settle(lease.outer, exc=exc)
            self._dispatch()

    def _requeue(self, slot: "_NodeSlot", group: "list[_Lease]", exc: BaseException) -> None:
        """Reassign failed leases (front of the queue), bounded per lease."""
        survivors: list[_Lease] = []
        for lease in group:
            lease.attempt += 1
            lease.last_slot = slot
            with self._lock:
                self.counters.lease_reassignments += 1
            if lease.attempt >= self._max_lease_attempts:
                if self.fallback is not None:
                    self._run_on_fallback([lease])
                else:
                    with self._lock:
                        self.counters.give_ups += 1
                    _settle(lease.outer, exc=exc)
                continue
            survivors.append(lease)
        if survivors:
            with self._lock:
                # Disbanded: each lease reassigns individually.
                for lease in reversed(survivors):
                    self._pending.appendleft([lease])
        self._dispatch()

    def _run_on_fallback(self, group: "list[_Lease]") -> None:
        for lease in group:
            with self._lock:
                self.counters.degraded_executions += 1
            try:
                inner = self.fallback.submit(lease.request)
            except Exception as exc:  # noqa: BLE001 - the end of the line
                _settle(lease.outer, exc=exc)
                continue
            inner.add_done_callback(
                lambda done, lease=lease: self._finish_degraded(lease, done)
            )

    def _finish_degraded(self, lease: _Lease, inner: "Future") -> None:
        try:
            exc = inner.exception()
        except BaseException as err:  # noqa: BLE001 - CancelledError and friends
            exc = err
        if exc is not None:
            _settle(lease.outer, exc=exc)
            return
        outcome = inner.result()
        with self._lock:
            self.counters.completed += 1
        if lease.attempt > 0 and isinstance(outcome, ExecutionOutcome):
            outcome = dataclasses.replace(outcome, attempts=lease.attempt + 1)
        _settle(lease.outer, result=outcome)

    def _record_failure(self, slot: "_NodeSlot") -> None:
        with self._lock:
            slot.failures += 1
            failing_probe = slot.probing(self._clock())
            if slot.failures >= self._max_failures or failing_probe:
                # Doubling probation per relapse, same as the router: a
                # flapping node backs off the fleet exponentially.
                slot.probation_until = self._clock() + self._probation_seconds * (
                    2.0 ** slot.probations
                )
                slot.probations += 1
                slot.failures = 0

    # ------------------------------------------------------------------ network chaos
    def _decide_fault(self, lease: _Lease) -> str | None:
        config = self.network_faults
        if config is None:
            return None
        request = lease.request
        key = (request.query.name, request.plan.canonical())
        with self._lock:
            attempt = self._fault_attempts.get(key, 0)
            self._fault_attempts[key] = attempt + 1
        kind = config.decide(request, attempt)
        if kind is None:
            self.network_counters.clean += 1
            return None
        if kind == "kill":
            with self._lock:
                if config.max_kills is not None and self._kills_done >= config.max_kills:
                    self.network_counters.clean += 1
                    return None
                self._kills_done += 1
        return kind

    @staticmethod
    def _delay(inner: "Future", seconds: float) -> "Future":
        """Deliver ``inner``'s completion ``seconds`` late (a slow link)."""
        outer: "Future" = Future()

        def arm(done: "Future") -> None:
            timer = threading.Timer(seconds, _copy_completion, args=(done, outer))
            timer.daemon = True
            timer.start()

        inner.add_done_callback(arm)
        return outer

    # ------------------------------------------------------------------ cache replication
    def _on_node_events(self, node, events: list) -> None:
        if not self._replicate_cache or not events:
            return
        signature = getattr(node, "signature", None)
        for slot in self._slots:
            other = slot.node
            if other is node:
                continue
            if signature is not None and getattr(other, "signature", None) not in (
                None,
                signature,
            ):
                continue
            offer = getattr(other, "offer_events", None)
            if offer is not None:
                offer(events)
                with self._lock:
                    self.counters.events_replicated += len(events)
        cache = getattr(self.database, "execution_cache", None) if self.database else None
        if cache is not None and hasattr(cache, "import_outcomes"):
            try:
                imported = cache.import_outcomes(events)
            except Exception:  # noqa: BLE001 - replication is best-effort
                return
            with self._lock:
                self.counters.events_imported += imported

    # ------------------------------------------------------------------ introspection
    def statuses(self) -> list[dict]:
        now = self._clock()
        with self._lock:
            return [slot.status(now) for slot in self._slots]

    def health_snapshot(self) -> dict:
        """Per-node liveness + fabric counters, for ``backend_health``."""
        nodes = self.statuses()
        report = self.counters.snapshot()
        report["nodes"] = nodes
        report["live_nodes"] = sum(1 for status in nodes if status.get("live"))
        report["pending_leases"] = len(self._pending)
        report["reconnects"] = sum(status.get("connects", 1) - 1 for status in nodes)
        report["node_losses"] = sum(status.get("losses", 0) for status in nodes)
        report["shipped_log_hits"] = sum(
            status.get("node", {}).get("shipped_log_hits", 0) for status in nodes
        )
        if self.network_faults is not None:
            report["network_faults"] = self.network_counters.snapshot()
        return report


def _settle(future: "Future", result=None, exc=None) -> None:
    try:
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)
    except Exception:  # noqa: BLE001 - InvalidStateError on cancelled leases
        pass


def start_local_fabric(
    database: "Database",
    queries: "list[Query] | None" = None,
    *,
    num_nodes: int = 2,
    warmup: bool = True,
    trace: bool = False,
    heartbeat_interval: float = 0.25,
    heartbeat_timeout: float = 2.0,
    start_method: str | None = None,
    fallback: bool = True,
    respawn: bool = True,
    **fabric_kwargs,
) -> FabricBackend:
    """A localhost fabric: ``num_nodes`` node processes + a connected coordinator.

    Each node process binds an ephemeral 127.0.0.1 port, receives the replica
    over the handshake, and is supervised by its link's restarter (a killed
    node is respawned and re-shipped the replica).  The returned backend owns
    the processes: :meth:`FabricBackend.close` shuts them down.
    """
    if num_nodes < 1:
        raise OptimizationError("num_nodes must be at least 1")
    pairs = [start_node_process(start_method) for _ in range(num_nodes)]
    processes = [process for process, _ in pairs]

    def make_restarter(index: int):
        def restart():
            old = processes[index]
            try:
                if old.is_alive():
                    old.terminate()
                old.join(timeout=2.0)
            except Exception:  # noqa: BLE001 - already gone
                pass
            process, address = start_node_process(start_method)
            processes[index] = process
            return address

        return restart

    nodes = [
        RemoteNodeBackend(
            address,
            database,
            queries,
            node_id=index,
            warmup=warmup,
            trace=trace,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            restarter=make_restarter(index) if respawn else None,
        )
        for index, (_, address) in enumerate(pairs)
    ]
    for node in nodes:
        node.connect()
    backend = FabricBackend(
        nodes,
        database=database,
        fallback=InlineBackend(database) if fallback else None,
        **fabric_kwargs,
    )
    backend._owned_processes = processes
    return backend
