"""The execution node: a shared-nothing replica process serving socket RPC.

One node process holds one :class:`~repro.db.engine.Database` replica and
serves plan executions for the fabric coordinator
(:mod:`repro.exec.fabric`) over the length-prefixed pickle protocol defined
in :mod:`repro.exec.remote`.  The replica arrives over the wire on the first
handshake (and is warmed there — every registered query pre-planned), then
*survives coordinator reconnects*: a coordinator that lost the link and comes
back finds the replica still installed, verifies its data signature in the
``hello`` exchange, and skips the re-ship.

Per connection two threads cooperate:

* the **reader** answers ``ping`` frames immediately (so heartbeats flow even
  while an execution is running), honours ``die`` (chaos kill:
  ``os._exit(1)``, no cleanup — exactly what a crashed machine looks like)
  and ``shutdown`` (graceful exit), and queues work frames;
* the **executor** (the connection's main thread) drains the work queue:
  installs replicas, imports piggybacked cache events, executes plans and
  replies with outcomes.

Plan errors never tear the connection: they are wrapped as
:class:`~repro.exec.process_pool.RemoteExecutionError` with the node-side
traceback string and shipped back as an ``error`` frame, so the scheduler's
report shows where on the node the plan actually died.

**Cache-log shipping.**  Every outcome reply carries the *delta* of the
node's outcome-cache event logs since the last reply (tracked per entry by a
cheap state tuple), so a plan executed here replays everywhere the
coordinator replicates the log to.  Events imported *from* the coordinator
are marked as already-known and are never echoed back; executions served by
an imported log count as ``shipped_log_hits`` in the stats dict riding on
every reply — the fabric surfaces them in health reports.
"""

from __future__ import annotations

import dataclasses
import os
import queue
import socket
import threading
import traceback
from typing import TYPE_CHECKING

from repro.core.protocol import ExecutionOutcome
from repro.db.plan_cache import plan_fingerprint
from repro.db.query import Query
from repro.exceptions import OptimizationError
from repro.exec.backend import ExecutionRequest, perform_batch, perform_request
from repro.exec.process_pool import RemoteExecutionError, _pick_context
from repro.exec.remote import PROTOCOL_VERSION, _teardown, recv_frame, send_frame
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.engine import Database


def _data_signature(database: "Database") -> tuple | None:
    """The serving layer's data signature, or ``None`` off-spec databases.

    Imported lazily: :mod:`repro.serve` imports :mod:`repro.exec`, so a
    module-level import here would be circular.  By the time a node computes
    a signature both packages are fully importable.
    """
    try:
        from repro.serve.server import data_signature
    except Exception:  # pragma: no cover - serve layer absent/partial
        return None
    try:
        return data_signature(database)
    except Exception:  # noqa: BLE001 - duck-typed databases without the fields
        return None


class NodeRuntime:
    """Node-side state that outlives individual coordinator connections."""

    def __init__(self) -> None:
        self.database: "Database | None" = None
        self.queries: dict[str, Query] = {}
        self.tracer: Tracer | None = None
        self.signature: tuple | None = None
        #: fingerprint -> last shipped entry state: outcome replies carry
        #: only entries whose state moved since the coordinator last saw them.
        self._shipped: dict[tuple, tuple] = {}
        #: Fingerprints whose logs arrived from the coordinator.
        self._imported: set[tuple] = set()
        self.shipped_log_hits = 0
        self.events_imported = 0

    # ------------------------------------------------------------------ replica lifecycle
    def install_replica(
        self, database: "Database", queries: tuple, warmup: bool, trace: bool, events: list
    ) -> tuple | None:
        self.database = database
        self.queries = {query.name: query for query in queries}
        self.tracer = Tracer(capacity=4096) if trace else None
        self._shipped = {}
        self._imported = set()
        self.shipped_log_hits = 0
        self.events_imported = 0
        if warmup and hasattr(database, "warmup"):
            database.warmup(list(queries))
        self.import_events(events)
        # Whatever the cache holds now (warmup plans, the coordinator's
        # priming logs) is by definition already known upstream.
        for key, state in self._entry_states():
            self._shipped[key] = state
        self.signature = _data_signature(database)
        return self.signature

    @property
    def has_replica(self) -> bool:
        return self.database is not None

    # ------------------------------------------------------------------ cache-log shipping
    def _cache(self):
        cache = getattr(self.database, "execution_cache", None)
        if cache is None or not hasattr(cache, "export_outcomes"):
            return None
        return cache

    def _entry_states(self):
        cache = self._cache()
        if cache is None:
            return
        for entry in cache.export_outcomes():
            key, events, completed, observed_to, output_rows, work_capped = entry
            yield tuple(key), (len(events), completed, observed_to, output_rows, work_capped)

    def import_events(self, events: list) -> int:
        cache = self._cache()
        if cache is None or not events:
            return 0
        count = cache.import_outcomes(events)
        self.events_imported += count
        for event in events:
            key = tuple(event[0])
            self._imported.add(key)
        # Imported entries are already known upstream — pin their shipped
        # state so they are not echoed back (a later local *extension* of an
        # imported log still ships as a delta).
        for key, state in self._entry_states():
            if key in self._imported:
                self._shipped[key] = state
        return count

    def delta_events(self) -> list:
        """Cache entries whose replayable state moved since the last reply."""
        cache = self._cache()
        if cache is None:
            return []
        delta = []
        for entry in cache.export_outcomes():
            key = tuple(entry[0])
            state = (len(entry[1]), entry[2], entry[3], entry[4], entry[5])
            if self._shipped.get(key) != state:
                self._shipped[key] = state
                delta.append(entry)
        return delta

    def stats(self) -> dict:
        return {
            "shipped_log_hits": self.shipped_log_hits,
            "events_imported": self.events_imported,
        }

    # ------------------------------------------------------------------ execution
    def _resolve_query(self, query_or_name: "Query | str") -> Query:
        if isinstance(query_or_name, str):
            try:
                return self.queries[query_or_name]
            except KeyError:
                raise OptimizationError(
                    f"query {query_or_name!r} is not registered with this node"
                ) from None
        return query_or_name

    def _count_shipped_hit(self, query: Query, plan, outcome: ExecutionOutcome) -> None:
        cache = outcome.cache
        if cache is None or not cache.outcome_hit:
            return
        try:
            if plan_fingerprint(query, plan) in self._imported:
                self.shipped_log_hits += 1
        except Exception:  # noqa: BLE001 - duck-typed plans without canonical()
            pass

    def execute(
        self, query_or_name: "Query | str", plan, timeout, proposal_id
    ) -> ExecutionOutcome:
        if self.database is None:
            raise OptimizationError("node has no replica installed")
        query = self._resolve_query(query_or_name)
        request = ExecutionRequest(
            query=query, plan=plan, timeout=timeout, proposal_id=proposal_id
        )
        try:
            outcome = perform_request(self.database, request, tracer=self.tracer)
        except RemoteExecutionError:
            raise
        except Exception as exc:  # noqa: BLE001 - wrapped with the node-side stack
            raise RemoteExecutionError(
                f"node execution of query {query.name!r} failed: "
                f"{type(exc).__name__}: {exc}",
                remote_traceback=traceback.format_exc(),
            ) from exc
        if self.tracer is not None:
            spans = self.tracer.drain()
            if spans:
                outcome = dataclasses.replace(outcome, spans=tuple(spans))
        self._count_shipped_hit(query, plan, outcome)
        return outcome

    def execute_batch(self, query_or_name: "Query | str", items: list) -> list:
        if self.database is None:
            raise OptimizationError("node has no replica installed")
        query = self._resolve_query(query_or_name)
        requests = [
            ExecutionRequest(query=query, plan=plan, timeout=timeout, proposal_id=proposal_id)
            for plan, timeout, proposal_id in items
        ]
        try:
            outcomes = perform_batch(self.database, requests, tracer=self.tracer)
        except RemoteExecutionError:
            raise
        except Exception as exc:  # noqa: BLE001 - wrapped with the node-side stack
            raise RemoteExecutionError(
                f"node batch execution of query {query.name!r} failed: "
                f"{type(exc).__name__}: {exc}",
                remote_traceback=traceback.format_exc(),
            ) from exc
        if self.tracer is not None:
            spans = self.tracer.drain()
            if spans and outcomes:
                outcomes[0] = dataclasses.replace(outcomes[0], spans=tuple(spans))
        for request, outcome in zip(requests, outcomes):
            self._count_shipped_hit(query, request.plan, outcome)
        return outcomes


# ---------------------------------------------------------------------- serving
def _serve_connection(sock: socket.socket, runtime: NodeRuntime) -> bool:
    """Serve one coordinator connection; returns True on graceful shutdown."""
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()
    tasks: "queue.Queue" = queue.Queue()
    shutdown = threading.Event()

    def reader() -> None:
        while True:
            try:
                frame = recv_frame(sock)
            except Exception:  # noqa: BLE001 - coordinator went away
                break
            kind = frame[0] if isinstance(frame, tuple) and frame else None
            if kind == "ping":
                # Answered here, not on the executor thread: heartbeats must
                # flow while a long execution holds the executor.
                try:
                    send_frame(sock, ("pong", frame[1]), lock=send_lock)
                except Exception:  # noqa: BLE001 - link died mid-pong
                    break
            elif kind == "die":
                os._exit(1)
            elif kind == "shutdown":
                shutdown.set()
                break
            else:
                tasks.put(frame)
        tasks.put(None)

    thread = threading.Thread(target=reader, name="node-reader", daemon=True)
    thread.start()

    try:
        while True:
            frame = tasks.get()
            if frame is None:
                return shutdown.is_set()
            kind = frame[0]
            if kind == "hello":
                send_frame(
                    sock,
                    ("hello_ack", PROTOCOL_VERSION, runtime.has_replica, runtime.signature),
                    lock=send_lock,
                )
            elif kind == "replica":
                _, database, queries, warmup, trace, events = frame
                signature = runtime.install_replica(database, queries, warmup, trace, events)
                send_frame(sock, ("replica_ack", signature), lock=send_lock)
            elif kind == "execute":
                _, task_id, query_or_name, plan, timeout, proposal_id, events = frame
                runtime.import_events(events)
                try:
                    outcome = runtime.execute(query_or_name, plan, timeout, proposal_id)
                except Exception as exc:  # noqa: BLE001 - shipped as an error frame
                    send_frame(sock, ("error", task_id, _wire_safe(exc)), lock=send_lock)
                else:
                    send_frame(
                        sock,
                        ("outcome", task_id, outcome, runtime.delta_events(), runtime.stats()),
                        lock=send_lock,
                    )
            elif kind == "execute_batch":
                _, task_id, query_or_name, items, events = frame
                runtime.import_events(events)
                try:
                    outcomes = runtime.execute_batch(query_or_name, items)
                except Exception as exc:  # noqa: BLE001 - shipped as an error frame
                    send_frame(sock, ("error", task_id, _wire_safe(exc)), lock=send_lock)
                else:
                    send_frame(
                        sock,
                        (
                            "outcome_batch",
                            task_id,
                            outcomes,
                            runtime.delta_events(),
                            runtime.stats(),
                        ),
                        lock=send_lock,
                    )
            # Unknown frame kinds are ignored for forward compatibility.
    except Exception:  # noqa: BLE001 - link died mid-reply; await reconnect
        return shutdown.is_set()
    finally:
        # shutdown-then-close: the reader may still be blocked in recv, and
        # a plain close would neither wake it nor send the FIN.
        _teardown(sock)


def _wire_safe(exc: Exception) -> Exception:
    """An exception guaranteed to survive the pickle round trip.

    :class:`RemoteExecutionError` defines ``__reduce__`` and is safe; any
    other exception (defensive path) is re-wrapped so an unpicklable error
    type can never poison the reply stream.
    """
    if isinstance(exc, RemoteExecutionError):
        return exc
    return RemoteExecutionError(
        f"node-side failure: {type(exc).__name__}: {exc}",
        remote_traceback=traceback.format_exc(),
    )


def serve_forever(listener: socket.socket) -> None:
    """Accept coordinator connections until a graceful shutdown frame.

    One coordinator at a time; the :class:`NodeRuntime` (and its warmed
    replica) persists across connections, which is what makes reconnects
    cheap.
    """
    runtime = NodeRuntime()
    with listener:
        while True:
            try:
                sock, _ = listener.accept()
            except OSError:
                return
            if _serve_connection(sock, runtime):
                return


def node_main(port_conn) -> None:
    """Process entry point: bind an ephemeral localhost port, report it, serve."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    port_conn.send(listener.getsockname())
    port_conn.close()
    serve_forever(listener)


def start_node_process(start_method: str | None = None, startup_timeout: float = 30.0):
    """Spawn one node process; returns ``(process, (host, port))``.

    The node starts *empty* — the coordinator ships the replica on the first
    handshake — so respawned nodes go through exactly the same code path as
    fresh ones.
    """
    ctx = _pick_context(start_method)
    parent, child = ctx.Pipe()
    process = ctx.Process(target=node_main, args=(child,), daemon=True)
    process.start()
    child.close()
    if not parent.poll(startup_timeout):
        process.terminate()
        raise OptimizationError("node process failed to report its address in time")
    address = tuple(parent.recv())
    parent.close()
    return process, address
