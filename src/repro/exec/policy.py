"""Cross-query scheduling policies: which query gets the next execution slot.

The scheduler keeps a ready list of per-query optimizer states and, whenever
an execution slot frees up, asks its :class:`SchedulingPolicy` which state to
step next.  Policies reorder *across* queries only — at the default batch
size (q=1) each state still alternates suggest/observe with at most one plan
in flight — so for techniques with per-query RNG state the per-query plan
sequence (and hence the final trace) is identical under every policy.  What
changes is anytime behaviour: which queries converge first, and where a
shared wall-clock deadline lands.  With the batched ask (``batch_size > 1``)
a selected state may put several proposals in flight before yielding the
slot; the policy still only decides *which* state claims free capacity next.

:class:`RoundRobin` reproduces the PR 2 scheduler exactly.
:class:`BudgetAwarePriority` implements the paper's "spend budget where it
helps most" framing: states are scored by the technique's surrogate-posterior
expected-improvement proxy (``predicted_improvement(state)``, advertised via
the registry's ``predicts_improvement`` capability flag) and the highest
scorer — weighted by its remaining budget fraction — runs next.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from repro.core.protocol import OptimizerState
from repro.exceptions import OptimizationError


@runtime_checkable
class SchedulingPolicy(Protocol):
    """Chooses which ready state receives the next free execution slot."""

    name: str

    def select(self, ready: Sequence[OptimizerState], optimizer: object | None = None) -> int:
        """Index into ``ready`` of the state to step next.

        ``optimizer`` is the technique instance when its registry entry
        advertises ``predicts_improvement``, else ``None``.
        """

    def reset(self) -> None:
        """Drop any per-run memory.  The scheduler calls this at run start,
        so one policy instance can serve many technique runs."""


class RoundRobin:
    """FIFO over the ready list — the PR 2 scheduler's order, bit for bit."""

    name = "round_robin"

    def select(self, ready: Sequence[OptimizerState], optimizer: object | None = None) -> int:
        if not ready:
            raise OptimizationError("no ready states to select from")
        return 0

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RoundRobin()"


class BudgetAwarePriority:
    """Spend remaining budget on the queries with the most predicted headroom.

    Score per state = ``predicted_improvement(state)`` (the technique's
    surrogate-posterior expected-improvement proxy; ``inf`` while a state is
    still initializing) scaled by the fraction of the state's execution
    budget still unspent.  When the technique offers no predictor the policy
    falls back to the best latency observed so far — queries that are still
    slow (or have no successful plan at all) get priority, which is the
    model-free reading of "spend budget where the most time is left on the
    table".  FIFO order breaks ties, so with uninformative scores the policy
    degrades to round-robin.
    """

    name = "budget_aware"

    def __init__(self) -> None:
        #: id(state) -> (num_executions at scoring time, score).  A state's
        #: score only changes when it absorbs an observation, so re-scoring
        #: the whole ready list on every slot claim would redo O(n^2) GP
        #: posterior work for states that did not run.  The cache keeps the
        #: schedule identical while scoring each (state, observation count)
        #: pair once.  ``reset()`` clears it between runs — ids of freed
        #: states get reused, and a stale entry must not leak across runs.
        self._scores: dict[int, tuple[int, float]] = {}

    def reset(self) -> None:
        self._scores.clear()

    def select(self, ready: Sequence[OptimizerState], optimizer: object | None = None) -> int:
        if not ready:
            raise OptimizationError("no ready states to select from")
        best_index, best_score = 0, float("-inf")
        for index, state in enumerate(ready):
            score = self._cached_score(state, optimizer)
            if score > best_score:
                best_index, best_score = index, score
        return best_index

    def _cached_score(self, state: OptimizerState, optimizer: object | None) -> float:
        version = state.result.num_executions
        cached = self._scores.get(id(state))
        if cached is not None and cached[0] == version:
            return cached[1]
        score = self._score(state, optimizer)
        self._scores[id(state)] = (version, score)
        return score

    def _score(self, state: OptimizerState, optimizer: object | None) -> float:
        predictor = getattr(optimizer, "predicted_improvement", None)
        headroom: float | None = None
        if predictor is not None:
            try:
                headroom = float(predictor(state))
            except Exception:  # noqa: BLE001 - scheduling must survive the model
                # A numerically cornered surrogate (singular posterior, NaN
                # hyperparameters) must not kill the whole session's
                # scheduling; fall through to the model-free score.
                headroom = None
        if headroom is None:
            try:
                headroom = float(state.result.best_latency)
            except OptimizationError:
                # No successful plan yet: nothing is known, explore first.
                return float("inf")
        if headroom == float("inf"):
            return headroom
        total = state.budget.max_executions
        if total:
            remaining = state.budget.remaining_executions(state.result)
            headroom *= remaining / total
        return headroom

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BudgetAwarePriority()"
