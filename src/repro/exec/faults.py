"""Deterministic fault injection: reproducible chaos for execution backends.

Offline planning spends hours of machine time on plan executions, so the
execution service has to survive unreliable infrastructure — and the only way
to *test* that it survives is to make the infrastructure unreliable on
purpose.  :class:`FaultInjectionBackend` wraps any
:class:`~repro.exec.backend.ExecutionBackend` and injects four fault kinds:

* **crash** — the submission fails with a :class:`BrokenExecutor` subclass,
  modelling a worker process dying mid-task,
* **transient** — the submission fails with a
  :class:`~repro.exec.backend.TransientBackendError`, modelling a network
  blip or an evicted worker,
* **hang** — the execution runs, but its result is withheld for
  ``hang_seconds`` after completion, modelling a stuck worker; a supervision
  deadline (:class:`~repro.exec.supervisor.SupervisedBackend`) must fire
  first for the request to make progress,
* **slow** — like a hang but short (``slow_seconds``), modelling a straggler
  replica; a well-tuned deadline must *not* fire on these.

Every decision comes from a :func:`~repro.utils.seeding.stable_digest`-seeded
schedule keyed by ``(seed, query, plan, attempt)``, so a chaos scenario is a
pure function of its config and the submitted requests — the same run injects
the same faults in every process, on every machine, regardless of thread
timing.  Retrying a request advances its per-request attempt counter, which
is how a retried execution can deterministically succeed where the first
attempt crashed.
"""

from __future__ import annotations

import threading
from concurrent.futures import BrokenExecutor, Future, InvalidStateError
from dataclasses import dataclass, field

from repro.core.protocol import ExecutionOutcome
from repro.exceptions import OptimizationError
from repro.exec.backend import ExecutionBackend, ExecutionRequest, TransientBackendError
from repro.utils.seeding import stable_digest

#: The injectable fault kinds, in the order the schedule's rate intervals
#: partition ``[0, 1)``.
FAULT_KINDS = ("crash", "hang", "transient", "slow")

#: Network-level fault kinds the fabric coordinator injects against node
#: links (see :mod:`repro.exec.fabric`), in rate-interval order.
NETWORK_FAULT_KINDS = ("drop", "partition", "slow_link", "kill")


class InjectedWorkerCrash(BrokenExecutor):
    """An injected worker-process death (classified as infrastructure)."""


class InjectedTransientError(TransientBackendError):
    """An injected transient infrastructure failure (retryable)."""


@dataclass(frozen=True)
class FaultInjectionConfig:
    """A reproducible chaos scenario: fault rates, durations and the seed.

    The four rates partition ``[0, 1)``; each submission draws a stable
    uniform deviate from ``(seed, query, plan, attempt)`` and the interval it
    lands in decides the fault (or none).  ``max_faults_per_request`` bounds
    how many *attempts* of one ``(query, plan)`` request may fault — with a
    supervisor whose ``max_retries`` exceeds it, every request is guaranteed
    to eventually complete, which is what lets a chaos benchmark assert full
    completion while still exercising every failure path.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    transient_rate: float = 0.0
    slow_rate: float = 0.0
    #: How long a hung execution withholds its (already computed) result.
    hang_seconds: float = 30.0
    #: How long a slow replica delays its result.
    slow_seconds: float = 0.05
    #: Attempts of one request eligible for faults; ``None`` = every attempt.
    max_faults_per_request: int | None = None

    def __post_init__(self) -> None:
        total = 0.0
        for name in ("crash_rate", "hang_rate", "transient_rate", "slow_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise OptimizationError(f"{name} must be in [0, 1], got {rate!r}")
            total += rate
        if total > 1.0:
            raise OptimizationError(f"fault rates must sum to at most 1, got {total}")
        if self.hang_seconds <= 0:
            raise OptimizationError("hang_seconds must be positive")
        if self.slow_seconds < 0:
            raise OptimizationError("slow_seconds must be non-negative")
        if self.max_faults_per_request is not None and self.max_faults_per_request < 0:
            raise OptimizationError("max_faults_per_request must be non-negative")

    def decide(self, request: ExecutionRequest, attempt: int) -> str | None:
        """The fault (if any) for ``attempt`` of ``request`` — a pure function.

        Deterministic in every process and under any submission interleaving:
        the deviate depends only on the scenario seed, the request's content
        and its per-request attempt index.
        """
        if self.max_faults_per_request is not None and attempt >= self.max_faults_per_request:
            return None
        deviate = stable_digest(
            "fault", self.seed, request.query.name, request.plan.canonical(), attempt, bits=53
        ) / float(1 << 53)
        edge = 0.0
        for kind, rate in zip(
            FAULT_KINDS, (self.crash_rate, self.hang_rate, self.transient_rate, self.slow_rate)
        ):
            edge += rate
            if deviate < edge:
                return kind
        return None


@dataclass(frozen=True)
class NetworkFaultConfig:
    """A reproducible network-chaos scenario for the execution fabric.

    Same digest schedule as :class:`FaultInjectionConfig` (salted
    differently), decided at lease-dispatch time by the fabric coordinator:

    * **drop** — the node link is severed with the lease in flight; every
      pending request on that node fails over and the link reconnects
      immediately,
    * **partition** — both directions blackhole for ``partition_seconds``
      without closing the socket, so only the heartbeat deadline reclaims
      the in-flight leases; reconnection stays blocked until the heal,
    * **slow_link** — the reply is delivered ``slow_link_seconds`` late
      (a straggler link; must *not* trip a well-tuned liveness deadline),
    * **kill** — the node process dies (``os._exit``) before seeing the
      lease; the link's restarter respawns and re-ships the replica.

    ``max_faults_per_request`` bounds faulted attempts per ``(query, plan)``
    so every lease eventually dispatches clean; ``max_kills`` caps process
    kills fleet-wide.  Fault *decisions* are a pure function of
    ``(seed, query, plan, attempt)``; execution outcomes are deterministic in
    ``(query, plan, timeout)``, so chaos traces are bit-for-bit identical to
    fault-free ones no matter where each lease finally runs.
    """

    seed: int = 0
    drop_rate: float = 0.0
    partition_rate: float = 0.0
    slow_link_rate: float = 0.0
    kill_rate: float = 0.0
    #: How long a partition blackholes the link (should exceed the fabric's
    #: heartbeat timeout so detection genuinely goes through the deadline).
    partition_seconds: float = 0.5
    #: How long a slow link delays reply delivery.
    slow_link_seconds: float = 0.05
    #: Attempts of one request eligible for faults; ``None`` = every attempt.
    max_faults_per_request: int | None = 1
    #: Fleet-wide cap on injected node kills; ``None`` = unbounded.
    max_kills: int | None = None

    def __post_init__(self) -> None:
        total = 0.0
        for name in ("drop_rate", "partition_rate", "slow_link_rate", "kill_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise OptimizationError(f"{name} must be in [0, 1], got {rate!r}")
            total += rate
        if total > 1.0:
            raise OptimizationError(f"network fault rates must sum to at most 1, got {total}")
        if self.partition_seconds <= 0:
            raise OptimizationError("partition_seconds must be positive")
        if self.slow_link_seconds < 0:
            raise OptimizationError("slow_link_seconds must be non-negative")
        if self.max_faults_per_request is not None and self.max_faults_per_request < 0:
            raise OptimizationError("max_faults_per_request must be non-negative")
        if self.max_kills is not None and self.max_kills < 0:
            raise OptimizationError("max_kills must be non-negative")

    def decide(self, request: ExecutionRequest, attempt: int) -> str | None:
        """The network fault (if any) for ``attempt`` of ``request``."""
        if self.max_faults_per_request is not None and attempt >= self.max_faults_per_request:
            return None
        deviate = stable_digest(
            "netfault", self.seed, request.query.name, request.plan.canonical(), attempt, bits=53
        ) / float(1 << 53)
        edge = 0.0
        for kind, rate in zip(
            NETWORK_FAULT_KINDS,
            (self.drop_rate, self.partition_rate, self.slow_link_rate, self.kill_rate),
        ):
            edge += rate
            if deviate < edge:
                return kind
        return None


@dataclass
class NetworkFaultCounters:
    """What a fabric's network-chaos schedule actually injected."""

    drops: int = 0
    partitions: int = 0
    slow_links: int = 0
    kills: int = 0
    clean: int = 0

    @property
    def total_faults(self) -> int:
        return self.drops + self.partitions + self.slow_links + self.kills

    def snapshot(self) -> dict:
        return {
            "drops": self.drops,
            "partitions": self.partitions,
            "slow_links": self.slow_links,
            "kills": self.kills,
            "clean": self.clean,
            "total_faults": self.total_faults,
        }


@dataclass
class FaultCounters:
    """What one :class:`FaultInjectionBackend` actually injected."""

    crashes: int = 0
    hangs: int = 0
    transients: int = 0
    slowdowns: int = 0
    clean: int = 0

    @property
    def total_faults(self) -> int:
        return self.crashes + self.hangs + self.transients + self.slowdowns

    def snapshot(self) -> dict:
        return {
            "crashes": self.crashes,
            "hangs": self.hangs,
            "transients": self.transients,
            "slowdowns": self.slowdowns,
            "clean": self.clean,
            "total_faults": self.total_faults,
        }


class FaultInjectionBackend:
    """Wrap a backend so a seeded schedule injects faults into its requests.

    Crashes and transient errors short-circuit (the inner backend never sees
    the request — the submission itself "dies"); hangs and slowdowns run the
    request for real and only delay delivery of its result, which is exactly
    what a stuck or straggling worker looks like from the scheduler.  The
    delay timers are daemonic and cancelled on :meth:`close`, with any
    withheld results flushed so no caller is left waiting on a closed
    backend.
    """

    name = "faults"

    def __init__(self, inner: ExecutionBackend, config: FaultInjectionConfig) -> None:
        self.inner = inner
        self.config = config
        self.counters = FaultCounters()
        self._attempts: dict[tuple, int] = {}
        self._lock = threading.Lock()
        #: timer -> (inner future, outer future) for in-flight delayed deliveries.
        self._delayed: dict[threading.Timer, tuple[Future, Future]] = {}
        self._closed = False

    # ------------------------------------------------------------------ backend protocol
    def capacity(self) -> int:
        return self.inner.capacity()

    def healthy(self) -> bool:
        return not self._closed and self.inner.healthy()

    def submit(self, request: ExecutionRequest) -> "Future[ExecutionOutcome]":
        if self._closed:
            raise OptimizationError("backend is closed")
        attempt = self._next_attempt(request)
        kind = self.config.decide(request, attempt)
        if kind == "crash":
            self.counters.crashes += 1
            return self._failed(
                InjectedWorkerCrash(
                    f"injected worker crash (query {request.query.name!r}, attempt {attempt})"
                )
            )
        if kind == "transient":
            self.counters.transients += 1
            return self._failed(
                InjectedTransientError(
                    f"injected transient infra error (query {request.query.name!r}, "
                    f"attempt {attempt})"
                )
            )
        if kind == "hang":
            self.counters.hangs += 1
            return self._delayed_submit(request, self.config.hang_seconds)
        if kind == "slow":
            self.counters.slowdowns += 1
            return self._delayed_submit(request, self.config.slow_seconds)
        self.counters.clean += 1
        return self.inner.submit(request)

    def close(self) -> None:
        """Cancel pending delay timers, flush withheld results, close inner."""
        with self._lock:
            self._closed = True
            delayed = list(self._delayed.items())
            self._delayed.clear()
        for timer, (inner_future, outer) in delayed:
            timer.cancel()
            if inner_future.done():
                _copy_completion(inner_future, outer)
        self.inner.close()

    # ------------------------------------------------------------------ internals
    def _next_attempt(self, request: ExecutionRequest) -> int:
        key = (request.query.name, request.plan.canonical())
        with self._lock:
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
        return attempt

    @staticmethod
    def _failed(exc: Exception) -> "Future[ExecutionOutcome]":
        future: Future[ExecutionOutcome] = Future()
        future.set_exception(exc)
        return future

    def _delayed_submit(self, request: ExecutionRequest, delay: float) -> "Future[ExecutionOutcome]":
        """Run the request now, withhold its completion for ``delay`` seconds."""
        outer: Future[ExecutionOutcome] = Future()
        inner_future = self.inner.submit(request)

        # The delay starts when the execution *finishes*: a hung worker has
        # done the work, it just never reports back in time.
        def arm(done: Future) -> None:
            def deliver() -> None:
                with self._lock:
                    self._delayed.pop(timer, None)
                _copy_completion(done, outer)

            timer = threading.Timer(delay, deliver)
            timer.daemon = True
            with self._lock:
                if self._closed:
                    _copy_completion(done, outer)
                    return
                self._delayed[timer] = (done, outer)
            timer.start()

        inner_future.add_done_callback(arm)
        return outer


def _copy_completion(source: Future, target: Future) -> None:
    """Copy a finished future's completion onto ``target``, tolerating races."""
    try:
        exc = source.exception()
        if exc is not None:
            target.set_exception(exc)
        else:
            target.set_result(source.result())
    except InvalidStateError:  # pragma: no cover - duplicate delivery race
        pass
