"""Fan plan executions out over several independent backends.

:class:`MultiBackendRouter` models the deployment where a workload's plan
executions are spread over several database replicas (multiple standbys, a
fleet of simulation workers, …).  Per member it tracks **occupancy** (requests
in flight, maintained via future callbacks) and **health** (accumulated
infrastructure failures); submissions go to the least-loaded healthy member,
and a request whose member breaks mid-flight (e.g. a worker process dies, the
pool raises :class:`~concurrent.futures.BrokenExecutor`, or a
:class:`~repro.exec.backend.TransientBackendError` surfaces) is transparently
retried on the remaining healthy members.  Genuine execution errors — the
plan itself failing — are *not* retried: they propagate to the scheduler,
which reports them with the owning query's name.

Members that exhaust their failure budget are not retired forever.  With
``probation_seconds`` set, a failing member is put **on probation**: it takes
no traffic until the probation expires, then becomes eligible for a single
half-open **probe** request (only while it has nothing else in flight).  A
successful probe clears its failure record; a failed probe doubles the next
probation.  This is what lets a replica that was merely rebooting rejoin the
fleet instead of shrinking it permanently.  With ``probation_seconds=None``
the pre-probation behaviour — permanent retirement at ``max_failures`` — is
preserved.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass
from typing import Callable

from repro.core.protocol import ExecutionOutcome
from repro.exceptions import OptimizationError
from repro.exec.backend import ExecutionBackend, ExecutionRequest, is_infra_failure


class BackendUnavailableError(OptimizationError):
    """No healthy backend is left to run a request on."""


@dataclass
class BackendStatus:
    """Point-in-time view of one routed backend (for reporting/tests)."""

    name: str
    capacity: int
    occupancy: int
    submitted: int
    completed: int
    failures: int
    healthy: bool
    retries: int = 0
    on_probation: bool = False

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "occupancy": self.occupancy,
            "submitted": self.submitted,
            "completed": self.completed,
            "failures": self.failures,
            "healthy": self.healthy,
            "retries": self.retries,
            "on_probation": self.on_probation,
        }


class _Member:
    """Router-side bookkeeping for one backend."""

    def __init__(self, backend: ExecutionBackend, index: int) -> None:
        self.backend = backend
        self.name = f"{getattr(backend, 'name', 'backend')}[{index}]"
        self.occupancy = 0
        self.submitted = 0
        self.completed = 0
        self.failures = 0
        #: Requests this member received after another member failed them.
        self.retries = 0
        self.marked_unhealthy = False
        #: Monotonic deadline until which the member takes no traffic.
        self.probation_until: float | None = None
        #: Probation periods served — doubles each successive probation.
        self.probations = 0

    def on_probation(self, now: float) -> bool:
        return self.probation_until is not None and now < self.probation_until

    def probing(self, now: float) -> bool:
        """Probation expired but the member hasn't proven itself yet."""
        return self.probation_until is not None and now >= self.probation_until

    def healthy(self, now: float) -> bool:
        return (
            not self.marked_unhealthy
            and not self.on_probation(now)
            and self.backend.healthy()
        )

    def eligible(self, now: float) -> bool:
        """Whether the member may take a new request right now.

        A member fresh off probation is *half-open*: it gets exactly one
        in-flight probe (occupancy 0) until a success clears its record.
        """
        if not self.healthy(now):
            return False
        if self.probing(now) and self.occupancy > 0:
            return False
        return True

    def load(self) -> float:
        return self.occupancy / max(1, self.backend.capacity())


class MultiBackendRouter:
    """Route requests across independent backends by occupancy and health."""

    name = "router"

    def __init__(
        self,
        backends: list[ExecutionBackend],
        max_failures: int = 3,
        probation_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not backends:
            raise OptimizationError("router needs at least one backend")
        if max_failures < 1:
            raise OptimizationError("max_failures must be at least 1")
        if probation_seconds is not None and probation_seconds <= 0:
            raise OptimizationError("probation_seconds must be positive")
        self._members = [_Member(backend, index) for index, backend in enumerate(backends)]
        self._max_failures = max_failures
        self._probation_seconds = probation_seconds
        self._clock = clock
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ backend protocol
    def capacity(self) -> int:
        now = self._clock()
        with self._lock:
            return sum(
                member.backend.capacity() for member in self._members if member.healthy(now)
            )

    def healthy(self) -> bool:
        now = self._clock()
        with self._lock:
            return any(member.healthy(now) for member in self._members)

    def submit(self, request: ExecutionRequest) -> "Future[ExecutionOutcome]":
        outer: Future[ExecutionOutcome] = Future()
        self._dispatch(request, outer, tried=frozenset())
        return outer

    def close(self) -> None:
        for member in self._members:
            member.backend.close()

    # ------------------------------------------------------------------ introspection
    def statuses(self) -> list[BackendStatus]:
        now = self._clock()
        with self._lock:
            return [
                BackendStatus(
                    name=member.name,
                    capacity=member.backend.capacity(),
                    occupancy=member.occupancy,
                    submitted=member.submitted,
                    completed=member.completed,
                    failures=member.failures,
                    healthy=member.healthy(now),
                    retries=member.retries,
                    on_probation=member.on_probation(now),
                )
                for member in self._members
            ]

    # ------------------------------------------------------------------ routing
    def _choose(self, tried: frozenset, now: float) -> "_Member | None":
        candidates = [
            member
            for member in self._members
            if member.eligible(now) and member.name not in tried
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda member: (member.load(), member.name))

    def _dispatch(self, request: ExecutionRequest, outer: Future, tried: frozenset) -> None:
        now = self._clock()
        with self._lock:
            member = self._choose(tried, now)
            if member is not None:
                member.occupancy += 1
                member.submitted += 1
                if tried:
                    member.retries += 1
        if member is None:
            self._resolve(
                outer,
                exc=BackendUnavailableError(
                    f"no healthy execution backend left for query {request.query.name!r} "
                    f"(tried {sorted(tried) or 'none'})"
                ),
            )
            return
        try:
            inner = member.backend.submit(request)
        except Exception as exc:  # noqa: BLE001 - delivered via the outer future
            if is_infra_failure(exc):
                self._record_failure(member)
                self._dispatch(request, outer, tried | {member.name})
            else:
                self._release(member)
                self._resolve(outer, exc=exc)
            return
        inner.add_done_callback(
            lambda future: self._on_done(future, member, request, outer, tried)
        )

    def _on_done(
        self,
        inner: Future,
        member: _Member,
        request: ExecutionRequest,
        outer: Future,
        tried: frozenset,
    ) -> None:
        exc = inner.exception()
        if exc is None:
            with self._lock:
                member.occupancy -= 1
                member.completed += 1
                # A success clears the member's record: a probe that lands
                # restores full membership, and steady members never creep
                # toward retirement on isolated blips.
                member.failures = 0
                member.probation_until = None
            self._resolve(outer, result=inner.result())
            return
        if is_infra_failure(exc):
            # Infrastructure death, not a property of the plan: the member is
            # charged a failure (put on probation — or retired, without a
            # probation policy — at max_failures) and the request is retried
            # elsewhere.
            self._record_failure(member)
            self._dispatch(request, outer, tried | {member.name})
        else:
            # A genuine execution error says nothing about the member's
            # health — the plan itself failed.  Propagate without retrying
            # and without denting the member's failure budget.
            self._release(member)
            self._resolve(outer, exc=exc)

    @staticmethod
    def _resolve(outer: Future, result=None, exc=None) -> None:
        """Complete the outer future, tolerating a scheduler-side cancel.

        The scheduler cancels outstanding outer futures when it aborts a run;
        an in-flight inner future may still complete afterwards, and its
        callback must not die on the already-cancelled outer future.
        """
        try:
            if exc is not None:
                outer.set_exception(exc)
            else:
                outer.set_result(result)
        except InvalidStateError:
            pass

    def _release(self, member: _Member) -> None:
        with self._lock:
            member.occupancy -= 1

    def _record_failure(self, member: _Member) -> None:
        with self._lock:
            member.occupancy -= 1
            member.failures += 1
            failing_probe = member.probing(self._clock())
            if member.failures >= self._max_failures or failing_probe:
                if self._probation_seconds is None:
                    member.marked_unhealthy = True
                else:
                    # Each successive probation doubles: a flapping member
                    # backs off the fleet exponentially instead of thrashing.
                    member.probation_until = self._clock() + self._probation_seconds * (
                        2.0 ** member.probations
                    )
                    member.probations += 1
                    member.failures = 0
