"""Fan plan executions out over several independent backends.

:class:`MultiBackendRouter` models the deployment where a workload's plan
executions are spread over several database replicas (multiple standbys, a
fleet of simulation workers, …).  Per member it tracks **occupancy** (requests
in flight, maintained via future callbacks) and **health** (accumulated
infrastructure failures); submissions go to the least-loaded healthy member,
and a request whose member breaks mid-flight (e.g. a worker process dies, the
pool raises :class:`~concurrent.futures.BrokenExecutor`) is transparently
retried on the remaining healthy members.  Genuine execution errors — the
plan itself failing — are *not* retried: they propagate to the scheduler,
which reports them with the owning query's name.
"""

from __future__ import annotations

import threading
from concurrent.futures import BrokenExecutor, Future, InvalidStateError
from dataclasses import dataclass

from repro.core.protocol import ExecutionOutcome
from repro.exceptions import OptimizationError
from repro.exec.backend import ExecutionBackend, ExecutionRequest


class BackendUnavailableError(OptimizationError):
    """No healthy backend is left to run a request on."""


@dataclass
class BackendStatus:
    """Point-in-time view of one routed backend (for reporting/tests)."""

    name: str
    capacity: int
    occupancy: int
    submitted: int
    completed: int
    failures: int
    healthy: bool


class _Member:
    """Router-side bookkeeping for one backend."""

    def __init__(self, backend: ExecutionBackend, index: int) -> None:
        self.backend = backend
        self.name = f"{getattr(backend, 'name', 'backend')}[{index}]"
        self.occupancy = 0
        self.submitted = 0
        self.completed = 0
        self.failures = 0
        self.marked_unhealthy = False

    def healthy(self) -> bool:
        return not self.marked_unhealthy and self.backend.healthy()

    def load(self) -> float:
        return self.occupancy / max(1, self.backend.capacity())


class MultiBackendRouter:
    """Route requests across independent backends by occupancy and health."""

    name = "router"

    def __init__(self, backends: list[ExecutionBackend], max_failures: int = 3) -> None:
        if not backends:
            raise OptimizationError("router needs at least one backend")
        if max_failures < 1:
            raise OptimizationError("max_failures must be at least 1")
        self._members = [_Member(backend, index) for index, backend in enumerate(backends)]
        self._max_failures = max_failures
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ backend protocol
    def capacity(self) -> int:
        with self._lock:
            return sum(
                member.backend.capacity() for member in self._members if member.healthy()
            )

    def healthy(self) -> bool:
        with self._lock:
            return any(member.healthy() for member in self._members)

    def submit(self, request: ExecutionRequest) -> "Future[ExecutionOutcome]":
        outer: Future[ExecutionOutcome] = Future()
        self._dispatch(request, outer, tried=frozenset())
        return outer

    def close(self) -> None:
        for member in self._members:
            member.backend.close()

    # ------------------------------------------------------------------ introspection
    def statuses(self) -> list[BackendStatus]:
        with self._lock:
            return [
                BackendStatus(
                    name=member.name,
                    capacity=member.backend.capacity(),
                    occupancy=member.occupancy,
                    submitted=member.submitted,
                    completed=member.completed,
                    failures=member.failures,
                    healthy=member.healthy(),
                )
                for member in self._members
            ]

    # ------------------------------------------------------------------ routing
    def _choose(self, tried: frozenset) -> "_Member | None":
        candidates = [
            member
            for member in self._members
            if member.healthy() and member.name not in tried
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda member: (member.load(), member.name))

    def _dispatch(self, request: ExecutionRequest, outer: Future, tried: frozenset) -> None:
        with self._lock:
            member = self._choose(tried)
            if member is not None:
                member.occupancy += 1
                member.submitted += 1
        if member is None:
            outer.set_exception(
                BackendUnavailableError(
                    f"no healthy execution backend left for query {request.query.name!r} "
                    f"(tried {sorted(tried) or 'none'})"
                )
            )
            return
        try:
            inner = member.backend.submit(request)
        except Exception as exc:  # noqa: BLE001 - delivered via the outer future
            if isinstance(exc, BrokenExecutor):
                self._record_failure(member)
                self._dispatch(request, outer, tried | {member.name})
            else:
                self._release(member)
                self._resolve(outer, exc=exc)
            return
        inner.add_done_callback(
            lambda future: self._on_done(future, member, request, outer, tried)
        )

    def _on_done(
        self,
        inner: Future,
        member: _Member,
        request: ExecutionRequest,
        outer: Future,
        tried: frozenset,
    ) -> None:
        exc = inner.exception()
        if exc is None:
            with self._lock:
                member.occupancy -= 1
                member.completed += 1
            self._resolve(outer, result=inner.result())
            return
        if isinstance(exc, BrokenExecutor):
            # Infrastructure death, not a property of the plan: the member is
            # charged a failure (retired at max_failures) and the request is
            # retried elsewhere.
            self._record_failure(member)
            self._dispatch(request, outer, tried | {member.name})
        else:
            # A genuine execution error says nothing about the member's
            # health — the plan itself failed.  Propagate without retrying
            # and without denting the member's failure budget.
            self._release(member)
            self._resolve(outer, exc=exc)

    @staticmethod
    def _resolve(outer: Future, result=None, exc=None) -> None:
        """Complete the outer future, tolerating a scheduler-side cancel.

        The scheduler cancels outstanding outer futures when it aborts a run;
        an in-flight inner future may still complete afterwards, and its
        callback must not die on the already-cancelled outer future.
        """
        try:
            if exc is not None:
                outer.set_exception(exc)
            else:
                outer.set_result(result)
        except InvalidStateError:
            pass

    def _release(self, member: _Member) -> None:
        with self._lock:
            member.occupancy -= 1

    def _record_failure(self, member: _Member) -> None:
        with self._lock:
            member.occupancy -= 1
            member.failures += 1
            if member.failures >= self._max_failures:
                member.marked_unhealthy = True
