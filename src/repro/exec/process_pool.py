"""Plan execution in worker processes holding warm database replicas.

Thread pools only overlap *waiting*; CPU-bound simulated executions serialize
on the GIL.  :class:`ProcessPoolBackend` sidesteps the GIL entirely: each
worker process receives one pickled :class:`~repro.db.engine.Database`
replica at startup (rebuilt through ``Database.__setstate__`` — statistics,
planner and executor freshly constructed), optionally pre-plans every known
query (warmup), and then serves plan executions for the life of the pool.
Per task only the small ``(query name | query, plan, timeout)`` payload
crosses the process boundary, and the result travels back as a plain
:class:`~repro.core.protocol.ExecutionOutcome`.

Determinism: the executor's latency noise and every per-query RNG are seeded
through :func:`repro.utils.seeding.stable_digest`, so a worker process
observes exactly the latencies the parent would have — process-pool traces
are bit-for-bit identical to sequential ones.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import traceback
from concurrent.futures import Future, ProcessPoolExecutor
from typing import TYPE_CHECKING

from repro.core.protocol import ExecutionOutcome
from repro.db.query import Query
from repro.exceptions import OptimizationError
from repro.exec.backend import ExecutionRequest, fan_out_batch, perform_batch, perform_request
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.engine import Database

#: Per-process replica state, populated once by :func:`_init_worker`.
_WORKER_STATE: dict = {}


class RemoteExecutionError(OptimizationError):
    """A plan execution failed inside a worker process.

    Exceptions that cross the process boundary normally lose their stack: the
    scheduler sees ``KeyError: 'x'`` with a traceback pointing at
    ``Future.result()``.  This wrapper pickles the *worker-side* traceback as
    a string so the original stack rides along to the scheduler (and into the
    run report, tagged with the owning query).  It is a genuine execution
    error — :func:`~repro.exec.backend.is_infra_failure` is false for it, so
    neither the router's health budget nor the supervisor's retries apply.
    """

    def __init__(self, message: str, remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback

    def __str__(self) -> str:
        base = super().__str__()
        if self.remote_traceback:
            return f"{base}\n--- remote traceback ---\n{self.remote_traceback}"
        return base

    def __reduce__(self):
        # Default Exception pickling would drop the keyword attribute.
        return (self.__class__, (self.args[0], self.remote_traceback))


def _init_worker(
    database: "Database", queries: tuple[Query, ...], warmup: bool, trace: bool = False
) -> None:
    """Build this worker's warm replica (runs once per worker process).

    The replica arrives with a *fresh, private* execution cache
    (:class:`~repro.db.engine.Database` pickles only its cache *config*, not
    cached state), so workers never share mutable cache structures; warmup
    primes it with each query's default plan and the per-execution
    :class:`~repro.db.plan_cache.CacheStats` travel back to the scheduler on
    every :class:`~repro.core.protocol.ExecutionOutcome`.

    With ``trace`` the worker records execution spans into its own private
    :class:`~repro.obs.tracer.Tracer`; each task drains the buffer onto its
    outcome's ``spans`` tuple, so telemetry travels back exactly like
    ``CacheStats`` does and the scheduler re-parents it via ``adopt``.
    """
    _WORKER_STATE["database"] = database
    _WORKER_STATE["queries"] = {query.name: query for query in queries}
    _WORKER_STATE["tracer"] = Tracer(capacity=4096) if trace else None
    if warmup and hasattr(database, "warmup"):
        database.warmup(list(queries))


def _execute_in_worker(
    query_or_name: "Query | str", plan, timeout: float | None, proposal_id: int | None = None
) -> ExecutionOutcome:
    """Execute one plan against this worker's replica.

    Failures are re-raised as :class:`RemoteExecutionError` carrying the
    worker-side traceback string, so the scheduler's report shows where in
    the worker the plan actually died.
    """
    try:
        database = _WORKER_STATE["database"]
        if isinstance(query_or_name, str):
            query = _WORKER_STATE["queries"][query_or_name]
        else:
            query = query_or_name
        tracer = _WORKER_STATE.get("tracer")
        outcome = perform_request(
            database,
            ExecutionRequest(query=query, plan=plan, timeout=timeout, proposal_id=proposal_id),
            tracer=tracer,
        )
        if tracer is not None:
            spans = tracer.drain()
            if spans:
                outcome = dataclasses.replace(outcome, spans=tuple(spans))
        return outcome
    except RemoteExecutionError:
        raise
    except Exception as exc:  # noqa: BLE001 - wrapped with the remote stack
        name = query_or_name if isinstance(query_or_name, str) else query_or_name.name
        raise RemoteExecutionError(
            f"worker execution of query {name!r} failed: {type(exc).__name__}: {exc}",
            remote_traceback=traceback.format_exc(),
        ) from exc


def _execute_batch_in_worker(
    query_or_name: "Query | str", items: list[tuple]
) -> list[ExecutionOutcome]:
    """Execute a same-query plan batch against this worker's replica.

    The whole batch runs as one task so shared join subtrees execute once
    (see :meth:`repro.db.executor.Executor.run_batch`); outcomes return in
    request order.  The worker's span buffer is drained once per batch and
    shipped on the *first* outcome — the scheduler adopts it wholesale, so
    attribution is unaffected.
    """
    try:
        database = _WORKER_STATE["database"]
        if isinstance(query_or_name, str):
            query = _WORKER_STATE["queries"][query_or_name]
        else:
            query = query_or_name
        tracer = _WORKER_STATE.get("tracer")
        requests = [
            ExecutionRequest(query=query, plan=plan, timeout=timeout, proposal_id=proposal_id)
            for plan, timeout, proposal_id in items
        ]
        outcomes = perform_batch(database, requests, tracer=tracer)
        if tracer is not None:
            spans = tracer.drain()
            if spans and outcomes:
                outcomes[0] = dataclasses.replace(outcomes[0], spans=tuple(spans))
        return outcomes
    except RemoteExecutionError:
        raise
    except Exception as exc:  # noqa: BLE001 - wrapped with the remote stack
        name = query_or_name if isinstance(query_or_name, str) else query_or_name.name
        raise RemoteExecutionError(
            f"worker batch execution of query {name!r} failed: {type(exc).__name__}: {exc}",
            remote_traceback=traceback.format_exc(),
        ) from exc


def _pick_context(start_method: str | None) -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (workers inherit the database without pickling it per
    worker); fall back to the platform default elsewhere."""
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else methods[0]
    return multiprocessing.get_context(start_method)


class ProcessPoolBackend:
    """Dispatch plan executions to worker processes with warm replicas.

    Parameters
    ----------
    database:
        The database the workers replicate.  Must be picklable (anything
        duck-typing ``execute`` works; :class:`~repro.db.engine.Database`
        ships only its constructor inputs and rebuilds the rest).
    max_workers:
        Worker process count (defaults to the CPU count).
    queries:
        Queries to register with every worker.  Registered queries are sent
        by *name* per task (and pre-planned during warmup); unregistered
        queries are pickled whole with each request.
    start_method:
        Multiprocessing start method; ``None`` prefers ``fork``.
    warmup:
        Pre-plan every registered query in each worker at startup.
    """

    name = "process"

    def __init__(
        self,
        database: "Database",
        max_workers: int | None = None,
        queries: list[Query] | None = None,
        start_method: str | None = None,
        warmup: bool = True,
        trace: bool = False,
    ) -> None:
        workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise OptimizationError("max_workers must be at least 1")
        self.database = database
        self._max_workers = workers
        self._queries = tuple(queries or ())
        self._registered = {query.name for query in self._queries}
        self._start_method = start_method
        self._warmup = warmup
        self._trace = trace
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False

    def capacity(self) -> int:
        return self._max_workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise OptimizationError("backend is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._max_workers,
                mp_context=_pick_context(self._start_method),
                initializer=_init_worker,
                initargs=(self.database, self._queries, self._warmup, self._trace),
            )
        return self._pool

    def submit(self, request: ExecutionRequest) -> "Future[ExecutionOutcome]":
        payload: Query | str = (
            request.query.name if request.query.name in self._registered else request.query
        )
        return self._ensure_pool().submit(
            _execute_in_worker, payload, request.plan, request.timeout, request.proposal_id
        )

    def submit_batch(
        self, requests: list[ExecutionRequest]
    ) -> "list[Future[ExecutionOutcome]]":
        """Run a same-query batch as one worker task.

        The batch occupies a single worker, trading fan-out parallelism for
        one-pass execution over the plans' shared subtrees — the right trade
        for the simulated executor, where the shared work dominates.  Callers
        that want per-plan fan-out instead (e.g. CPU-burn benchmarks) submit
        per request or disable ``batch_execution``.
        """
        requests = list(requests)
        if len(requests) == 1:
            return [self.submit(requests[0])]
        query = requests[0].query
        payload: Query | str = query.name if query.name in self._registered else query
        items = [
            (request.plan, request.timeout, request.proposal_id) for request in requests
        ]
        futures: list[Future[ExecutionOutcome]] = [Future() for _ in requests]
        task = self._ensure_pool().submit(_execute_batch_in_worker, payload, items)
        fan_out_batch(task, futures)
        return futures

    def healthy(self) -> bool:
        if self._closed:
            return False
        # A pool that hasn't been started yet is healthy by definition; a
        # broken pool (worker died mid-task) is unusable until rebuild().
        return self._pool is None or getattr(self._pool, "_broken", False) is False

    def rebuild(self) -> None:
        """Replace a broken process pool with a fresh one.

        ``BrokenProcessPool`` poisons the executor permanently; the
        supervisor calls this to discard it so the next submission lazily
        starts fresh workers (replicas rebuilt from the same pickled
        database, so determinism is unaffected).  In-flight futures of the
        old pool have already failed — nothing is carried over.
        """
        if self._closed:
            return
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
