"""The execution-backend contract plus the in-process implementations.

A backend turns an :class:`ExecutionRequest` (query + plan + timeout) into a
:class:`~concurrent.futures.Future` resolving to an
:class:`~repro.core.protocol.ExecutionOutcome`.  The scheduler
(:class:`~repro.harness.runner.WorkloadSession`) neither knows nor cares
where the execution happens — on the scheduler thread
(:class:`InlineBackend`), on a thread pool that overlaps DBMS waiting
(:class:`ThreadPoolBackend`), in worker processes holding warm database
replicas (:class:`~repro.exec.process_pool.ProcessPoolBackend`), or fanned
out over several independent backends
(:class:`~repro.exec.router.MultiBackendRouter`).
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.protocol import ExecutionOutcome
from repro.db.query import Query
from repro.exceptions import OptimizationError
from repro.plans.jointree import JoinTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.engine import Database


class TransientBackendError(OptimizationError):
    """A retryable infrastructure failure (network blip, evicted worker, ...).

    Says nothing about the plan that was executing: the same request submitted
    again may well succeed.  The supervision layer
    (:class:`~repro.exec.supervisor.SupervisedBackend`) retries these with
    backoff, and the :class:`~repro.exec.router.MultiBackendRouter` charges
    them against the failing member's health budget — exactly like a
    :class:`~concurrent.futures.BrokenExecutor`.
    """


def is_infra_failure(exc: BaseException) -> bool:
    """Whether ``exc`` is an infrastructure failure rather than a plan error.

    Infrastructure failures (a worker process died, a transient backend
    error, a supervision deadline expired) are retryable: the plan itself is
    not implicated.  Everything else — the plan genuinely failing to execute —
    must propagate to the scheduler untouched.
    """
    return isinstance(exc, (BrokenExecutor, TransientBackendError))


@dataclass(frozen=True)
class ExecutionRequest:
    """One plan execution the scheduler wants performed.

    The request is the unit that crosses the backend boundary, so everything
    in it must stay picklable: :class:`~repro.db.query.Query` and
    :class:`~repro.plans.jointree.JoinTree` are plain data, and the outcome
    travels back as the equally plain
    :class:`~repro.core.protocol.ExecutionOutcome`.  Technique-private
    proposal metadata (latent vectors etc.) deliberately does **not** ride
    along — it stays parked in the optimizer state on the scheduler side.
    """

    query: Query
    plan: JoinTree
    timeout: float | None = None
    #: Names the proposal this execution answers (the batched-ask protocol);
    #: stamped into the returned outcome so the scheduler can resolve
    #: proposals out of completion order.  ``None`` for q=1 callers.
    proposal_id: int | None = None


def perform_request(
    database: "Database", request: ExecutionRequest, tracer=None
) -> ExecutionOutcome:
    """Execute one request against ``database`` and shape the outcome.

    Runs wherever the backend lives (scheduler thread, pool thread, worker
    process) against *that* actor's database — so the outcome's ``cache``
    stats describe the executing actor's private execution cache, which is
    how per-worker memoization activity surfaces to the scheduler.

    With a ``tracer`` (:class:`~repro.obs.tracer.Tracer`), the execution is
    wrapped in an ``exec.run`` span annotated with the observed latency,
    censoring and cache hit — recorded into the executing actor's buffer
    (worker-side spans travel back on the outcome, see
    :mod:`repro.exec.process_pool`).
    """
    if tracer is None or not tracer.enabled:
        execution = database.execute(request.query, request.plan, timeout=request.timeout)
        return ExecutionOutcome.from_execution(
            execution, request.timeout, proposal_id=request.proposal_id
        )
    with tracer.span(
        "exec.run",
        category="exec",
        query=request.query.name,
        proposal_id=request.proposal_id,
    ) as span:
        execution = database.execute(request.query, request.plan, timeout=request.timeout)
        cache = getattr(execution, "cache", None)
        span.annotate(
            latency=execution.latency,
            timed_out=execution.timed_out,
            cache_hit=bool(cache is not None and cache.outcome_hit),
        )
    return ExecutionOutcome.from_execution(
        execution, request.timeout, proposal_id=request.proposal_id
    )


def _database_executes_batches(database: "Database") -> bool:
    """Whether ``database``'s own class implements ``execute_batch``.

    Deliberately a *class*-level check: duck-typed wrappers that add
    per-``execute`` behaviour and forward other attributes via
    ``__getattr__`` must not be treated as batch-capable — the delegated
    ``execute_batch`` would bypass their ``execute`` override.  Such
    databases fall back to per-request execution, which produces identical
    outcomes (batching only dedups work, never changes results).
    """
    return hasattr(type(database), "execute_batch")


def perform_batch(
    database: "Database", requests: list[ExecutionRequest], tracer=None
) -> list[ExecutionOutcome]:
    """Execute a same-query request batch in one pass, outcomes in order.

    When the database supports ``execute_batch`` (and the batch really is
    same-query and larger than one), shared join subtrees across the batch
    execute once; otherwise this degrades to per-request
    :func:`perform_request` calls.  Either way the outcomes are bit-for-bit
    what sequential submission would have produced.

    With a tracer, the batch is wrapped in an ``exec.batch`` span annotated
    with the shared-subtree savings, and each plan gets an ``exec.run``
    marker span whose ``follows`` attribute links it to the batch span (the
    wall-clock lives on the batch span; per-plan simulated latencies ride
    as attributes).
    """
    requests = list(requests)
    if not requests:
        return []
    query = requests[0].query
    shareable = (
        len(requests) > 1
        and _database_executes_batches(database)
        and all(request.query.name == query.name for request in requests[1:])
    )
    if not shareable:
        return [perform_request(database, request, tracer=tracer) for request in requests]
    plans = [request.plan for request in requests]
    timeouts = [request.timeout for request in requests]
    if tracer is None or not tracer.enabled:
        executions = database.execute_batch(query, plans, timeouts)
        return [
            ExecutionOutcome.from_execution(
                execution, request.timeout, proposal_id=request.proposal_id
            )
            for execution, request in zip(executions, requests)
        ]
    with tracer.span(
        "exec.batch", category="exec", query=query.name, batch_size=len(requests)
    ) as batch_span:
        executions = database.execute_batch(query, plans, timeouts)
        stats = [execution.cache for execution in executions if execution.cache is not None]
        batch_span.annotate(
            subplan_hits=sum(stat.subplan_hits for stat in stats),
            subplan_misses=sum(stat.subplan_misses for stat in stats),
        )
    outcomes = []
    for execution, request in zip(executions, requests):
        cache = getattr(execution, "cache", None)
        tracer.instant(
            "exec.run",
            category="exec",
            query=request.query.name,
            proposal_id=request.proposal_id,
            latency=execution.latency,
            timed_out=execution.timed_out,
            cache_hit=bool(cache is not None and cache.outcome_hit),
            follows=batch_span.span_id,
        )
        outcomes.append(
            ExecutionOutcome.from_execution(
                execution, request.timeout, proposal_id=request.proposal_id
            )
        )
    return outcomes


def submit_request_batch(backend, requests: list[ExecutionRequest]) -> "list[Future[ExecutionOutcome]]":
    """Submit ``requests`` through ``backend``, batched when it supports it.

    The scheduler-side entry point: backends exposing ``submit_batch``
    (inline, thread, process) receive the whole batch as one submission so
    same-query plans share subtree work; wrapper backends that deliberately
    do not (supervisor, fault injection, router — their per-request
    semantics are the point) fall back to one ``submit`` per request.
    Returns one future per request, in request order, either way.
    """
    if len(requests) > 1:
        submit_batch = getattr(backend, "submit_batch", None)
        if submit_batch is not None:
            return list(submit_batch(list(requests)))
    return [backend.submit(request) for request in requests]


def fan_out_batch(task: "Future", futures: "list[Future[ExecutionOutcome]]") -> None:
    """Resolve per-request ``futures`` from one pooled batch task.

    A batch-level failure is delivered to every sibling future — per-plan
    attribution is lost, but the scheduler aborts the run on the first
    failed future regardless, and all siblings belong to the same query.
    Futures the scheduler already cancelled are left alone.
    """

    def _deliver(done: "Future") -> None:
        try:
            error = done.exception()
        except BaseException as exc:  # noqa: BLE001 - CancelledError and friends
            error = exc
        for index, future in enumerate(futures):
            if future.done():
                continue
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(done.result()[index])

    task.add_done_callback(_deliver)


@runtime_checkable
class ExecutionBackend(Protocol):
    """Where plan executions physically run."""

    name: str

    def capacity(self) -> int:
        """How many executions the backend can usefully hold in flight."""

    def submit(self, request: ExecutionRequest) -> "Future[ExecutionOutcome]":
        """Schedule one execution; the future resolves to its outcome."""

    def healthy(self) -> bool:
        """Whether the backend can currently accept work."""

    def close(self) -> None:
        """Release pools/processes.  Idempotent."""


class InlineBackend:
    """Execute on the caller's thread — the pre-subsystem behaviour.

    ``submit`` runs the plan synchronously and returns an already-resolved
    future, so a sequential scheduler drains queries bit-for-bit identically
    to the old private loops: same ``database.execute`` calls, same thread,
    same order.
    """

    name = "inline"

    def __init__(self, database: "Database", tracer=None) -> None:
        self.database = database
        self.tracer = tracer

    def capacity(self) -> int:
        return 1

    def submit(self, request: ExecutionRequest) -> "Future[ExecutionOutcome]":
        future: Future[ExecutionOutcome] = Future()
        try:
            future.set_result(perform_request(self.database, request, tracer=self.tracer))
        except BaseException as exc:  # noqa: BLE001 - delivered via the future
            future.set_exception(exc)
        return future

    def submit_batch(
        self, requests: list[ExecutionRequest]
    ) -> "list[Future[ExecutionOutcome]]":
        """Execute a same-query batch synchronously in one pass (see :func:`perform_batch`)."""
        futures: list[Future[ExecutionOutcome]] = [Future() for _ in requests]
        try:
            outcomes = perform_batch(self.database, requests, tracer=self.tracer)
        except BaseException as exc:  # noqa: BLE001 - delivered via the futures
            for future in futures:
                future.set_exception(exc)
        else:
            for future, outcome in zip(futures, outcomes):
                future.set_result(outcome)
        return futures

    def healthy(self) -> bool:
        return True

    def close(self) -> None:
        pass


class ThreadPoolBackend:
    """Execute on a thread pool — overlaps *waiting* (DBMS round-trips).

    Threads share the GIL, so this backend only helps when executions block
    (network round-trips to a real DBMS); for CPU-bound simulated executions
    use the process backend.  The pool is created lazily on first submit and
    is safe to close and never use.
    """

    name = "thread"

    def __init__(self, database: "Database", max_workers: int = 4, tracer=None) -> None:
        if max_workers < 1:
            raise OptimizationError("max_workers must be at least 1")
        self.database = database
        #: Shared with pool threads — :class:`~repro.obs.tracer.Tracer` id
        #: allocation is lock-protected, so concurrent recording is safe.
        self.tracer = tracer
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    def capacity(self) -> int:
        return self._max_workers

    def submit(self, request: ExecutionRequest) -> "Future[ExecutionOutcome]":
        if self._closed:
            raise OptimizationError("backend is closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers, thread_name_prefix="repro-exec"
            )
        return self._pool.submit(perform_request, self.database, request, self.tracer)

    def submit_batch(
        self, requests: list[ExecutionRequest]
    ) -> "list[Future[ExecutionOutcome]]":
        """Run a same-query batch as one pool task (one pass over shared subtrees).

        Simulated executions are CPU-bound, so sibling requests would have
        serialized on the GIL anyway — collapsing them into one task trades
        no parallelism and buys the batch dedup.
        """
        requests = list(requests)
        if len(requests) == 1:
            return [self.submit(requests[0])]
        if self._closed:
            raise OptimizationError("backend is closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers, thread_name_prefix="repro-exec"
            )
        futures: list[Future[ExecutionOutcome]] = [Future() for _ in requests]
        task = self._pool.submit(perform_batch, self.database, requests, self.tracer)
        fan_out_batch(task, futures)
        return futures

    def healthy(self) -> bool:
        return not self._closed

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
