"""The execution-backend contract plus the in-process implementations.

A backend turns an :class:`ExecutionRequest` (query + plan + timeout) into a
:class:`~concurrent.futures.Future` resolving to an
:class:`~repro.core.protocol.ExecutionOutcome`.  The scheduler
(:class:`~repro.harness.runner.WorkloadSession`) neither knows nor cares
where the execution happens — on the scheduler thread
(:class:`InlineBackend`), on a thread pool that overlaps DBMS waiting
(:class:`ThreadPoolBackend`), in worker processes holding warm database
replicas (:class:`~repro.exec.process_pool.ProcessPoolBackend`), or fanned
out over several independent backends
(:class:`~repro.exec.router.MultiBackendRouter`).
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.protocol import ExecutionOutcome
from repro.db.query import Query
from repro.exceptions import OptimizationError
from repro.plans.jointree import JoinTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.engine import Database


class TransientBackendError(OptimizationError):
    """A retryable infrastructure failure (network blip, evicted worker, ...).

    Says nothing about the plan that was executing: the same request submitted
    again may well succeed.  The supervision layer
    (:class:`~repro.exec.supervisor.SupervisedBackend`) retries these with
    backoff, and the :class:`~repro.exec.router.MultiBackendRouter` charges
    them against the failing member's health budget — exactly like a
    :class:`~concurrent.futures.BrokenExecutor`.
    """


def is_infra_failure(exc: BaseException) -> bool:
    """Whether ``exc`` is an infrastructure failure rather than a plan error.

    Infrastructure failures (a worker process died, a transient backend
    error, a supervision deadline expired) are retryable: the plan itself is
    not implicated.  Everything else — the plan genuinely failing to execute —
    must propagate to the scheduler untouched.
    """
    return isinstance(exc, (BrokenExecutor, TransientBackendError))


@dataclass(frozen=True)
class ExecutionRequest:
    """One plan execution the scheduler wants performed.

    The request is the unit that crosses the backend boundary, so everything
    in it must stay picklable: :class:`~repro.db.query.Query` and
    :class:`~repro.plans.jointree.JoinTree` are plain data, and the outcome
    travels back as the equally plain
    :class:`~repro.core.protocol.ExecutionOutcome`.  Technique-private
    proposal metadata (latent vectors etc.) deliberately does **not** ride
    along — it stays parked in the optimizer state on the scheduler side.
    """

    query: Query
    plan: JoinTree
    timeout: float | None = None
    #: Names the proposal this execution answers (the batched-ask protocol);
    #: stamped into the returned outcome so the scheduler can resolve
    #: proposals out of completion order.  ``None`` for q=1 callers.
    proposal_id: int | None = None


def perform_request(
    database: "Database", request: ExecutionRequest, tracer=None
) -> ExecutionOutcome:
    """Execute one request against ``database`` and shape the outcome.

    Runs wherever the backend lives (scheduler thread, pool thread, worker
    process) against *that* actor's database — so the outcome's ``cache``
    stats describe the executing actor's private execution cache, which is
    how per-worker memoization activity surfaces to the scheduler.

    With a ``tracer`` (:class:`~repro.obs.tracer.Tracer`), the execution is
    wrapped in an ``exec.run`` span annotated with the observed latency,
    censoring and cache hit — recorded into the executing actor's buffer
    (worker-side spans travel back on the outcome, see
    :mod:`repro.exec.process_pool`).
    """
    if tracer is None or not tracer.enabled:
        execution = database.execute(request.query, request.plan, timeout=request.timeout)
        return ExecutionOutcome.from_execution(
            execution, request.timeout, proposal_id=request.proposal_id
        )
    with tracer.span(
        "exec.run",
        category="exec",
        query=request.query.name,
        proposal_id=request.proposal_id,
    ) as span:
        execution = database.execute(request.query, request.plan, timeout=request.timeout)
        cache = getattr(execution, "cache", None)
        span.annotate(
            latency=execution.latency,
            timed_out=execution.timed_out,
            cache_hit=bool(cache is not None and cache.outcome_hit),
        )
    return ExecutionOutcome.from_execution(
        execution, request.timeout, proposal_id=request.proposal_id
    )


@runtime_checkable
class ExecutionBackend(Protocol):
    """Where plan executions physically run."""

    name: str

    def capacity(self) -> int:
        """How many executions the backend can usefully hold in flight."""

    def submit(self, request: ExecutionRequest) -> "Future[ExecutionOutcome]":
        """Schedule one execution; the future resolves to its outcome."""

    def healthy(self) -> bool:
        """Whether the backend can currently accept work."""

    def close(self) -> None:
        """Release pools/processes.  Idempotent."""


class InlineBackend:
    """Execute on the caller's thread — the pre-subsystem behaviour.

    ``submit`` runs the plan synchronously and returns an already-resolved
    future, so a sequential scheduler drains queries bit-for-bit identically
    to the old private loops: same ``database.execute`` calls, same thread,
    same order.
    """

    name = "inline"

    def __init__(self, database: "Database", tracer=None) -> None:
        self.database = database
        self.tracer = tracer

    def capacity(self) -> int:
        return 1

    def submit(self, request: ExecutionRequest) -> "Future[ExecutionOutcome]":
        future: Future[ExecutionOutcome] = Future()
        try:
            future.set_result(perform_request(self.database, request, tracer=self.tracer))
        except BaseException as exc:  # noqa: BLE001 - delivered via the future
            future.set_exception(exc)
        return future

    def healthy(self) -> bool:
        return True

    def close(self) -> None:
        pass


class ThreadPoolBackend:
    """Execute on a thread pool — overlaps *waiting* (DBMS round-trips).

    Threads share the GIL, so this backend only helps when executions block
    (network round-trips to a real DBMS); for CPU-bound simulated executions
    use the process backend.  The pool is created lazily on first submit and
    is safe to close and never use.
    """

    name = "thread"

    def __init__(self, database: "Database", max_workers: int = 4, tracer=None) -> None:
        if max_workers < 1:
            raise OptimizationError("max_workers must be at least 1")
        self.database = database
        #: Shared with pool threads — :class:`~repro.obs.tracer.Tracer` id
        #: allocation is lock-protected, so concurrent recording is safe.
        self.tracer = tracer
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    def capacity(self) -> int:
        return self._max_workers

    def submit(self, request: ExecutionRequest) -> "Future[ExecutionOutcome]":
        if self._closed:
            raise OptimizationError("backend is closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers, thread_name_prefix="repro-exec"
            )
        return self._pool.submit(perform_request, self.database, request, self.tracer)

    def healthy(self) -> bool:
        return not self._closed

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
