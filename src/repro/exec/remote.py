"""The fabric wire protocol + the coordinator-side remote node backend.

The distributed execution fabric (:mod:`repro.exec.fabric`) spreads plan
executions over shared-nothing node processes (:mod:`repro.exec.node`).  This
module owns the boundary between coordinator and node:

**Wire format** — length-prefixed pickle frames: an 8-byte big-endian size
header followed by a ``pickle.dumps`` payload.  Every frame is a plain tuple
whose first element names its kind, so the protocol stays versionable and the
payload types are exactly the ones already proven pickle-clean across the
process-pool boundary (:class:`~repro.exec.backend.ExecutionRequest` parts,
:class:`~repro.core.protocol.ExecutionOutcome`,
:class:`~repro.exec.process_pool.RemoteExecutionError`, outcome-cache event
logs).

Coordinator -> node frames::

    ("hello", version)                      handshake probe
    ("replica", db, queries, warmup, trace, events)   ship the replica
    ("execute", task_id, query|name, plan, timeout, proposal_id, events)
    ("execute_batch", task_id, query|name, items, events)
    ("ping", seq)                           heartbeat
    ("shutdown",)                           graceful node exit
    ("die",)                                chaos: immediate ``os._exit(1)``

Node -> coordinator frames::

    ("hello_ack", version, has_replica, signature)
    ("replica_ack", signature)
    ("outcome", task_id, outcome, events, stats)
    ("outcome_batch", task_id, outcomes, events, stats)
    ("error", task_id, exception)
    ("pong", seq)

``events`` are :meth:`~repro.db.plan_cache.ExecutionCache.export_outcomes`
entries riding along in both directions — the cross-node cache protocol.

**:class:`RemoteNodeBackend`** — the coordinator's client for one node.  It
implements the :class:`~repro.exec.backend.ExecutionBackend` protocol and
owns the node's liveness: a receiver thread resolves in-flight futures from
reply frames, a monitor thread pings on ``heartbeat_interval`` and declares
the node lost when no frame arrives within ``heartbeat_timeout``, failing all
in-flight futures with :class:`NodeLostError` (a
:class:`~repro.exec.backend.TransientBackendError`, so the fabric reassigns
the leases) and reconnecting with exponential backoff.  A node that cannot be
reached for ``respawn_after`` consecutive attempts is restarted through the
injected ``restarter`` (the localhost deployment's process supervisor).
Reconnect handshakes are cheap: a node that still holds a replica with the
expected data signature is *not* re-shipped the database.

Chaos hooks (:meth:`inject_drop` / :meth:`inject_partition` /
:meth:`inject_kill`) simulate network faults at this boundary: a partition
blackholes frames in both directions without closing the socket, so recovery
genuinely goes through the heartbeat deadline rather than a convenient EOF.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.protocol import ExecutionOutcome
from repro.db.query import Query
from repro.exceptions import OptimizationError
from repro.exec.backend import ExecutionRequest, TransientBackendError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.engine import Database

#: Bumped when the frame layout changes; mismatched peers refuse to pair.
PROTOCOL_VERSION = 1

_HEADER = struct.Struct(">Q")

#: Sanity bound on one frame (a pickled database replica fits comfortably).
MAX_FRAME_BYTES = 1 << 31

#: Cache events piggybacked per request frame, so replication never bloats
#: the request path; the remainder rides on later frames.
EVENTS_PER_FRAME = 512

#: Per-node piggyback pool bound — overflow drops the *oldest* events, which
#: only costs replication coverage, never correctness (caches are upserts).
EVENT_POOL_LIMIT = 8192


class ProtocolError(OptimizationError):
    """A peer sent a frame this side cannot understand."""


class NodeLostError(TransientBackendError):
    """The link to an execution node died with requests in flight.

    Classified as infrastructure (retryable): the plan is not implicated, the
    fabric reassigns the request's lease to a surviving node, and the
    supervisor's retry budget applies if the fabric itself gives up.
    """


# ------------------------------------------------------------------ framing
def send_frame(sock: socket.socket, payload: object, lock: "threading.Lock | None" = None) -> None:
    """Pickle ``payload`` and write it as one length-prefixed frame.

    Serialization happens *before* any byte is written, so a pickling failure
    never tears the stream; with ``lock`` the write is atomic against other
    senders on the same socket (node-side pong/outcome interleaving).
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(blob)} bytes exceeds the {MAX_FRAME_BYTES} cap")
    data = _HEADER.pack(len(blob)) + blob
    if lock is None:
        sock.sendall(data)
    else:
        with lock:
            sock.sendall(data)


def _teardown(sock: socket.socket) -> None:
    """Tear a link down so *blocked* readers wake and the peer sees EOF.

    ``close()`` alone is not enough: a thread blocked in ``recv`` holds the
    underlying connection open, so the FIN never leaves and the peer (the
    node's per-connection reader) never returns to its accept loop.
    ``shutdown`` fires the FIN immediately and unblocks the local reader.
    """
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            raise ConnectionError("socket closed mid-frame")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> object:
    """Read one length-prefixed pickle frame (blocking)."""
    size = _HEADER.unpack(_recv_exact(sock, _HEADER.size))[0]
    if size > MAX_FRAME_BYTES:
        raise ProtocolError(f"incoming frame of {size} bytes exceeds the {MAX_FRAME_BYTES} cap")
    return pickle.loads(_recv_exact(sock, size))


# ------------------------------------------------------------------ counters
@dataclass
class RemoteNodeCounters:
    """What one node link went through, for health reports."""

    connects: int = 0
    losses: int = 0
    reconnect_attempts: int = 0
    respawns: int = 0
    tasks_sent: int = 0
    outcomes: int = 0
    remote_errors: int = 0
    pongs: int = 0
    events_shipped: int = 0
    events_received: int = 0
    dropped_frames: int = 0

    def snapshot(self) -> dict:
        return {
            "connects": self.connects,
            "losses": self.losses,
            "reconnect_attempts": self.reconnect_attempts,
            "respawns": self.respawns,
            "tasks_sent": self.tasks_sent,
            "outcomes": self.outcomes,
            "remote_errors": self.remote_errors,
            "pongs": self.pongs,
            "events_shipped": self.events_shipped,
            "events_received": self.events_received,
            "dropped_frames": self.dropped_frames,
        }


class RemoteNodeBackend:
    """Coordinator-side client for one execution node process.

    Parameters
    ----------
    address:
        ``(host, port)`` the node listens on.
    database:
        The replica shipped to the node on (re)handshake.  Must be picklable.
    queries:
        Queries registered with the node; registered queries travel by *name*
        per task, exactly like the process pool.
    heartbeat_interval / heartbeat_timeout:
        Ping cadence and the liveness deadline: no frame for
        ``heartbeat_timeout`` seconds declares the node lost.
    reconnect_base / reconnect_max:
        Exponential backoff between reconnect attempts after a loss.
    respawn_after:
        Consecutive failed reconnects before ``restarter`` is invoked.
    restarter:
        Optional zero-argument callable that restarts the node process and
        returns its new ``(host, port)`` (or ``None`` to keep the old one).
    """

    def __init__(
        self,
        address: tuple,
        database: "Database",
        queries: "list[Query] | None" = None,
        *,
        node_id: int = 0,
        warmup: bool = True,
        trace: bool = False,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float = 2.0,
        reconnect_base: float = 0.05,
        reconnect_max: float = 2.0,
        handshake_timeout: float = 60.0,
        respawn_after: int = 4,
        restarter: "Callable[[], tuple | None] | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if heartbeat_interval <= 0:
            raise OptimizationError("heartbeat_interval must be positive")
        if heartbeat_timeout <= heartbeat_interval:
            raise OptimizationError("heartbeat_timeout must exceed heartbeat_interval")
        if reconnect_base <= 0 or reconnect_max < reconnect_base:
            raise OptimizationError("reconnect backoff must satisfy 0 < base <= max")
        if respawn_after < 1:
            raise OptimizationError("respawn_after must be at least 1")
        self.address = tuple(address)
        self.database = database
        self.name = f"node[{node_id}]"
        self.node_id = node_id
        self._queries = tuple(queries or ())
        self._registered = {query.name for query in self._queries}
        self._warmup = warmup
        self._trace = trace
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.reconnect_base = reconnect_base
        self.reconnect_max = reconnect_max
        self.handshake_timeout = handshake_timeout
        self.respawn_after = respawn_after
        self.restarter = restarter
        self.counters = RemoteNodeCounters()
        #: The node's data signature from the last handshake (guards cache
        #: replication and decides whether a reconnect must re-ship the db).
        self.signature: tuple | None = None
        #: Latest node-side stats dict (shipped-log hits etc.) off replies.
        self.node_stats: dict = {}
        #: Set by the fabric: called with ``(self, events)`` when a reply
        #: carries fresh cache events.
        self.on_events: "Callable[[RemoteNodeBackend, list], None] | None" = None
        self._clock = clock
        self._lock = threading.RLock()
        self._send_lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._live = False
        self._closed = False
        self._epoch = 0
        self._next_task = 0
        self._pending: dict[int, list[Future]] = {}
        self._event_pool: deque = deque()
        self._last_seen = 0.0
        self._last_ping = 0.0
        self._lost_since: float | None = None
        self._connect_failures = 0
        self._next_reconnect = 0.0
        self._partitioned_until = 0.0
        self._partition_pending = False
        self._listeners: list[Callable[[], None]] = []
        self._monitor: threading.Thread | None = None

    # ------------------------------------------------------------------ backend protocol
    def capacity(self) -> int:
        # One executor loop per node: the fabric's central queue provides the
        # pipelining, so a straggler never hoards queued work.
        return 1

    def healthy(self) -> bool:
        return not self._closed and self._live

    def submit(self, request: ExecutionRequest) -> "Future[ExecutionOutcome]":
        if self._closed:
            raise OptimizationError("backend is closed")
        future: "Future[ExecutionOutcome]" = Future()
        payload: Query | str = (
            request.query.name if request.query.name in self._registered else request.query
        )
        with self._lock:
            if not self._live:
                future.set_exception(NodeLostError(f"{self.name} is not connected"))
                return future
            task_id = self._next_task
            self._next_task += 1
            self._pending[task_id] = [future]
        events = self.take_events()
        frame = (
            "execute",
            task_id,
            payload,
            request.plan,
            request.timeout,
            request.proposal_id,
            events,
        )
        self._transmit_task(task_id, frame, [future], events)
        return future

    def submit_batch(
        self, requests: "list[ExecutionRequest]"
    ) -> "list[Future[ExecutionOutcome]]":
        """Ship a same-query batch as one node task (one-pass shared subtrees)."""
        requests = list(requests)
        if len(requests) == 1:
            return [self.submit(requests[0])]
        if self._closed:
            raise OptimizationError("backend is closed")
        futures: "list[Future[ExecutionOutcome]]" = [Future() for _ in requests]
        query = requests[0].query
        payload: Query | str = query.name if query.name in self._registered else query
        with self._lock:
            if not self._live:
                error = NodeLostError(f"{self.name} is not connected")
                for future in futures:
                    future.set_exception(error)
                return futures
            task_id = self._next_task
            self._next_task += 1
            self._pending[task_id] = futures
        items = [(request.plan, request.timeout, request.proposal_id) for request in requests]
        events = self.take_events()
        frame = ("execute_batch", task_id, payload, items, events)
        self._transmit_task(task_id, frame, futures, events)
        return futures

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._live = False
            self._epoch += 1
            sock, self._sock = self._sock, None
            pending = list(self._pending.values())
            self._pending.clear()
        if sock is not None:
            try:
                send_frame(sock, ("shutdown",), lock=self._send_lock)
            except Exception:  # noqa: BLE001 - best-effort goodbye
                pass
            _teardown(sock)
        error = OptimizationError(f"{self.name} closed with requests in flight")
        for futures in pending:
            for future in futures:
                _settle(future, exc=error)

    # ------------------------------------------------------------------ connection lifecycle
    def connect(self) -> None:
        """Establish the link (handshake, receiver, monitor); raises on failure.

        Failure leaves the background monitor running, so a node that comes
        up later still joins — callers that need the node *now* treat the
        raise as fatal, the fabric treats it as "not yet".
        """
        try:
            self._connect_once()
        finally:
            self._ensure_monitor()

    def _connect_once(self) -> None:
        if self._closed:
            raise OptimizationError("backend is closed")
        sock = socket.create_connection(self.address, timeout=self.handshake_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.handshake_timeout)
            send_frame(sock, ("hello", PROTOCOL_VERSION))
            ack = recv_frame(sock)
            if not (isinstance(ack, tuple) and len(ack) == 4 and ack[0] == "hello_ack"):
                raise ProtocolError(f"unexpected handshake reply {ack!r}")
            _, version, has_replica, signature = ack
            if version != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"node speaks protocol {version}, coordinator speaks {PROTOCOL_VERSION}"
                )
            if not has_replica or (self.signature is not None and signature != self.signature):
                # Fresh (or mismatched) node: ship the replica, primed with
                # the coordinator cache's replayable outcome logs.
                send_frame(
                    sock,
                    ("replica", self.database, self._queries, self._warmup, self._trace,
                     self._initial_events()),
                )
                ack = recv_frame(sock)
                if not (isinstance(ack, tuple) and len(ack) == 2 and ack[0] == "replica_ack"):
                    raise ProtocolError(f"unexpected replica reply {ack!r}")
                signature = ack[1]
            sock.settimeout(None)
        except BaseException:
            sock.close()
            raise
        with self._lock:
            self._epoch += 1
            epoch = self._epoch
            self._sock = sock
            self._live = True
            self._lost_since = None
            self._connect_failures = 0
            now = self._clock()
            self._last_seen = now
            self._last_ping = now
            self.signature = signature
            self.counters.connects += 1
        receiver = threading.Thread(
            target=self._receive_loop, args=(sock, epoch), name=f"{self.name}-recv", daemon=True
        )
        receiver.start()
        self._notify()

    def _connection_lost(self, reason: str) -> None:
        with self._lock:
            if not self._live:
                return
            self._live = False
            self._epoch += 1
            sock, self._sock = self._sock, None
            pending = list(self._pending.values())
            self._pending.clear()
            self._lost_since = self._clock()
            self._next_reconnect = self._clock()
            self.counters.losses += 1
        if sock is not None:
            _teardown(sock)
        error = NodeLostError(f"{self.name} lost: {reason}")
        for futures in pending:
            for future in futures:
                _settle(future, exc=error)
        self._notify()

    # ------------------------------------------------------------------ sending
    def _transmit_task(
        self, task_id: int, frame: tuple, futures: "list[Future]", events: list
    ) -> None:
        try:
            self._send(frame)
        except (pickle.PicklingError, TypeError) as exc:
            # Serialization failed before any byte hit the wire: the request
            # itself is unshippable — a genuine error, not a node loss.
            with self._lock:
                self._pending.pop(task_id, None)
            for future in futures:
                _settle(future, exc=exc)
            return
        except Exception as exc:  # noqa: BLE001 - transport failure
            self._connection_lost(f"send failed: {type(exc).__name__}: {exc}")
            return
        self.counters.tasks_sent += 1
        if events:
            self.counters.events_shipped += len(events)

    def _send(self, frame: tuple, force: bool = False) -> None:
        if not force and self.partitioned():
            # Simulated partition: the frame enters the blackhole.
            self.counters.dropped_frames += 1
            return
        with self._lock:
            sock = self._sock
        if sock is None:
            raise ConnectionError("not connected")
        send_frame(sock, frame, lock=self._send_lock)

    # ------------------------------------------------------------------ receiving
    def _receive_loop(self, sock: socket.socket, epoch: int) -> None:
        while True:
            try:
                frame = recv_frame(sock)
            except Exception:  # noqa: BLE001 - any transport error ends the link
                break
            with self._lock:
                if self._closed or epoch != self._epoch:
                    return
                if not self.partitioned():
                    self._last_seen = self._clock()
            if self.partitioned():
                # Inbound leg of the blackhole: the reply is lost too.
                self.counters.dropped_frames += 1
                continue
            try:
                self._handle(frame)
            except Exception:  # noqa: BLE001 - a poisoned frame ends the link
                break
        with self._lock:
            stale = self._closed or epoch != self._epoch
        if not stale:
            self._connection_lost("connection closed by node")

    def _handle(self, frame: object) -> None:
        if not isinstance(frame, tuple) or not frame:
            raise ProtocolError(f"malformed frame {frame!r}")
        kind = frame[0]
        if kind == "pong":
            self.counters.pongs += 1
            return
        if kind == "outcome":
            _, task_id, outcome, events, stats = frame
            self._absorb(events, stats)
            with self._lock:
                futures = self._pending.pop(task_id, None)
            if futures:
                self.counters.outcomes += 1
                _settle(futures[0], result=outcome)
            return
        if kind == "outcome_batch":
            _, task_id, outcomes, events, stats = frame
            self._absorb(events, stats)
            with self._lock:
                futures = self._pending.pop(task_id, None)
            if futures:
                self.counters.outcomes += len(outcomes)
                for future, outcome in zip(futures, outcomes):
                    _settle(future, result=outcome)
            return
        if kind == "error":
            _, task_id, exc = frame
            with self._lock:
                futures = self._pending.pop(task_id, None)
            if futures:
                self.counters.remote_errors += 1
                for future in futures:
                    _settle(future, exc=exc)
            return
        # Unknown frame kinds are ignored for forward compatibility.

    def _absorb(self, events: list, stats: dict) -> None:
        if stats:
            self.node_stats = dict(stats)
        if events:
            self.counters.events_received += len(events)
            callback = self.on_events
            if callback is not None:
                callback(self, list(events))

    # ------------------------------------------------------------------ liveness monitor
    def _ensure_monitor(self) -> None:
        with self._lock:
            if self._closed:
                return
            if self._monitor is None or not self._monitor.is_alive():
                self._monitor = threading.Thread(
                    target=self._monitor_loop, name=f"{self.name}-monitor", daemon=True
                )
                self._monitor.start()

    def _monitor_loop(self) -> None:
        tick = max(0.005, min(0.05, self.heartbeat_interval / 4.0))
        while not self._closed:
            time.sleep(tick)
            if self._closed:
                return
            now = self._clock()
            if self._partition_pending and now >= self._partitioned_until:
                # The blackhole dropped frames; the surviving socket cannot be
                # trusted to carry a consistent stream — reset the link.
                self._partition_pending = False
                self._connection_lost("partition healed; resetting the link")
                continue
            if self._live:
                if now - self._last_seen > self.heartbeat_timeout:
                    self._connection_lost(
                        f"no frame for {self.heartbeat_timeout:.2f}s (heartbeat deadline)"
                    )
                elif now - self._last_ping >= self.heartbeat_interval:
                    self._last_ping = now
                    try:
                        self._send(("ping", int(now * 1000)))
                    except Exception:  # noqa: BLE001 - transport failure
                        self._connection_lost("ping send failed")
                continue
            # Lost: reconnect with exponential backoff (blocked while the
            # simulated partition is still in force).
            if self.partitioned() or now < self._next_reconnect:
                continue
            self.counters.reconnect_attempts += 1
            try:
                self._connect_once()
            except Exception:  # noqa: BLE001 - node still unreachable
                with self._lock:
                    self._connect_failures += 1
                    failures = self._connect_failures
                delay = min(
                    self.reconnect_max, self.reconnect_base * (2.0 ** min(failures, 16))
                )
                self._next_reconnect = self._clock() + delay
                if self.restarter is not None and failures >= self.respawn_after:
                    self._respawn()

    def _respawn(self) -> None:
        try:
            address = self.restarter()  # type: ignore[misc]
        except Exception:  # noqa: BLE001 - supervisor failed; keep backing off
            return
        if address:
            self.address = tuple(address)
        # The fresh process has no replica, so the next handshake re-ships it.
        self.signature = None
        self.counters.respawns += 1
        with self._lock:
            self._connect_failures = 0
        self._next_reconnect = self._clock()

    # ------------------------------------------------------------------ cache piggyback pool
    def offer_events(self, events: list) -> None:
        """Queue cache events to piggyback on this node's next request frame."""
        with self._lock:
            self._event_pool.extend(events)
            while len(self._event_pool) > EVENT_POOL_LIMIT:
                self._event_pool.popleft()

    def take_events(self, limit: int = EVENTS_PER_FRAME) -> list:
        with self._lock:
            taken = []
            while self._event_pool and len(taken) < limit:
                taken.append(self._event_pool.popleft())
        return taken

    # ------------------------------------------------------------------ chaos hooks
    def partitioned(self) -> bool:
        return self._clock() < self._partitioned_until

    def inject_drop(self) -> None:
        """Sever the connection abruptly (reconnect begins immediately)."""
        self._connection_lost("injected connection drop")

    def inject_partition(self, seconds: float) -> None:
        """Blackhole both directions for ``seconds`` without closing the socket.

        Liveness must come from the heartbeat deadline; reconnects stay
        blocked until the partition heals.
        """
        with self._lock:
            self._partitioned_until = self._clock() + seconds
            self._partition_pending = True

    def inject_kill(self) -> None:
        """Kill the node process (``("die",)`` -> ``os._exit``); respawn applies."""
        try:
            self._send(("die",), force=True)
        except Exception:  # noqa: BLE001 - already unreachable is fine
            pass
        self._connection_lost("injected node kill")

    # ------------------------------------------------------------------ introspection
    def add_listener(self, callback: Callable[[], None]) -> None:
        """Register a callback fired on live/lost transitions (fabric wakeups)."""
        self._listeners.append(callback)

    def _notify(self) -> None:
        for callback in list(self._listeners):
            try:
                callback()
            except Exception:  # noqa: BLE001 - listeners must not kill the link
                pass

    def status(self) -> dict:
        with self._lock:
            pending = sum(len(futures) for futures in self._pending.values())
            lost_for = (
                None
                if self._live or self._lost_since is None
                else round(self._clock() - self._lost_since, 3)
            )
            report = {
                "name": self.name,
                "address": list(self.address),
                "live": self._live,
                "pending": pending,
                "lost_for": lost_for,
                "partitioned": self.partitioned(),
                "node": dict(self.node_stats),
            }
            report.update(self.counters.snapshot())
        return report

    def _initial_events(self) -> list:
        cache = getattr(self.database, "execution_cache", None)
        if cache is None or not hasattr(cache, "export_outcomes"):
            return []
        try:
            return cache.export_outcomes()
        except Exception:  # noqa: BLE001 - priming is best-effort
            return []


def _settle(future: Future, result=None, exc=None) -> None:
    """Complete a future exactly once, tolerating scheduler-side cancels.

    Single settlement is what makes "never double-charged" structural: a late
    reply for a lease that was already reassigned finds the future settled
    (or its task id already dropped) and is discarded.
    """
    try:
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass
