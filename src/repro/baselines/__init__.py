"""Baseline offline-optimization techniques: Bao, Random, Balsa and LimeQO."""

from repro.baselines.balsa import BalsaConfig, BalsaOptimizer, PlanFeaturizer
from repro.baselines.bao import BaoOptimizer, BaoOutcome, bao_best_latency
from repro.baselines.limeqo import LimeQOConfig, LimeQOOptimizer, complete_matrix
from repro.baselines.random_search import RandomSearch

__all__ = [
    "BalsaConfig",
    "BalsaOptimizer",
    "BaoOptimizer",
    "BaoOutcome",
    "LimeQOConfig",
    "LimeQOOptimizer",
    "PlanFeaturizer",
    "RandomSearch",
    "bao_best_latency",
    "complete_matrix",
]
