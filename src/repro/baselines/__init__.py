"""Baseline offline-optimization techniques: Bao, Random, Balsa and LimeQO.

Importing this package registers every baseline with the technique registry
(:mod:`repro.core.registry`); all of them implement the ask/tell protocol of
:mod:`repro.core.protocol` and are driven by the harness's WorkloadSession.
"""

from repro.baselines.balsa import BalsaConfig, BalsaOptimizer, BalsaState, PlanFeaturizer
from repro.baselines.bao import BaoOptimizer, BaoOutcome, BaoState, bao_best_latency
from repro.baselines.limeqo import (
    LimeQOConfig,
    LimeQOOptimizer,
    LimeQOWorkloadState,
    complete_matrix,
)
from repro.baselines.random_search import RandomSearch, RandomSearchState

__all__ = [
    "BalsaConfig",
    "BalsaOptimizer",
    "BalsaState",
    "BaoOptimizer",
    "BaoOutcome",
    "BaoState",
    "LimeQOConfig",
    "LimeQOOptimizer",
    "LimeQOWorkloadState",
    "PlanFeaturizer",
    "RandomSearch",
    "RandomSearchState",
    "bao_best_latency",
    "complete_matrix",
]
