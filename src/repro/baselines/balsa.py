"""A simplified Balsa: reinforcement-learning-style plan search.

Balsa (Yang et al., SIGMOD 2022) learns a value network from its own plan
executions and uses it to steer plan construction, balancing exploration and
exploitation to minimize cumulative regret.  This reproduction keeps the
ingredients the paper's comparison relies on:

* a value network (an MLP over plan features) trained on executed plans,
* epsilon-greedy selection between exploiting the value network's favourite
  candidate and exploring random plans,
* a constant timeout multiplier (``S = 1.5``, the setting the paper found to
  work best),
* training labels for timed-out plans equal to the timeout, which — as the
  paper points out — makes the model systematically underestimate bad plans,
* a bias toward re-visiting plans it already believes to be good (the regret
  minimizing behaviour that makes RL a poor fit for offline optimization;
  exact duplicates are served from a plan cache and do not consume budget,
  matching the paper's experimental setup).

Its training set is seeded with the Bao hint-set plans, as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.result import OptimizationResult
from repro.db.engine import Database
from repro.db.query import Query
from repro.nn.layers import Sequential, mlp
from repro.nn.losses import mse
from repro.nn.optim import Adam
from repro.plans.hints import bao_hint_sets
from repro.plans.jointree import JOIN_OPS, JoinTree
from repro.plans.sampling import random_join_tree

_MIN_LATENCY = 1e-6


@dataclass
class BalsaConfig:
    """Hyper-parameters of the simplified Balsa agent."""

    timeout_multiplier: float = 1.5
    epsilon: float = 0.2
    exploit_probability: float = 0.15
    candidates_per_step: int = 40
    retrain_every: int = 8
    training_epochs: int = 30
    hidden: int = 64
    learning_rate: float = 5e-3
    seed: int = 0


class PlanFeaturizer:
    """Fixed-length feature vectors for (query, plan) pairs.

    Features: adjacency of base tables joined directly at some node, operator
    counts, tree depth and left-deepness — a simplified version of Balsa's tree
    convolution featurization that still separates good plans from bad ones.
    """

    def __init__(self, database: Database) -> None:
        self.tables = sorted(database.schema.table_names)
        self.table_index = {table: i for i, table in enumerate(self.tables)}
        count = len(self.tables)
        self.dim = count * count + len(JOIN_OPS) + 3

    def featurize(self, query: Query, plan: JoinTree) -> np.ndarray:
        count = len(self.tables)
        adjacency = np.zeros((count, count))
        for left_set, right_set, _ in plan.join_pairs():
            for left_alias in left_set:
                for right_alias in right_set:
                    i = self.table_index[query.table_of(left_alias)]
                    j = self.table_index[query.table_of(right_alias)]
                    adjacency[i, j] += 1.0
                    adjacency[j, i] += 1.0
        op_counts = np.zeros(len(JOIN_OPS))
        for op in plan.operators():
            op_counts[JOIN_OPS.index(op)] += 1.0
        extras = np.array(
            [plan.depth(), float(plan.is_left_deep()), plan.num_joins], dtype=np.float64
        )
        return np.concatenate([adjacency.reshape(-1), op_counts, extras])


class BalsaOptimizer:
    """Offline optimization with a regret-minimizing RL-style agent."""

    def __init__(self, database: Database, config: BalsaConfig | None = None) -> None:
        self.database = database
        self.config = config or BalsaConfig()
        self.featurizer = PlanFeaturizer(database)
        self._rng = np.random.default_rng(self.config.seed)
        self._model: Sequential | None = None

    # ------------------------------------------------------------------ value network
    def _build_model(self) -> Sequential:
        return mlp(self.featurizer.dim, [self.config.hidden, self.config.hidden], 1,
                   rng=np.random.default_rng(self.config.seed))

    def _train(self, features: np.ndarray, targets: np.ndarray) -> None:
        self._model = self._build_model()
        optimizer = Adam(self._model.parameters(), lr=self.config.learning_rate)
        for _ in range(self.config.training_epochs):
            optimizer.zero_grad()
            predictions = self._model.forward(features).reshape(-1)
            _, grad = mse(predictions, targets)
            self._model.backward(grad.reshape(-1, 1))
            optimizer.step()

    def _predict(self, query: Query, plans: list[JoinTree]) -> np.ndarray:
        if self._model is None:
            return self._rng.random(len(plans))
        features = np.stack([self.featurizer.featurize(query, plan) for plan in plans])
        return self._model.forward(features).reshape(-1)

    # ------------------------------------------------------------------ optimization loop
    def optimize(
        self,
        query: Query,
        max_executions: int = 100,
        time_budget: float | None = None,
    ) -> OptimizationResult:
        config = self.config
        result = OptimizationResult(query_name=query.name, technique="Balsa")
        features: list[np.ndarray] = []
        targets: list[float] = []
        executed: dict[str, float] = {}
        best_latency: float | None = None
        best_plan: JoinTree | None = None

        def budget_left() -> bool:
            if result.num_executions >= max_executions:
                return False
            if time_budget is not None and result.total_cost >= time_budget:
                return False
            return True

        def run_plan(plan: JoinTree, source: str) -> None:
            nonlocal best_latency, best_plan
            timeout = (
                600.0 if best_latency is None else best_latency * config.timeout_multiplier
            )
            execution = self.database.execute(query, plan, timeout=timeout)
            result.record(plan, execution.latency, execution.timed_out, timeout, source)
            label = execution.latency if not execution.timed_out else (timeout or execution.latency)
            executed[plan.canonical()] = label
            features.append(self.featurizer.featurize(query, plan))
            targets.append(math.log(max(label, _MIN_LATENCY)))
            if not execution.timed_out and (best_latency is None or execution.latency < best_latency):
                best_latency = execution.latency
                best_plan = plan

        # Seed with the Bao hint-set plans (training examples include the Bao optimum).
        seen_hint_plans: set[str] = set()
        for hint_set in bao_hint_sets():
            if not budget_left():
                break
            plan = self.database.plan(query, hint_set)
            if plan.canonical() in seen_hint_plans:
                continue
            seen_hint_plans.add(plan.canonical())
            run_plan(plan, "init:bao")

        steps = 0
        step_cap = max_executions * 10
        while budget_left() and steps < step_cap:
            steps += 1
            if steps % config.retrain_every == 1 and features:
                self._train(np.stack(features), np.asarray(targets))
            roll = self._rng.random()
            if roll < config.exploit_probability and best_plan is not None:
                # Regret-minimizing exploitation: re-run the best known plan.
                candidate = best_plan
            elif roll < config.exploit_probability + config.epsilon:
                candidate = random_join_tree(query, self._rng)
            else:
                pool = [random_join_tree(query, self._rng) for _ in range(config.candidates_per_step)]
                scores = self._predict(query, pool)
                candidate = pool[int(np.argmin(scores))]
            key = candidate.canonical()
            if key in executed:
                # Duplicate plans are served from the plan cache (no budget spent).
                continue
            run_plan(candidate, "balsa")
        return result
