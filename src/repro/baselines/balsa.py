"""A simplified Balsa: reinforcement-learning-style plan search.

Balsa (Yang et al., SIGMOD 2022) learns a value network from its own plan
executions and uses it to steer plan construction, balancing exploration and
exploitation to minimize cumulative regret.  This reproduction keeps the
ingredients the paper's comparison relies on:

* a value network (an MLP over plan features) trained on executed plans,
* epsilon-greedy selection between exploiting the value network's favourite
  candidate and exploring random plans,
* a constant timeout multiplier (``S = 1.5``, the setting the paper found to
  work best),
* training labels for timed-out plans equal to the timeout, which — as the
  paper points out — makes the model systematically underestimate bad plans,
* a bias toward re-visiting plans it already believes to be good (the regret
  minimizing behaviour that makes RL a poor fit for offline optimization;
  exact duplicates are served from a plan cache and do not consume budget,
  matching the paper's experimental setup).

Its training set is seeded with the Bao hint-set plans, as in the paper.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.protocol import (
    BudgetSpec,
    ExecutionOutcome,
    OptimizerState,
    PlanProposal,
    drive_state,
)
from repro.core.registry import TechniqueContext, register_technique
from repro.core.result import OptimizationResult
from repro.db.engine import Database
from repro.db.query import Query
from repro.nn.layers import Sequential, mlp
from repro.nn.losses import mse
from repro.nn.optim import Adam
from repro.plans.hints import bao_hint_sets
from repro.plans.jointree import JOIN_OPS, JoinTree
from repro.plans.sampling import random_join_tree

_MIN_LATENCY = 1e-6


@dataclass
class BalsaConfig:
    """Hyper-parameters of the simplified Balsa agent."""

    timeout_multiplier: float = 1.5
    epsilon: float = 0.2
    exploit_probability: float = 0.15
    candidates_per_step: int = 40
    retrain_every: int = 8
    training_epochs: int = 30
    hidden: int = 64
    learning_rate: float = 5e-3
    seed: int = 0


class PlanFeaturizer:
    """Fixed-length feature vectors for (query, plan) pairs.

    Features: adjacency of base tables joined directly at some node, operator
    counts, tree depth and left-deepness — a simplified version of Balsa's tree
    convolution featurization that still separates good plans from bad ones.
    """

    def __init__(self, database: Database) -> None:
        self.tables = sorted(database.schema.table_names)
        self.table_index = {table: i for i, table in enumerate(self.tables)}
        count = len(self.tables)
        self.dim = count * count + len(JOIN_OPS) + 3

    def featurize(self, query: Query, plan: JoinTree) -> np.ndarray:
        count = len(self.tables)
        adjacency = np.zeros((count, count))
        for left_set, right_set, _ in plan.join_pairs():
            for left_alias in left_set:
                for right_alias in right_set:
                    i = self.table_index[query.table_of(left_alias)]
                    j = self.table_index[query.table_of(right_alias)]
                    adjacency[i, j] += 1.0
                    adjacency[j, i] += 1.0
        op_counts = np.zeros(len(JOIN_OPS))
        for op in plan.operators():
            op_counts[JOIN_OPS.index(op)] += 1.0
        extras = np.array(
            [plan.depth(), float(plan.is_left_deep()), plan.num_joins], dtype=np.float64
        )
        return np.concatenate([adjacency.reshape(-1), op_counts, extras])


@dataclass
class BalsaState(OptimizerState):
    """Resumable Balsa state: training set, plan cache and the incumbent.

    The value network and its RNG live on the *optimizer* (shared across
    queries, as in the original agent), so interleaving queries shuffles the
    exploration stream; run Balsa sequentially when bitwise reproducibility
    across scheduling modes matters.
    """

    hint_sets: list = field(default_factory=list)
    next_hint: int = 0
    seen_hint_plans: set = field(default_factory=set)
    features: list = field(default_factory=list)
    targets: list = field(default_factory=list)
    #: plan canonical -> training label (the plan cache; duplicates are free).
    executed: dict = field(default_factory=dict)
    best_latency: float | None = None
    best_plan: JoinTree | None = None
    steps: int = 0
    step_cap: int = 0


class BalsaOptimizer:
    """Offline optimization with a regret-minimizing RL-style agent."""

    def __init__(self, database: Database, config: BalsaConfig | None = None) -> None:
        self.database = database
        self.config = config or BalsaConfig()
        self.featurizer = PlanFeaturizer(database)
        self._rng = np.random.default_rng(self.config.seed)
        self._model: Sequential | None = None

    # ------------------------------------------------------------------ value network
    def _build_model(self) -> Sequential:
        return mlp(self.featurizer.dim, [self.config.hidden, self.config.hidden], 1,
                   rng=np.random.default_rng(self.config.seed))

    def _train(self, features: np.ndarray, targets: np.ndarray) -> None:
        self._model = self._build_model()
        optimizer = Adam(self._model.parameters(), lr=self.config.learning_rate)
        for _ in range(self.config.training_epochs):
            optimizer.zero_grad()
            predictions = self._model.forward(features).reshape(-1)
            _, grad = mse(predictions, targets)
            self._model.backward(grad.reshape(-1, 1))
            optimizer.step()

    def _predict(self, query: Query, plans: list[JoinTree]) -> np.ndarray:
        if self._model is None:
            return self._rng.random(len(plans))
        features = np.stack([self.featurizer.featurize(query, plan) for plan in plans])
        return self._model.forward(features).reshape(-1)

    # ------------------------------------------------------------------ ask/tell protocol
    def start(self, query: Query, budget: BudgetSpec | None = None) -> BalsaState:
        budget = budget or BudgetSpec(max_executions=100)
        max_executions = budget.max_executions if budget.max_executions is not None else 100
        return BalsaState(
            query=query,
            result=OptimizationResult(query_name=query.name, technique="Balsa"),
            budget=budget,
            hint_sets=list(bao_hint_sets()),
            step_cap=max_executions * 10,
        )

    def _timeout(self, state: BalsaState) -> float:
        return (
            600.0
            if state.best_latency is None
            else state.best_latency * self.config.timeout_multiplier
        )

    def suggest(self, state: BalsaState) -> PlanProposal | None:
        """Bao hint-set seeds first, then epsilon-greedy value-network search."""
        state.require_idle()
        config, query = self.config, state.query
        # Seed with the Bao hint-set plans (training examples include the Bao optimum).
        while state.next_hint < len(state.hint_sets):
            hint_set = state.hint_sets[state.next_hint]
            state.next_hint += 1
            plan = self.database.plan(query, hint_set)
            if plan.canonical() in state.seen_hint_plans:
                continue
            state.seen_hint_plans.add(plan.canonical())
            return state.park(
                PlanProposal(plan=plan, timeout=self._timeout(state), source="init:bao", query=query)
            )
        while state.steps < state.step_cap:
            state.steps += 1
            if state.steps % config.retrain_every == 1 and state.features:
                self._train(np.stack(state.features), np.asarray(state.targets))
            roll = self._rng.random()
            if roll < config.exploit_probability and state.best_plan is not None:
                # Regret-minimizing exploitation: re-run the best known plan.
                candidate = state.best_plan
            elif roll < config.exploit_probability + config.epsilon:
                candidate = random_join_tree(query, self._rng)
            else:
                pool = [random_join_tree(query, self._rng) for _ in range(config.candidates_per_step)]
                scores = self._predict(query, pool)
                candidate = pool[int(np.argmin(scores))]
            if candidate.canonical() in state.executed:
                # Duplicate plans are served from the plan cache (no budget spent).
                continue
            return state.park(
                PlanProposal(plan=candidate, timeout=self._timeout(state), source="balsa", query=query)
            )
        return None

    def observe(self, state: BalsaState, outcome: ExecutionOutcome) -> None:
        _, record = state.resolve(outcome)
        label = record.latency if not record.censored else (record.timeout or record.latency)
        state.executed[record.plan.canonical()] = label
        state.features.append(self.featurizer.featurize(state.query, record.plan))
        state.targets.append(math.log(max(label, _MIN_LATENCY)))
        if not record.censored and (
            state.best_latency is None or record.latency < state.best_latency
        ):
            state.best_latency = record.latency
            state.best_plan = record.plan

    def finish(self, state: BalsaState) -> OptimizationResult:
        return state.result

    # ------------------------------------------------------------------ legacy driver
    def optimize(
        self,
        query: Query,
        max_executions: int = 100,
        time_budget: float | None = None,
    ) -> OptimizationResult:
        """Run the Balsa agent for one query.

        .. deprecated:: PR 2
            Compatibility shim over the ask/tell protocol; prefer driving the
            optimizer through a WorkloadSession.
        """
        warnings.warn(
            "BalsaOptimizer.optimize() is deprecated; drive the optimizer through a "
            "WorkloadSession (or repro.core.protocol.drive_query)",
            DeprecationWarning,
            stacklevel=2,
        )
        state = self.start(
            query, budget=BudgetSpec(max_executions=max_executions, time_budget=time_budget)
        )
        drive_state(self, self.database, state)
        return self.finish(state)


@register_technique(
    "balsa",
    order_sensitive=True,  # value network + RNG are shared across queries
    description="Simplified Balsa: RL-style value-network plan search (regret minimizing)",
)
def _build_balsa(context: TechniqueContext) -> BalsaOptimizer:
    return BalsaOptimizer(context.database, BalsaConfig(seed=context.seed))
