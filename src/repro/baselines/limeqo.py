"""LimeQO: workload-level offline hint selection via low-rank matrix completion.

LimeQO (Yi et al.) explores the (query x hint set) latency matrix for a whole
workload: it observes a few entries by actually executing hinted plans,
completes the matrix with a low-rank factorization (alternating least
squares), and uses the completed matrix to decide which entry to observe
next.  Its search space is limited to the 49 hint sets, so once every hint has
been explored there is nothing left to improve — the behaviour Figure 10
contrasts with BayesQO's continued progress.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.result import OptimizationResult
from repro.db.engine import Database
from repro.db.query import Query
from repro.plans.hints import HintSet, bao_hint_sets

_MIN_LATENCY = 1e-6


@dataclass
class LimeQOConfig:
    """Hyper-parameters of the LimeQO explorer."""

    rank: int = 3
    als_iterations: int = 15
    regularization: float = 0.1
    timeout_multiplier: float = 4.0
    seed: int = 0


@dataclass
class LimeQOState:
    """Observed latencies and completion model for one workload."""

    queries: list[Query]
    hint_sets: list[HintSet]
    observed: np.ndarray = field(init=False)
    latencies: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        shape = (len(self.queries), len(self.hint_sets))
        self.observed = np.zeros(shape, dtype=bool)
        self.latencies = np.full(shape, np.nan)


def complete_matrix(
    values: np.ndarray, observed: np.ndarray, rank: int, iterations: int, regularization: float,
    seed: int = 0,
) -> np.ndarray:
    """Low-rank completion of a partially observed matrix via alternating least squares."""
    rng = np.random.default_rng(seed)
    rows, cols = values.shape
    rank = max(1, min(rank, rows, cols))
    u = rng.normal(0.0, 0.1, size=(rows, rank))
    v = rng.normal(0.0, 0.1, size=(cols, rank))
    filled = np.where(observed, values, 0.0)
    eye = regularization * np.eye(rank)
    for _ in range(iterations):
        for i in range(rows):
            mask = observed[i]
            if not mask.any():
                continue
            vm = v[mask]
            u[i] = np.linalg.solve(vm.T @ vm + eye, vm.T @ filled[i, mask])
        for j in range(cols):
            mask = observed[:, j]
            if not mask.any():
                continue
            um = u[mask]
            v[j] = np.linalg.solve(um.T @ um + eye, um.T @ filled[mask, j])
    return u @ v.T


class LimeQOOptimizer:
    """Workload-level hint exploration with low-rank completion."""

    def __init__(self, database: Database, config: LimeQOConfig | None = None) -> None:
        self.database = database
        self.config = config or LimeQOConfig()

    def optimize_workload(
        self,
        queries: list[Query],
        max_executions: int | None = None,
        time_budget: float | None = None,
    ) -> dict[str, OptimizationResult]:
        """Explore hints for the whole workload; returns per-query traces."""
        hint_sets = bao_hint_sets()
        state = LimeQOState(queries=queries, hint_sets=hint_sets)
        results = {query.name: OptimizationResult(query.name, "LimeQO") for query in queries}
        plans = [[self.database.plan(query, hint_set) for hint_set in hint_sets] for query in queries]
        best: list[float | None] = [None] * len(queries)
        total_executions = 0

        def budget_left() -> bool:
            if max_executions is not None and total_executions >= max_executions:
                return False
            if time_budget is not None:
                spent = sum(result.total_cost for result in results.values())
                if spent >= time_budget:
                    return False
            return True

        def observe(query_index: int, hint_index: int) -> None:
            nonlocal total_executions
            query = queries[query_index]
            plan = plans[query_index][hint_index]
            timeout = (
                600.0
                if best[query_index] is None
                else best[query_index] * self.config.timeout_multiplier
            )
            execution = self.database.execute(query, plan, timeout=timeout)
            results[query.name].record(
                plan, execution.latency, execution.timed_out, timeout, source="limeqo"
            )
            label = execution.latency if not execution.timed_out else (timeout or execution.latency)
            state.observed[query_index, hint_index] = True
            state.latencies[query_index, hint_index] = math.log(max(label, _MIN_LATENCY))
            if not execution.timed_out:
                current = best[query_index]
                if current is None or execution.latency < current:
                    best[query_index] = execution.latency
            total_executions += 1

        # Bootstrap: the default (all-enabled) hint set for every query.
        for query_index in range(len(queries)):
            if not budget_left():
                return results
            observe(query_index, 0)
        # Greedy exploration driven by the completed matrix.
        while budget_left() and not state.observed.all():
            completed = complete_matrix(
                state.latencies,
                state.observed,
                rank=self.config.rank,
                iterations=self.config.als_iterations,
                regularization=self.config.regularization,
                seed=self.config.seed,
            )
            candidate = np.where(state.observed, np.inf, completed)
            query_index, hint_index = np.unravel_index(np.argmin(candidate), candidate.shape)
            observe(int(query_index), int(hint_index))
        return results
