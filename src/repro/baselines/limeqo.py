"""LimeQO: workload-level offline hint selection via low-rank matrix completion.

LimeQO (Yi et al.) explores the (query x hint set) latency matrix for a whole
workload: it observes a few entries by actually executing hinted plans,
completes the matrix with a low-rank factorization (alternating least
squares), and uses the completed matrix to decide which entry to observe
next.  Its search space is limited to the 49 hint sets, so once every hint has
been explored there is nothing left to improve — the behaviour Figure 10
contrasts with BayesQO's continued progress.

As the one *workload-level* technique, LimeQO implements the
:class:`~repro.core.protocol.WorkloadOptimizer` protocol: a single resumable
state spans every query, and each :class:`~repro.core.protocol.PlanProposal`
names the query whose matrix cell it wants observed.  Budget normalization
lives with the caller: a :class:`~repro.harness.runner.WorkloadSession`
charges LimeQO against the shared pool ``BudgetSpec.scaled(len(queries))`` —
the same per-query budget every other technique pays — instead of the old
private ``max_executions * len(queries)`` arithmetic.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.protocol import (
    BudgetSpec,
    ExecutionOutcome,
    PlanProposal,
    WorkloadOptimizerState,
    drive_state,
)
from repro.core.registry import TechniqueContext, register_technique
from repro.core.result import OptimizationResult
from repro.db.engine import Database
from repro.db.query import Query
from repro.plans.hints import HintSet, bao_hint_sets

_MIN_LATENCY = 1e-6


@dataclass
class LimeQOConfig:
    """Hyper-parameters of the LimeQO explorer."""

    rank: int = 3
    als_iterations: int = 15
    regularization: float = 0.1
    timeout_multiplier: float = 4.0
    seed: int = 0


@dataclass
class LimeQOState:
    """Observed latencies and completion model for one workload."""

    queries: list[Query]
    hint_sets: list[HintSet]
    observed: np.ndarray = field(init=False)
    latencies: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        shape = (len(self.queries), len(self.hint_sets))
        self.observed = np.zeros(shape, dtype=bool)
        self.latencies = np.full(shape, np.nan)


def complete_matrix(
    values: np.ndarray, observed: np.ndarray, rank: int, iterations: int, regularization: float,
    seed: int = 0,
) -> np.ndarray:
    """Low-rank completion of a partially observed matrix via alternating least squares."""
    rng = np.random.default_rng(seed)
    rows, cols = values.shape
    rank = max(1, min(rank, rows, cols))
    u = rng.normal(0.0, 0.1, size=(rows, rank))
    v = rng.normal(0.0, 0.1, size=(cols, rank))
    filled = np.where(observed, values, 0.0)
    eye = regularization * np.eye(rank)
    for _ in range(iterations):
        for i in range(rows):
            mask = observed[i]
            if not mask.any():
                continue
            vm = v[mask]
            u[i] = np.linalg.solve(vm.T @ vm + eye, vm.T @ filled[i, mask])
        for j in range(cols):
            mask = observed[:, j]
            if not mask.any():
                continue
            um = u[mask]
            v[j] = np.linalg.solve(um.T @ um + eye, um.T @ filled[mask, j])
    return u @ v.T


@dataclass
class LimeQOWorkloadState(WorkloadOptimizerState):
    """Resumable LimeQO state: the partially observed latency matrix."""

    matrix: LimeQOState | None = None
    #: Pre-planned hint plans, ``plans[query_index][hint_index]``.
    plans: list = field(default_factory=list)
    best: list = field(default_factory=list)
    #: How many queries have had their default hint set bootstrapped.
    bootstrapped: int = 0


class LimeQOOptimizer:
    """Workload-level hint exploration with low-rank completion."""

    def __init__(self, database: Database, config: LimeQOConfig | None = None) -> None:
        self.database = database
        self.config = config or LimeQOConfig()

    # ------------------------------------------------------------------ ask/tell protocol
    def start_workload(
        self, queries: list[Query], budget: BudgetSpec | None = None
    ) -> LimeQOWorkloadState:
        """Build one resumable state spanning every query's hint matrix."""
        hint_sets = bao_hint_sets()
        return LimeQOWorkloadState(
            queries=list(queries),
            results={query.name: OptimizationResult(query.name, "LimeQO") for query in queries},
            budget=budget if budget is not None else BudgetSpec(max_executions=None),
            matrix=LimeQOState(queries=list(queries), hint_sets=hint_sets),
            plans=[
                [self.database.plan(query, hint_set) for hint_set in hint_sets]
                for query in queries
            ],
            best=[None] * len(queries),
        )

    def _propose_cell(
        self, state: LimeQOWorkloadState, query_index: int, hint_index: int
    ) -> PlanProposal:
        query = state.queries[query_index]
        timeout = (
            600.0
            if state.best[query_index] is None
            else state.best[query_index] * self.config.timeout_multiplier
        )
        return state.park(
            PlanProposal(
                plan=state.plans[query_index][hint_index],
                timeout=timeout,
                source="limeqo",
                query=query,
                metadata={"cell": (query_index, hint_index)},
            )
        )

    def suggest(self, state: LimeQOWorkloadState) -> PlanProposal | None:
        """Bootstrap the default hint per query, then follow the completed matrix."""
        state.require_idle()
        if state.bootstrapped < len(state.queries):
            query_index = state.bootstrapped
            state.bootstrapped += 1
            return self._propose_cell(state, query_index, 0)
        matrix = state.matrix
        if matrix.observed.all():
            return None
        completed = complete_matrix(
            matrix.latencies,
            matrix.observed,
            rank=self.config.rank,
            iterations=self.config.als_iterations,
            regularization=self.config.regularization,
            seed=self.config.seed,
        )
        candidate = np.where(matrix.observed, np.inf, completed)
        query_index, hint_index = np.unravel_index(np.argmin(candidate), candidate.shape)
        return self._propose_cell(state, int(query_index), int(hint_index))

    def observe(self, state: LimeQOWorkloadState, outcome: ExecutionOutcome) -> None:
        proposal, record = state.resolve(outcome)
        query_index, hint_index = proposal.metadata["cell"]
        label = record.latency if not record.censored else (record.timeout or record.latency)
        state.matrix.observed[query_index, hint_index] = True
        state.matrix.latencies[query_index, hint_index] = math.log(max(label, _MIN_LATENCY))
        if not record.censored:
            current = state.best[query_index]
            if current is None or record.latency < current:
                state.best[query_index] = record.latency

    def finish_workload(self, state: LimeQOWorkloadState) -> dict[str, OptimizationResult]:
        return state.results

    # ------------------------------------------------------------------ legacy driver
    def optimize_workload(
        self,
        queries: list[Query],
        max_executions: int | None = None,
        time_budget: float | None = None,
    ) -> dict[str, OptimizationResult]:
        """Explore hints for the whole workload; returns per-query traces.

        ``max_executions``/``time_budget`` are *workload-level* totals, kept
        for backward compatibility.

        .. deprecated:: PR 2
            Compatibility shim over the ask/tell protocol; prefer driving the
            optimizer through a WorkloadSession, which charges LimeQO the same
            per-query budget as every other technique via
            ``BudgetSpec.scaled(len(queries))``.
        """
        warnings.warn(
            "LimeQOOptimizer.optimize_workload() is deprecated; drive the optimizer "
            "through a WorkloadSession (or repro.core.protocol.drive_workload)",
            DeprecationWarning,
            stacklevel=2,
        )
        state = self.start_workload(
            queries, budget=BudgetSpec(max_executions=max_executions, time_budget=time_budget)
        )
        drive_state(self, self.database, state)
        return self.finish_workload(state)


@register_technique(
    "limeqo",
    workload_level=True,
    description="LimeQO: workload-level hint exploration via low-rank matrix completion",
)
def _build_limeqo(context: TechniqueContext) -> LimeQOOptimizer:
    return LimeQOOptimizer(context.database)
