"""The Bao baseline: exhaustively execute every hint-set plan.

Following the paper's experimental setup, we do not run Bao's learned model;
instead we execute all 49 hint-set plans and keep the fastest one — the best
plan Bao could ever produce, i.e. the strongest version of "steer the
traditional optimizer with hints".

The optimizer implements the ask/tell protocol: ``suggest`` walks the
(deduplicated) hint-set plans and ``observe`` tracks the incumbent.  Because
the search space is a fixed 49-plan enumeration, only the time axis of the
budget applies (the seed harness likewise never capped Bao's execution
count); the registry records this as ``ignores_execution_cap``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.core.protocol import (
    BudgetSpec,
    ExecutionOutcome,
    OptimizerState,
    PlanProposal,
    drive_state,
)
from repro.core.registry import TechniqueContext, register_technique
from repro.core.result import OptimizationResult
from repro.db.engine import Database
from repro.db.query import Query
from repro.plans.hints import HintSet, bao_hint_sets
from repro.plans.jointree import JoinTree

#: Timeout for the first (uncapped) hint-set execution, and the latency
#: reported when every hinted plan was censored (the harness uses the same
#: value as its improvement-baseline fallback).
BAO_INITIAL_TIMEOUT = 600.0


@dataclass
class BaoOutcome:
    """Best hint set found for one query plus the full execution trace."""

    result: OptimizationResult
    best_hint_set: HintSet
    best_plan: JoinTree
    best_latency: float


@dataclass
class BaoState(OptimizerState):
    """Resumable Bao state: remaining hint sets and the incumbent."""

    hint_sets: list = field(default_factory=list)
    next_hint: int = 0
    seen: set = field(default_factory=set)
    best_latency: float | None = None
    best_hint_set: HintSet | None = None
    best_plan: JoinTree | None = None


class BaoOptimizer:
    """Executes every hint-set plan and returns the best."""

    def __init__(
        self,
        database: Database,
        timeout_multiplier: float = 16.0,
        initial_timeout: float = BAO_INITIAL_TIMEOUT,
    ) -> None:
        self.database = database
        self.timeout_multiplier = timeout_multiplier
        self.initial_timeout = initial_timeout

    # ------------------------------------------------------------------ ask/tell protocol
    def start(self, query: Query, budget: BudgetSpec | None = None) -> BaoState:
        """Build a resumable state over the hint-set enumeration.

        Bao's space is naturally bounded by its 49 hint sets, so the
        execution-count axis of ``budget`` is dropped; the time axis applies.
        """
        budget = (budget or BudgetSpec()).without_execution_cap()
        return BaoState(
            query=query,
            result=OptimizationResult(query_name=query.name, technique="Bao"),
            budget=budget,
            hint_sets=list(bao_hint_sets()),
        )

    def suggest(self, state: BaoState) -> PlanProposal | None:
        """Propose the next novel hint-set plan, or ``None`` when drained."""
        state.require_idle()
        while state.next_hint < len(state.hint_sets):
            hint_set = state.hint_sets[state.next_hint]
            state.next_hint += 1
            plan = self.database.plan(state.query, hint_set)
            key = plan.canonical()
            if key in state.seen:
                continue
            state.seen.add(key)
            timeout = (
                self.initial_timeout
                if state.best_latency is None
                else state.best_latency * self.timeout_multiplier
            )
            return state.park(
                PlanProposal(
                    plan=plan,
                    timeout=timeout,
                    source="bao",
                    query=state.query,
                    metadata={"hint_set": hint_set},
                )
            )
        return None

    def observe(self, state: BaoState, outcome: ExecutionOutcome) -> None:
        proposal, record = state.resolve(outcome)
        if not record.censored and (
            state.best_latency is None or record.latency < state.best_latency
        ):
            state.best_latency = record.latency
            state.best_hint_set = proposal.metadata["hint_set"]
            state.best_plan = record.plan

    def finish(self, state: BaoState) -> OptimizationResult:
        return state.result

    def outcome(self, state: BaoState) -> BaoOutcome:
        """Package a finished state as a :class:`BaoOutcome` (with fallback)."""
        best_plan, best_hint_set, best_latency = (
            state.best_plan, state.best_hint_set, state.best_latency,
        )
        if best_plan is None or best_hint_set is None or best_latency is None:
            # Every hinted plan timed out: fall back to the default plan at the
            # initial timeout so callers always get a concrete (if slow) answer.
            best_plan = self.database.plan(state.query)
            best_hint_set = bao_hint_sets()[0]
            best_latency = self.initial_timeout
        return BaoOutcome(
            result=state.result,
            best_hint_set=best_hint_set,
            best_plan=best_plan,
            best_latency=best_latency,
        )

    # ------------------------------------------------------------------ legacy driver
    def optimize(self, query: Query, time_budget: float | None = None) -> BaoOutcome:
        """Execute all hint-set plans (deduplicated) for ``query``.

        .. deprecated:: PR 2
            Compatibility shim over the ask/tell protocol; prefer driving the
            optimizer through a WorkloadSession.
        """
        warnings.warn(
            "BaoOptimizer.optimize() is deprecated; drive the optimizer through a "
            "WorkloadSession (or repro.core.protocol.drive_query)",
            DeprecationWarning,
            stacklevel=2,
        )
        state = self.start(query, budget=BudgetSpec(max_executions=None, time_budget=time_budget))
        drive_state(self, self.database, state)
        return self.outcome(state)


def bao_best_latency(database: Database, query: Query) -> float:
    """Convenience: the latency of the best Bao hint-set plan."""
    optimizer = BaoOptimizer(database)
    state = optimizer.start(query)
    drive_state(optimizer, database, state)
    return optimizer.outcome(state).best_latency


@register_technique(
    "bao",
    ignores_execution_cap=True,
    description="Bao upper bound: execute all 49 hint-set plans, keep the fastest",
)
def _build_bao(context: TechniqueContext) -> BaoOptimizer:
    return BaoOptimizer(context.database)
