"""The Bao baseline: exhaustively execute every hint-set plan.

Following the paper's experimental setup, we do not run Bao's learned model;
instead we execute all 49 hint-set plans and keep the fastest one — the best
plan Bao could ever produce, i.e. the strongest version of "steer the
traditional optimizer with hints".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import OptimizationResult
from repro.db.engine import Database
from repro.db.query import Query
from repro.plans.hints import HintSet, bao_hint_sets
from repro.plans.jointree import JoinTree


@dataclass
class BaoOutcome:
    """Best hint set found for one query plus the full execution trace."""

    result: OptimizationResult
    best_hint_set: HintSet
    best_plan: JoinTree
    best_latency: float


class BaoOptimizer:
    """Executes every hint-set plan and returns the best."""

    def __init__(
        self,
        database: Database,
        timeout_multiplier: float = 16.0,
        initial_timeout: float = 600.0,
    ) -> None:
        self.database = database
        self.timeout_multiplier = timeout_multiplier
        self.initial_timeout = initial_timeout

    def optimize(self, query: Query, time_budget: float | None = None) -> BaoOutcome:
        """Execute all hint-set plans (deduplicated) for ``query``."""
        result = OptimizationResult(query_name=query.name, technique="Bao")
        best_latency: float | None = None
        best_hint_set: HintSet | None = None
        best_plan: JoinTree | None = None
        seen: set[str] = set()
        for hint_set in bao_hint_sets():
            if time_budget is not None and result.total_cost >= time_budget:
                break
            plan = self.database.plan(query, hint_set)
            key = plan.canonical()
            if key in seen:
                continue
            seen.add(key)
            timeout = (
                self.initial_timeout
                if best_latency is None
                else best_latency * self.timeout_multiplier
            )
            execution = self.database.execute(query, plan, timeout=timeout)
            result.record(plan, execution.latency, execution.timed_out, timeout, source="bao")
            if not execution.timed_out and (best_latency is None or execution.latency < best_latency):
                best_latency = execution.latency
                best_hint_set = hint_set
                best_plan = plan
        if best_plan is None or best_hint_set is None or best_latency is None:
            # Every hinted plan timed out: fall back to the default plan at the
            # initial timeout so callers always get a concrete (if slow) answer.
            best_plan = self.database.plan(query)
            best_hint_set = bao_hint_sets()[0]
            best_latency = self.initial_timeout
        return BaoOutcome(
            result=result,
            best_hint_set=best_hint_set,
            best_plan=best_plan,
            best_latency=best_latency,
        )


def bao_best_latency(database: Database, query: Query) -> float:
    """Convenience: the latency of the best Bao hint-set plan."""
    return BaoOptimizer(database).optimize(query).best_latency
