"""The Random offline-optimization baseline (Section 4.5 / "Random" in Section 5).

Pure exploration: sample cross-join-free plans uniformly at random and execute
each with a timeout equal to the best latency seen so far (initialized with the
default optimizer plan's latency).  There is no model and no feedback beyond
tightening the timeout, yet — because offline optimization can afford to
execute terrible plans — this is a surprisingly strong baseline.

Implemented as an ask/tell optimizer: the first proposal is the default plan,
every later ``suggest`` draws a novel random join tree, and ``observe`` only
tightens the incumbent timeout.  The per-query RNG is derived from
``(seed, query name)``, so interleaving queries cannot change any query's plan
sequence.  Random also implements the batched ask (``suggest_batch``): random
draws are trivially jointly informative, so up to q novel plans ride in
flight at once, each executed under the incumbent timeout known at issue
time.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.protocol import (
    BudgetSpec,
    ExecutionOutcome,
    OptimizerState,
    PlanProposal,
    drive_state,
)
from repro.core.registry import TechniqueContext, register_technique
from repro.core.result import OptimizationResult
from repro.db.engine import Database
from repro.db.query import Query
from repro.plans.sampling import random_join_tree
from repro.utils.seeding import stable_digest

#: Cap on consecutive duplicate draws in one ``suggest`` call; hitting it means
#: the plan space is (effectively) drained and the optimizer reports ``None``.
_MAX_SAMPLE_ATTEMPTS = 10_000


@dataclass
class RandomSearchState(OptimizerState):
    """Resumable random-search state: RNG, dedup set and incumbent timeout."""

    rng: np.random.Generator | None = None
    initial_timeout: float | None = 600.0
    best: float | None = None
    seen: set = field(default_factory=set)
    started: bool = False


class RandomSearch:
    """QuickPick-style random plan search driven by real execution."""

    def __init__(self, database: Database, seed: int = 0) -> None:
        self.database = database
        self.seed = seed

    # ------------------------------------------------------------------ ask/tell protocol
    def start(
        self,
        query: Query,
        budget: BudgetSpec | None = None,
        initial_timeout: float | None = 600.0,
    ) -> RandomSearchState:
        return RandomSearchState(
            query=query,
            result=OptimizationResult(query_name=query.name, technique="Random"),
            budget=budget or BudgetSpec(max_executions=100),
            rng=np.random.default_rng((self.seed, stable_digest(query.name, bits=31))),
            initial_timeout=initial_timeout,
        )

    def _default_proposal(self, state: RandomSearchState) -> PlanProposal:
        """Enqueue the first proposal: the default optimizer plan.

        Shared by the single and batched ask so the bootstrap (dedup entry,
        initial timeout) cannot drift between them.
        """
        state.started = True
        plan = self.database.plan(state.query)
        state.seen.add(plan.canonical())
        return state.enqueue(
            PlanProposal(
                plan=plan, timeout=state.initial_timeout, source="default", query=state.query
            )
        )

    def _novel_plan(self, state: RandomSearchState):
        """Draw a not-yet-proposed random join tree, or ``None`` when the
        (effective) plan space is drained."""
        for _ in range(_MAX_SAMPLE_ATTEMPTS):
            plan = random_join_tree(state.query, state.rng)
            key = plan.canonical()
            if key in state.seen:
                continue
            state.seen.add(key)
            return plan
        return None

    def suggest(self, state: RandomSearchState) -> PlanProposal | None:
        """The default plan first, then novel random join trees."""
        state.require_idle()
        if not state.started:
            return self._default_proposal(state)
        plan = self._novel_plan(state)
        if plan is None:
            return None
        return state.enqueue(
            PlanProposal(plan=plan, timeout=state.best, source="random", query=state.query)
        )

    def suggest_batch(self, state: RandomSearchState, q: int) -> list[PlanProposal]:
        """Up to ``q`` novel plans in flight at once (``q <= 1`` = :meth:`suggest`).

        Batched proposals run under the incumbent timeout known at issue
        time (falling back to the initial timeout before the default plan's
        outcome has landed) — the timeout is one observation staler than in
        strictly sequential mode, which is the sample-efficiency price of
        keeping the pipeline full.
        """
        if q <= 1 and state.outstanding_count == 0:
            proposal = self.suggest(state)
            return [] if proposal is None else [proposal]
        proposals: list[PlanProposal] = []
        if not state.started:
            proposals.append(self._default_proposal(state))
        timeout = state.best if state.best is not None else state.initial_timeout
        while len(proposals) < q:
            plan = self._novel_plan(state)
            if plan is None:
                break
            proposals.append(
                state.enqueue(
                    PlanProposal(plan=plan, timeout=timeout, source="random", query=state.query)
                )
            )
        return proposals

    def observe(self, state: RandomSearchState, outcome: ExecutionOutcome) -> None:
        _, record = state.resolve(outcome)
        if record.source == "default":
            state.best = record.latency if not record.censored else state.initial_timeout
        elif not record.censored and (state.best is None or record.latency < state.best):
            state.best = record.latency

    def finish(self, state: RandomSearchState) -> OptimizationResult:
        return state.result

    # ------------------------------------------------------------------ legacy driver
    def optimize(
        self,
        query: Query,
        max_executions: int = 100,
        time_budget: float | None = None,
        initial_timeout: float | None = 600.0,
    ) -> OptimizationResult:
        """Run random search for ``query`` under the shared budget model.

        .. deprecated:: PR 2
            Compatibility shim over the ask/tell protocol; prefer driving the
            optimizer through a WorkloadSession.
        """
        warnings.warn(
            "RandomSearch.optimize() is deprecated; drive the optimizer through a "
            "WorkloadSession (or repro.core.protocol.drive_query)",
            DeprecationWarning,
            stacklevel=2,
        )
        state = self.start(
            query,
            budget=BudgetSpec(max_executions=max_executions, time_budget=time_budget),
            initial_timeout=initial_timeout,
        )
        drive_state(self, self.database, state)
        return self.finish(state)


@register_technique(
    "random",
    supports_batch=True,
    description="Random: uniform cross-join-free plan sampling with best-seen timeouts",
)
def _build_random(context: TechniqueContext) -> RandomSearch:
    return RandomSearch(context.database, seed=context.seed)
