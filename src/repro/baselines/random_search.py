"""The Random offline-optimization baseline (Section 4.5 / "Random" in Section 5).

Pure exploration: sample cross-join-free plans uniformly at random and execute
each with a timeout equal to the best latency seen so far (initialized with the
default optimizer plan's latency).  There is no model and no feedback beyond
tightening the timeout, yet — because offline optimization can afford to
execute terrible plans — this is a surprisingly strong baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import OptimizationResult
from repro.db.engine import Database
from repro.db.query import Query
from repro.plans.sampling import random_join_tree


class RandomSearch:
    """QuickPick-style random plan search driven by real execution."""

    def __init__(self, database: Database, seed: int = 0) -> None:
        self.database = database
        self.seed = seed

    def optimize(
        self,
        query: Query,
        max_executions: int = 100,
        time_budget: float | None = None,
        initial_timeout: float | None = 600.0,
    ) -> OptimizationResult:
        """Run random search for ``query`` under the shared budget model."""
        rng = np.random.default_rng((self.seed, abs(hash(query.name)) % (2**31)))
        result = OptimizationResult(query_name=query.name, technique="Random")
        default_plan = self.database.plan(query)
        default_execution = self.database.execute(query, default_plan, timeout=initial_timeout)
        result.record(
            default_plan,
            default_execution.latency,
            default_execution.timed_out,
            initial_timeout,
            source="default",
        )
        best = default_execution.latency if not default_execution.timed_out else initial_timeout
        seen = {default_plan.canonical()}
        while result.num_executions < max_executions:
            if time_budget is not None and result.total_cost >= time_budget:
                break
            plan = random_join_tree(query, rng)
            key = plan.canonical()
            if key in seen:
                continue
            seen.add(key)
            timeout = best
            execution = self.database.execute(query, plan, timeout=timeout)
            result.record(plan, execution.latency, execution.timed_out, timeout, source="random")
            if not execution.timed_out and (best is None or execution.latency < best):
                best = execution.latency
        return result
