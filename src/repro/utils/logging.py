"""Shared diagnostic logging for scripts, examples and benchmarks.

Benchmarks print machine-parsed result tables on **stdout**; progress and
diagnostic chatter used to ride the same stream via bare ``print`` calls,
which breaks anything parsing the output.  :func:`get_logger` routes
diagnostics to **stderr** instead, behind one process-wide handler:

* level comes from the ``REPRO_LOG_LEVEL`` environment variable
  (``DEBUG`` / ``INFO`` / ``WARNING`` / ...; default ``INFO``),
* every logger is a child of the ``repro`` root, so one knob governs all,
* the root does not propagate, so embedding applications with their own
  logging config never see duplicate records.
"""

from __future__ import annotations

import logging
import os

_ENV_LEVEL = "REPRO_LOG_LEVEL"
_configured = False


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` stderr logger (or a named child of it).

    The first call installs the stream handler and applies the
    ``REPRO_LOG_LEVEL`` environment knob; later calls just hand out loggers.
    ``get_logger("repro.serve")`` and ``get_logger("serve")`` name the same
    child.
    """
    global _configured
    root = logging.getLogger("repro")
    if not _configured:
        handler = logging.StreamHandler()  # sys.stderr
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s", datefmt="%H:%M:%S")
        )
        root.addHandler(handler)
        root.propagate = False
        level = os.environ.get(_ENV_LEVEL, "INFO").upper()
        try:
            root.setLevel(level)
        except ValueError:
            root.setLevel(logging.INFO)
            root.warning("invalid %s=%r, defaulting to INFO", _ENV_LEVEL, level)
        _configured = True
    if name is None or name == "repro":
        return root
    child = name[len("repro.") :] if name.startswith("repro.") else name
    return root.getChild(child)
