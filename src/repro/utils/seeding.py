"""Process-stable seed derivation.

Python's built-in ``hash()`` is salted per process (PEP 456), so any RNG
seeded from ``hash(some_string)`` reproduces only when ``PYTHONHASHSEED`` is
pinned — and never matches across the worker processes of a process-pool
execution backend.  Every seed in this repository that is derived from a
string therefore goes through :func:`stable_digest`, a sha256-based digest
that is identical in every process, on every platform, on every run.
"""

from __future__ import annotations

import hashlib

__all__ = ["stable_digest"]


def stable_digest(*parts: object, bits: int = 32) -> int:
    """A process-stable non-negative integer digest of ``parts``.

    Parts are rendered with ``repr`` and joined with an unambiguous
    separator, so ``stable_digest("ab", "c") != stable_digest("a", "bc")``.
    The result lies in ``[0, 2**bits)``.
    """
    if not 1 <= bits <= 256:
        raise ValueError("bits must be in [1, 256]")
    payload = "\x1f".join(repr(part) for part in parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest, "big") % (1 << bits)
