"""Small shared utilities (stable seeding, …) with no repro-internal deps."""

from repro.utils.seeding import stable_digest

__all__ = ["stable_digest"]
