"""Small shared utilities (stable seeding, stderr logging, …) with no
repro-internal deps."""

from repro.utils.logging import get_logger
from repro.utils.seeding import stable_digest

__all__ = ["get_logger", "stable_digest"]
