"""PlanLM: the cross-query plan generator (the paper's fine-tuned LLM, Section 4.4/5.6).

The paper fine-tunes GPT-4o-mini on plan strings collected from past BayesQO
runs and samples it to seed future optimizations.  Offline, we substitute a
small conditional language model over the same plan string language: the
model is conditioned on the query (the multi-hot set of its alias symbols)
and trained autoregressively on the best plans of previous optimization runs.
Its behaviour matches what Figure 8 measures — it produces good plans for
query templates it was trained on and noticeably worse plans for held-out
templates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.result import OptimizationResult
from repro.db.query import Query
from repro.exceptions import ModelError
from repro.nn.layers import Embedding, Linear, Tanh
from repro.nn.losses import cross_entropy, softmax
from repro.nn.optim import Adam, clip_gradients
from repro.plans.encoding import PlanCodec
from repro.plans.jointree import JoinTree
from repro.plans.vocabulary import PlanVocabulary


@dataclass
class FineTuneExample:
    """One training example: a query context and a target plan token sequence."""

    query_name: str
    template: str | None
    context: np.ndarray
    tokens: np.ndarray


def query_context(query: Query, vocabulary: PlanVocabulary) -> np.ndarray:
    """Multi-hot encoding of the query's alias symbols (the conditioning signal)."""
    context = np.zeros(vocabulary.size)
    for alias in query.aliases:
        context[vocabulary.alias_id(alias)] = 1.0
    return context


def build_finetune_dataset(
    runs: dict[str, OptimizationResult],
    queries: dict[str, Query],
    vocabulary: PlanVocabulary,
    max_length: int,
    top_k: int = 5,
) -> list[FineTuneExample]:
    """Collect the ``top_k`` fastest plans of every optimization run.

    Mirrors the paper's fine-tuning dataset construction (top-1 and top-5
    plans per optimized query).
    """
    codec = PlanCodec(vocabulary)
    examples: list[FineTuneExample] = []
    for name, run in runs.items():
        query = queries[name]
        successful = [record for record in run.trace if not record.censored]
        successful.sort(key=lambda record: record.latency)
        seen: set[str] = set()
        for record in successful:
            key = record.plan.canonical()
            if key in seen:
                continue
            seen.add(key)
            tokens = codec.encode_padded(record.plan, query, max_length)
            examples.append(
                FineTuneExample(
                    query_name=name,
                    template=query.template,
                    context=query_context(query, vocabulary),
                    tokens=np.asarray(tokens, dtype=np.int64),
                )
            )
            if len(seen) >= top_k:
                break
    return examples


@dataclass
class PlanLMConfig:
    """Hyper-parameters of the conditional plan language model."""

    hidden_dim: int = 96
    epochs: int = 60
    batch_size: int = 32
    learning_rate: float = 3e-3
    temperature: float = 0.7
    seed: int = 0


class PlanLM:
    """A conditional autoregressive language model over plan strings."""

    def __init__(
        self,
        vocabulary: PlanVocabulary,
        max_length: int,
        config: PlanLMConfig | None = None,
    ) -> None:
        self.vocabulary = vocabulary
        self.max_length = max_length
        self.config = config or PlanLMConfig()
        self.codec = PlanCodec(vocabulary)
        rng = np.random.default_rng(self.config.seed)
        hidden = self.config.hidden_dim
        self.context_proj = Linear(vocabulary.size, hidden, rng)
        self.token_embedding = Embedding(vocabulary.size, hidden, rng)
        self.position_embedding = Embedding(max_length, hidden, rng)
        self.activation = Tanh()
        self.output = Linear(hidden, vocabulary.size, rng)
        self._trained = False

    # ------------------------------------------------------------------ parameters
    def parameters(self):
        params = []
        for layer in (self.context_proj, self.token_embedding, self.position_embedding, self.output):
            params.extend(layer.parameters())
        return params

    # ------------------------------------------------------------------ forward
    def _logits(self, contexts: np.ndarray, prev_tokens: np.ndarray, positions: np.ndarray) -> np.ndarray:
        hidden = (
            self.context_proj.forward(contexts)
            + self.token_embedding.forward(prev_tokens)
            + self.position_embedding.forward(positions)
        )
        return self.output.forward(self.activation.forward(hidden))

    def _backward(self, grad_logits: np.ndarray) -> None:
        grad_hidden = self.activation.backward(self.output.backward(grad_logits))
        self.context_proj.backward(grad_hidden)
        self.token_embedding.backward(grad_hidden)
        self.position_embedding.backward(grad_hidden)

    # ------------------------------------------------------------------ training
    def fit(self, examples: list[FineTuneExample]) -> list[float]:
        """Teacher-forced training on (context, plan string) pairs; returns the loss curve."""
        if not examples:
            raise ModelError("cannot fine-tune the PlanLM on an empty dataset")
        rng = np.random.default_rng(self.config.seed)
        contexts = np.stack([example.context for example in examples])
        tokens = np.stack([example.tokens for example in examples])
        pad = self.vocabulary.pad_id
        # Build flattened (context, previous token, position) -> next token rows.
        rows_context, rows_prev, rows_pos, rows_target = [], [], [], []
        for i in range(len(examples)):
            previous = pad
            for position in range(self.max_length):
                target = tokens[i, position]
                rows_context.append(contexts[i])
                rows_prev.append(previous)
                rows_pos.append(position)
                rows_target.append(target)
                previous = target
        rows_context = np.asarray(rows_context)
        rows_prev = np.asarray(rows_prev, dtype=np.int64)
        rows_pos = np.asarray(rows_pos, dtype=np.int64)
        rows_target = np.asarray(rows_target, dtype=np.int64)
        optimizer = Adam(self.parameters(), lr=self.config.learning_rate)
        losses: list[float] = []
        count = len(rows_target)
        batch_size = min(self.config.batch_size * self.max_length, count)
        for _ in range(self.config.epochs):
            batch = rng.integers(0, count, size=batch_size)
            optimizer.zero_grad()
            logits = self._logits(rows_context[batch], rows_prev[batch], rows_pos[batch])
            loss, grad = cross_entropy(logits, rows_target[batch])
            self._backward(grad)
            clip_gradients(self.parameters(), 5.0)
            optimizer.step()
            losses.append(loss)
        self._trained = True
        return losses

    # ------------------------------------------------------------------ generation
    def sample_tokens(self, query: Query, rng: np.random.Generator) -> list[int]:
        """Sample one plan string for ``query`` autoregressively."""
        context = query_context(query, self.vocabulary)[None, :]
        previous = np.array([self.vocabulary.pad_id], dtype=np.int64)
        tokens: list[int] = []
        for position in range(self.max_length):
            logits = self._logits(context, previous, np.array([position], dtype=np.int64))
            probs = softmax(logits / max(self.config.temperature, 1e-3))[0]
            token = int(rng.choice(self.vocabulary.size, p=probs / probs.sum()))
            tokens.append(token)
            previous = np.array([token], dtype=np.int64)
        return tokens

    def generate_plans(self, query: Query, count: int, seed: int | None = None) -> list[JoinTree]:
        """Sample ``count`` plans for ``query`` (decoded through the repairing codec)."""
        if not self._trained:
            raise ModelError("the PlanLM must be fit before generating plans")
        rng = np.random.default_rng(self.config.seed if seed is None else seed)
        plans: list[JoinTree] = []
        for _ in range(count):
            tokens = self.sample_tokens(query, rng)
            plans.append(self.codec.decode(tokens, query))
        return plans
