"""Cross-query learning: the PlanLM initializer (the paper's fine-tuned LLM)."""

from repro.llm.planlm import (
    FineTuneExample,
    PlanLM,
    PlanLMConfig,
    build_finetune_dataset,
    query_context,
)

__all__ = [
    "FineTuneExample",
    "PlanLM",
    "PlanLMConfig",
    "build_finetune_dataset",
    "query_context",
]
