"""Cross-query learning: fine-tune the PlanLM on past BayesQO runs.

Reproduces the workflow of Section 4.4 / 5.6: optimize a handful of queries
with BayesQO, collect their best plans as a fine-tuning dataset, train the
PlanLM (the offline stand-in for the paper's fine-tuned GPT-4o-mini), and use
it to generate initialization points for a query it has never seen.

Run with::

    python examples/cross_query_llm.py
"""

from __future__ import annotations

from repro.baselines import BaoOptimizer
from repro.core import BayesQO, BayesQOConfig, VAETrainingConfig, train_schema_model
from repro.llm import PlanLM, PlanLMConfig, build_finetune_dataset
from repro.plans.encoding import sequence_length
from repro.workloads import build_ceb_workload
from repro.utils import get_logger

logger = get_logger("examples.cross_query_llm")


def main() -> None:
    workload = build_ceb_workload(scale=0.12, seed=0, num_templates=3, queries_per_template=4)
    database = workload.database
    schema_model = train_schema_model(
        database, workload.queries,
        VAETrainingConfig(training_steps=1200, corpus_queries=100),
        max_aliases=workload.max_aliases,
    )
    bayes = BayesQO(database, schema_model, config=BayesQOConfig(max_executions=35, seed=0))

    # 1. Optimize a few queries and collect their traces.
    train_queries = workload.queries[:4]
    runs = {query.name: bayes.optimize(query) for query in train_queries}
    print("Collected optimization traces:")
    for name, run in runs.items():
        print(f"  {name}: best {run.best_latency:.4f} s over {run.num_executions} executions")

    # 2. Fine-tune the PlanLM on the top plans of those runs.
    max_length = sequence_length(max(query.num_tables for query in workload.queries))
    examples = build_finetune_dataset(
        runs, {query.name: query for query in train_queries},
        schema_model.vocabulary, max_length, top_k=5,
    )
    model = PlanLM(schema_model.vocabulary, max_length, PlanLMConfig(epochs=120, seed=0))
    model.fit(examples)
    logger.info("fine-tuned the PlanLM on %d (query, plan) examples", len(examples))

    # 3. Use the PlanLM to seed BayesQO on an unseen query of a seen template.
    target = workload.queries[4]
    bao_best = BaoOptimizer(database).optimize(target).best_latency
    llm_bayes = BayesQO(
        database, schema_model,
        config=BayesQOConfig(max_executions=35, initialization="llm", num_initial_plans=15, seed=0),
        plan_generator=model,
    )
    run = llm_bayes.optimize(target)
    print(f"\nTarget query {target.name}:")
    print(f"  best Bao hint-set plan : {bao_best:.4f} s")
    print(f"  BayesQO (LLM init)     : {run.best_latency:.4f} s")
    print(f"  initialization sources : {run.sources()}")


if __name__ == "__main__":
    main()
