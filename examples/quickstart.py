"""Quickstart: optimize one repeated analytics query offline with BayesQO.

Builds the scaled-down IMDB-analogue database, trains the per-schema plan VAE,
runs BayesQO on a single JOB-like query and compares the result against the
default optimizer plan and the best Bao hint-set plan.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.baselines import BaoOptimizer
from repro.core import BayesQO, BayesQOConfig, PlanCache, VAETrainingConfig
from repro.workloads import build_job_workload


def main() -> None:
    # 1. Build a workload: a populated database plus a set of benchmark queries.
    workload = build_job_workload(scale=0.15, seed=0, num_queries=20)
    database = workload.database
    healthy = workload.healthy_queries(limit=1)
    if not healthy:
        raise SystemExit(
            "every generated query is pathological at this scale/seed "
            "(default plans exceed the simulated timeout); try another seed"
        )
    query = healthy[0]
    print(f"Optimizing query {query.name} joining {query.num_tables} tables:")
    print(f"  {query.sql()[:160]}...")

    # 2. Baselines: the default optimizer plan and the best of the 49 Bao hint sets.
    default_latency = database.execute(query, timeout=600.0).latency
    bao = BaoOptimizer(database).optimize(query)
    print(f"\nDefault optimizer plan latency : {default_latency:.4f} s")
    print(f"Best Bao hint-set plan latency : {bao.best_latency:.4f} s ({bao.best_hint_set})")

    # 3. BayesQO: train the per-schema VAE once, then optimize the query offline.
    optimizer = BayesQO.for_workload(
        workload,
        config=BayesQOConfig(max_executions=60, seed=0),
        vae_config=VAETrainingConfig(training_steps=1500, corpus_queries=120),
    )
    result = optimizer.optimize(query)
    print(f"\nBayesQO best plan latency      : {result.best_latency:.4f} s")
    print(f"  improvement over Bao         : {result.improvement_over(bao.best_latency):.1f}%")
    print(f"  improvement over default     : {result.improvement_over(default_latency):.1f}%")
    print(f"  executions used              : {result.num_executions}")
    print(f"  optimization budget consumed : {result.total_cost:.1f} simulated seconds")
    print(f"  best plan                    : {result.best_plan.canonical()}")

    # 4. Cache the plan for the online component.
    cache = PlanCache()
    cache.store(query, result)
    print(f"\nPlan cached for signature {query.signature()[:2]}... "
          f"({len(cache)} entry in the plan cache)")


if __name__ == "__main__":
    main()
