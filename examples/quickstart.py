"""Quickstart: optimize one repeated analytics query offline with BayesQO.

Builds the scaled-down IMDB-analogue database, trains the per-schema plan VAE,
runs BayesQO on a single JOB-like query and compares the result against the
default optimizer plan and the best Bao hint-set plan — then runs the same
single query again with the batched ask (q=4 plans in flight on a process
pool), the configuration that saturates parallel hardware even with only one
query to optimize.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.baselines import BaoOptimizer
from repro.core import BayesQOConfig, ExecutionServiceConfig, PlanCache, VAETrainingConfig
from repro.core.protocol import BudgetSpec, drive_state
from repro.harness import WorkloadSession
from repro.utils import get_logger
from repro.workloads import build_job_workload

logger = get_logger("examples.quickstart")


def main() -> None:
    # 1. Build a workload: a populated database plus a set of benchmark queries.
    #    The data generator caps foreign-key fanout, so scaled-down queries
    #    stay executable — no need to probe for a usable query.
    workload = build_job_workload(scale=0.15, seed=0, num_queries=20)
    database = workload.database
    query = workload.queries[0]
    logger.info("optimizing query %s joining %d tables: %s...",
                query.name, query.num_tables, query.sql()[:160])

    # 2. Baselines: the default optimizer plan and the best of the 49 Bao hint
    #    sets, driven through the ask/tell protocol.
    default_latency = database.execute(query, timeout=600.0).latency
    bao_optimizer = BaoOptimizer(database)
    bao_state = bao_optimizer.start(query)
    drive_state(bao_optimizer, database, bao_state)
    bao = bao_optimizer.outcome(bao_state)
    print(f"\nDefault optimizer plan latency : {default_latency:.4f} s")
    print(f"Best Bao hint-set plan latency : {bao.best_latency:.4f} s ({bao.best_hint_set})")

    # 3. BayesQO through a WorkloadSession: the session trains the per-schema
    #    VAE once (shared by every run below) and owns the optimization loop.
    session = WorkloadSession(
        workload,
        queries=[query],
        budget=BudgetSpec(max_executions=60),
        bayes_config=BayesQOConfig(max_executions=60, seed=0),
        vae_config=VAETrainingConfig(training_steps=1500, corpus_queries=120),
    )
    result = session.run("bayesqo")[query.name]
    print(f"\nBayesQO best plan latency      : {result.best_latency:.4f} s")
    print(f"  improvement over Bao         : {result.improvement_over(bao.best_latency):.1f}%")
    print(f"  improvement over default     : {result.improvement_over(default_latency):.1f}%")
    print(f"  executions used              : {result.num_executions}")
    print(f"  optimization budget consumed : {result.total_cost:.1f} simulated seconds")
    print(f"  best plan                    : {result.best_plan.canonical()}")

    # 4. The batched ask: the same single query with q=4 plans in flight on a
    #    process pool.  One query cannot keep 4 workers busy at q=1; with
    #    batch_size=4 the BO engine proposes 4 jointly informative candidates
    #    per acquisition round.  batch_execution=True (the default, spelled
    #    out here) sends each round's 4 proposals to the executor as ONE
    #    batch: shared join subtrees across the sibling plans execute once,
    #    and every plan still gets its own bit-for-bit latency/censoring.
    with WorkloadSession(
        workload,
        queries=[query],
        budget=BudgetSpec(max_executions=60),
        schema_model=session.ensure_schema_model(),  # reuse the trained VAE
        bayes_config=BayesQOConfig(max_executions=60, seed=0),
        exec_config=ExecutionServiceConfig(
            backend="process", max_workers=4, batch_size=4, batch_execution=True
        ),
    ) as batched_session:
        batched = batched_session.run("bayesqo")[query.name]
    print(f"\nBayesQO (q=4, process pool)    : {batched.best_latency:.4f} s "
          f"({batched.num_executions} executions)")
    print("  (batch_execution groups each round's q proposals into one "
          "executor pass; at q=1 there is nothing to group and submission "
          "falls back to per-request)")

    # 5. Cache the plan for the online component.
    cache = PlanCache()
    cache.store(query, result)
    print(f"\nPlan cached for signature {query.signature()[:2]}... "
          f"({len(cache)} entry in the plan cache)")


if __name__ == "__main__":
    main()
