"""Data drift and re-optimization on the Stack-analogue workload.

Simulates the paper's drift experiment (Section 5.5): optimize a query on a
"past" snapshot of the database, let the data drift forward two synthetic
years, measure how the stale plan performs on the "future" data, and then
re-optimize seeding the search with the stale plan.

Run with::

    python examples/drift_and_reoptimization.py
"""

from __future__ import annotations

from repro.baselines import BaoOptimizer
from repro.core import (
    BayesQO,
    BayesQOConfig,
    OnlinePlanner,
    VAETrainingConfig,
    reoptimize,
    train_schema_model,
)
from repro.workloads import STACK_DATE_2017, build_stack_workload, deletion_fraction, rollback_to_date
from repro.utils import get_logger

logger = get_logger("examples.drift")


def main() -> None:
    workload = build_stack_workload(scale=0.08, seed=0, num_templates=6, num_queries=12)
    future_db = workload.database
    past_db = rollback_to_date(future_db, STACK_DATE_2017)
    removed = deletion_fraction(future_db, past_db)
    logger.info("rolled the Stack database back to day %d: %.1f%% of rows removed "
                "(the 'past' snapshot)", STACK_DATE_2017, removed * 100)

    query = workload.queries[0]
    vae_config = VAETrainingConfig(training_steps=1200, corpus_queries=100)
    config = BayesQOConfig(max_executions=40, seed=0)

    # Optimize in the past.
    past_model = train_schema_model(past_db, workload.queries, vae_config,
                                    max_aliases=workload.max_aliases)
    past_bayes = BayesQO(past_db, past_model, config=config)
    past_run = past_bayes.optimize(query)
    print(f"\nOffline optimization in the past: best latency {past_run.best_latency:.4f} s")

    # The data drifts; the online component notices the regression.
    stale_latency = future_db.execute(query, past_run.best_plan, timeout=600.0).latency
    bao_future = BaoOptimizer(future_db).optimize(query).best_latency
    print(f"Stale plan on the future data   : {stale_latency:.4f} s "
          f"(best Bao hint on future data: {bao_future:.4f} s)")
    planner = OnlinePlanner(future_db)
    planner.cache.store_plan(query, past_run.best_plan, latency=past_run.best_latency)
    planner.execute(query)
    print(f"Online planner flags re-optimization: {planner.should_reoptimize(query)}")

    # Re-optimize on the future data, seeding BO with the stale plan.
    future_model = train_schema_model(future_db, workload.queries, vae_config,
                                      max_aliases=workload.max_aliases)
    future_bayes = BayesQO(future_db, future_model, config=config)
    outcome = reoptimize(future_bayes, query, past_run.best_plan, max_executions=25)
    print(f"\nRe-optimized plan latency       : {outcome.best_latency:.4f} s")
    print(f"Re-optimization budget          : {outcome.result.total_cost:.1f} simulated seconds")
    print(f"Improved over the stale plan    : {outcome.improved}")


if __name__ == "__main__":
    main()
