"""Compare offline optimization techniques on a JOB-analogue workload sample.

Runs BayesQO, Random search and the simplified Balsa agent with the same
per-query execution budget (the Figure 3 methodology) and prints per-query
improvements over the best Bao hint-set plan plus the improvement CDF.

The loop owner is a :class:`repro.harness.WorkloadSession`: it resolves each
technique from the registry, drives it through the ask/tell protocol
(``start``/``suggest``/``observe``/``finish``), shares one schema model and
budget, and computes the Bao baseline exactly once.  Plan executions are
routed through a pluggable execution backend (:mod:`repro.exec`): inline on
the scheduler thread, a thread pool that overlaps DBMS waiting, or a process
pool whose workers hold warm database replicas (scales CPU-bound simulated
executions past the GIL).  A scheduling policy decides which query gets each
free execution slot — ``round_robin``, or ``budget_aware`` to spend remaining
budget where BayesQO's surrogate predicts the largest improvement.  Every
backend/policy pair produces identical per-query traces; techniques whose
registry entry is marked ``order_sensitive`` (Balsa shares its RNG and value
network across queries) are automatically kept sequential so their results
stay deterministic too.

Calling ``optimizer.optimize(...)`` directly still works but is deprecated:
it spins up a private single-query loop that cannot share budgets, schema
models or the execution backend.  Prefer a session (or the thin
``run_technique``/``run_comparison`` wrappers).

Run with::

    python examples/compare_techniques.py [--backend inline|thread|process]
                                          [--policy round_robin|budget_aware]
                                          [--workers N]
"""

from __future__ import annotations

import argparse

from repro.core import BayesQOConfig, ExecutionServiceConfig, VAETrainingConfig
from repro.harness import (
    BudgetSpec,
    WorkloadSession,
    format_cdf,
    format_table,
    improvement_cdf,
    improvement_distribution,
)
from repro.workloads import build_job_workload
from repro.utils import get_logger

logger = get_logger("examples.compare_techniques")

NUM_QUERIES = 4
EXECUTIONS = 40
TECHNIQUES = ("bayesqo", "random", "balsa")


def main() -> None:
    parser = argparse.ArgumentParser(description="Figure 3 style technique comparison")
    parser.add_argument("--backend", default="thread",
                        choices=["inline", "thread", "process"],
                        help="execution backend for plan executions")
    parser.add_argument("--policy", default="round_robin",
                        choices=["round_robin", "budget_aware"],
                        help="cross-query scheduling policy")
    parser.add_argument("--workers", type=int, default=4,
                        help="concurrent plan executions")
    args = parser.parse_args()

    workload = build_job_workload(scale=0.15, seed=0, num_queries=20)
    # Fanout-capped data generation keeps most scaled-down queries executable,
    # so the comparison just takes the first few — no probing.  A genuinely
    # hard query (every plan censors within the budget) shows up honestly as
    # a `nan` best latency against the Bao fallback baseline, like any query
    # offline optimization fails to crack.
    queries = workload.queries[:NUM_QUERIES]
    logger.info(
        "comparing techniques on %d %s queries (%d plan executions each, "
        "backend=%s, policy=%s, workers=%d)",
        len(queries), workload.name, EXECUTIONS, args.backend, args.policy, args.workers,
    )

    with WorkloadSession(
        workload,
        queries=queries,
        budget=BudgetSpec(max_executions=EXECUTIONS),
        bayes_config=BayesQOConfig(max_executions=EXECUTIONS, seed=0),
        vae_config=VAETrainingConfig(training_steps=1500, corpus_queries=120),
        seed=0,
        exec_config=ExecutionServiceConfig(
            backend=args.backend, max_workers=args.workers, policy=args.policy
        ),
    ) as session:
        bao_latencies = session.bao_latencies()
        results = {technique: session.run(technique) for technique in TECHNIQUES}

    rows = []
    for query in queries:
        row = [query.name, f"{bao_latencies[query.name]:.4f}"]
        for technique in TECHNIQUES:
            best = results[technique][query.name].best_latency_or(float("nan"))
            row.append(f"{best:.4f}")
        rows.append(row)
    print()
    print(format_table(["query", "bao best (s)", "bayesqo (s)", "random (s)", "balsa (s)"], rows,
                       title="Best plan latency per technique"))

    series = {
        technique: improvement_cdf(improvement_distribution(technique_results, bao_latencies),
                                   thresholds=[0.0, 10.0, 25.0, 50.0])
        for technique, technique_results in results.items()
    }
    print()
    print(format_cdf(series, "Fraction of queries with >= x% improvement over Bao"))


if __name__ == "__main__":
    main()
