"""Compare offline optimization techniques on a JOB-analogue workload sample.

Runs BayesQO, Random search and the simplified Balsa agent with the same
per-query execution budget (the Figure 3 methodology) and prints per-query
improvements over the best Bao hint-set plan plus the improvement CDF.

Run with::

    python examples/compare_techniques.py
"""

from __future__ import annotations

from repro.core import BayesQOConfig, VAETrainingConfig
from repro.harness import (
    BudgetSpec,
    format_cdf,
    format_table,
    improvement_cdf,
    improvement_distribution,
    prepare_schema_model,
    run_comparison,
)
from repro.workloads import build_job_workload

NUM_QUERIES = 4
EXECUTIONS = 40


def main() -> None:
    workload = build_job_workload(scale=0.15, seed=0, num_queries=20)
    queries = workload.queries[:NUM_QUERIES]
    print(f"Comparing techniques on {len(queries)} {workload.name} queries "
          f"({EXECUTIONS} plan executions each)...")
    schema_model = prepare_schema_model(
        workload, VAETrainingConfig(training_steps=1500, corpus_queries=120)
    )
    run = run_comparison(
        workload,
        queries,
        BudgetSpec(max_executions=EXECUTIONS),
        techniques=["bayesqo", "random", "balsa"],
        schema_model=schema_model,
        bayes_config=BayesQOConfig(max_executions=EXECUTIONS, seed=0),
    )

    rows = []
    for query in queries:
        row = [query.name, f"{run.bao_latencies[query.name]:.4f}"]
        for technique in ("bayesqo", "random", "balsa"):
            best = run.results[technique][query.name].best_latency_or(float("nan"))
            row.append(f"{best:.4f}")
        rows.append(row)
    print()
    print(format_table(["query", "bao best (s)", "bayesqo (s)", "random (s)", "balsa (s)"], rows,
                       title="Best plan latency per technique"))

    series = {
        technique: improvement_cdf(improvement_distribution(results, run.bao_latencies),
                                   thresholds=[0.0, 10.0, 25.0, 50.0])
        for technique, results in run.results.items()
    }
    print()
    print(format_cdf(series, "Fraction of queries with >= x% improvement over Bao"))


if __name__ == "__main__":
    main()
