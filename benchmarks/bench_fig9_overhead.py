"""Figure 9: per-iteration overhead of the BO loop.

The paper breaks BO overhead into surrogate update, timeout calculation, VAE
sampling and candidate generation, on CPU and GPU and at 1x / 5x simultaneous
runs.  Offline we have no GPU, so this bench reports the same breakdown for
the numpy implementation in two configurations: a single run and five
sequentially interleaved runs (the aggregate cost of serving five optimizations
from one process).  The shape to look for: overhead is dominated by the
surrogate update and stays in the sub-second range per iteration, i.e. small
relative to query execution for long-running queries.
"""

from __future__ import annotations

from repro.core import BayesQO, BayesQOConfig
from repro.harness import format_table

EXECUTIONS = 20


def run_overhead(job_workload, job_schema_model, simultaneous: int):
    database = job_workload.database
    queries = job_workload.queries[:simultaneous]
    optimizer = BayesQO(
        database, job_schema_model, config=BayesQOConfig(max_executions=EXECUTIONS, seed=0)
    )
    for query in queries:
        optimizer.optimize(query)
    return optimizer.overhead


def test_fig9_overhead_breakdown(benchmark, job_workload, job_schema_model):
    single = run_overhead(job_workload, job_schema_model, simultaneous=1)
    five = benchmark.pedantic(
        run_overhead, args=(job_workload, job_schema_model, 5), rounds=1, iterations=1
    )
    print()
    for label, overhead in (("1x simultaneous run", single), ("5x simultaneous runs", five)):
        per_iteration = overhead.per_iteration()
        rows = [[component, f"{seconds * 1000:.1f} ms"] for component, seconds in per_iteration.items()]
        rows.append(["TOTAL", f"{sum(per_iteration.values()) * 1000:.1f} ms"])
        print(format_table(["component", "per-iteration wall clock"], rows,
                           title=f"Figure 9: BO overhead, {label} (CPU)"))
        print()
    assert single.iterations > 0 and five.iterations > 0
    # The breakdown covers the four components the paper reports.
    assert set(single.per_iteration()) == {
        "surrogate_update", "calculate_timeout", "vae_sampling", "generate_candidates",
    }
