"""Executor kernel + batch-execution benchmark: the vectorized hot path.

The offline tuner's inner loop is plan execution, and with the batched ask
each acquisition round hands the executor q sibling plans — local edits of
one incumbent that share most of their join subtrees.  This bench replays
that pattern (streams of q=4 sibling batches around a drifting incumbent)
against **cache-cold** executors (execution memoization off, so every
speedup measured here is the hot path itself, not the PR 5 memo layer) and
gates the two claims of the kernel/batch work:

* **kernel_speedup_ratio** — columnar kernels alone (cached predicate
  bitmaps + selections, factorized join indexes, fused residual filters) at
  q=1 sequential execution must beat the pre-kernel reference path by at
  least ``KERNEL_REQUIRED_SPEEDUP``;
* **batch_speedup_ratio** — one-pass batch execution
  (``Executor.run_batch`` at q=4, shared subtrees executed once per batch)
  on top of the kernels must beat the pre-PR sequential reference by at
  least ``BATCH_REQUIRED_SPEEDUP``;
* **equivalence** — every arm of the grid kernels on/off x batch on/off x
  cache on/off produces the bit-for-bit identical trace (latency, censoring,
  output rows), including timeout censoring and work-cap aborts (random
  sibling edits routinely produce catastrophic join orders that hit the
  materialization cap under a finite timeout).

Run:  PYTHONPATH=src python benchmarks/bench_exec_kernels.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from bench_plan_cache import MIN_TABLES, _edit, _timeout_for

from repro.db.engine import Database
from repro.plans.sampling import random_join_tree
from repro.utils import get_logger
from repro.workloads import build_job_workload

NUM_QUERIES = 3
BATCHES_PER_QUERY = 20
SMOKE_QUERIES = 2
SMOKE_BATCHES = 12
#: Plans per batch (the batched-ask q the scheduler groups into one pass).
Q = 4
KERNEL_REQUIRED_SPEEDUP = 1.5
BATCH_REQUIRED_SPEEDUP = 3.0
#: Every RESTART_EVERY batches the incumbent re-centers on a fresh random
#: plan — the cold exploration every arm pays for identically.
RESTART_EVERY = 8


def sibling_batches(query, start_plan, num_batches: int, seed: int) -> list[list]:
    """Streams of q=4 sibling plans around a drifting incumbent.

    Each batch is the incumbent plus q-1 local edits of it (edit distance
    1-2) — the trust-region neighbourhood one acquisition round decodes to,
    whose members share most of their join subtrees.  After each batch the
    incumbent drifts to a random member; periodic restarts re-center on a
    fresh random plan.
    """
    rng = np.random.default_rng(seed)
    incumbent = start_plan
    batches: list[list] = []
    for index in range(num_batches):
        if index and index % RESTART_EVERY == 0:
            incumbent = random_join_tree(query, rng)
        batch = [incumbent]
        for _ in range(Q - 1):
            batch.append(_edit(incumbent, int(rng.integers(1, 3)), rng))
        batches.append(batch)
        incumbent = batch[int(rng.integers(0, Q))]
    return batches


def clear_kernel_caches(database: Database) -> None:
    """Drop the per-relation kernel caches (relations are shared across arms)."""
    for relation in database.relations.values():
        relation._mask_cache.clear()
        relation._select_cache.clear()
        relation._index_cache.clear()


def make_arm(base: Database, *, use_kernels: bool, exec_cache: bool) -> Database:
    return Database(
        base.schema,
        base.relations,
        base.cost_params,
        noise_sigma=base.executor.noise_sigma,
        seed=base.executor.seed,
        exec_cache=exec_cache,
        use_kernels=use_kernels,
    )


def execute_stream(database: Database, query, batches, *, use_batch: bool):
    """Run every batch; return (executor wall-clock, observed trace).

    Timeouts are decided per batch from the best latency seen in *previous*
    batches (the scheduler fixes each round's timeouts before submitting
    it), so the sequential and batch arms apply identical timeouts and their
    traces are comparable bit-for-bit.
    """
    trace = []
    best_seen: float | None = None
    elapsed = 0.0
    step = 0
    for batch in batches:
        timeouts = [_timeout_for(step + slot, best_seen) for slot in range(len(batch))]
        step += len(batch)
        if use_batch:
            start = time.perf_counter()
            results = database.execute_batch(query, batch, timeouts)
            elapsed += time.perf_counter() - start
        else:
            results = []
            for plan, timeout in zip(batch, timeouts):
                start = time.perf_counter()
                results.append(database.execute(query, plan, timeout=timeout))
                elapsed += time.perf_counter() - start
        for result in results:
            if not result.timed_out:
                best_seen = (
                    result.latency if best_seen is None else min(best_seen, result.latency)
                )
            trace.append((result.latency, result.timed_out, result.output_rows))
    return elapsed, trace


#: The full equivalence grid: (name, use_kernels, use_batch, exec_cache).
#: The first three arms are also the timed ones (cache-cold hot path).
ARMS = [
    ("reference", False, False, False),  # pre-PR sequential baseline
    ("kernels", True, False, False),  # tentpole claim 1 (timed)
    ("kernels+batch", True, True, False),  # tentpole claim 2 (timed)
    ("reference+batch", False, True, False),
    ("reference+cache", False, False, True),
    ("kernels+cache", True, False, True),
    ("reference+batch+cache", False, True, True),
    ("kernels+batch+cache", True, True, True),
]


def run_benchmark(num_queries: int, batches_per_query: int, seed: int = 0) -> dict:
    workload = build_job_workload(scale=0.15, seed=seed, num_queries=24)
    base = workload.database
    queries = [q for q in workload.queries if q.num_tables >= MIN_TABLES][:num_queries]

    per_query = []
    totals = {name: 0.0 for name, *_ in ARMS}
    equivalent = True
    for index, query in enumerate(queries):
        start_plan = base.plan(query)
        batches = sibling_batches(query, start_plan, batches_per_query, seed=seed + index)
        traces = {}
        query_s = {}
        for name, use_kernels, use_batch, exec_cache in ARMS:
            arm_db = make_arm(base, use_kernels=use_kernels, exec_cache=exec_cache)
            clear_kernel_caches(arm_db)
            query_s[name], traces[name] = execute_stream(
                arm_db, query, batches, use_batch=use_batch
            )
            totals[name] += query_s[name]
        reference = traces["reference"]
        query_equivalent = all(trace == reference for trace in traces.values())
        equivalent = equivalent and query_equivalent
        per_query.append({
            "query": query.name,
            "num_tables": query.num_tables,
            "executions": batches_per_query * Q,
            "censored": sum(1 for _, timed_out, _ in reference if timed_out),
            "arm_s": query_s,
            "traces_equivalent": query_equivalent,
        })

    reference_s = totals["reference"]
    kernels_s = totals["kernels"]
    batch_s = totals["kernels+batch"]
    return {
        "workload": "JOB sibling-batch proposal streams (cache-cold)",
        "num_queries": len(queries),
        "batches_per_query": batches_per_query,
        "q": Q,
        "arm_s": totals,
        "reference_s": reference_s,
        "kernels_s": kernels_s,
        "batch_s": batch_s,
        "kernel_speedup_ratio": reference_s / kernels_s if kernels_s > 0 else float("inf"),
        "batch_speedup_ratio": reference_s / batch_s if batch_s > 0 else float("inf"),
        "traces_equivalent": equivalent,
        "required_kernel_speedup": KERNEL_REQUIRED_SPEEDUP,
        "required_batch_speedup": BATCH_REQUIRED_SPEEDUP,
        "per_query": per_query,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="smaller stream (CI smoke mode)")
    parser.add_argument("--json", metavar="PATH", help="write the result breakdown to PATH")
    args = parser.parse_args(argv)

    num_queries = SMOKE_QUERIES if args.smoke else NUM_QUERIES
    batches = SMOKE_BATCHES if args.smoke else BATCHES_PER_QUERY
    report = run_benchmark(num_queries, batches)

    print(
        f"exec-kernels @ {report['num_queries']} queries x "
        f"{report['batches_per_query']} batches x q={report['q']} (cache-cold)"
    )
    for name, *_ in ARMS:
        print(f"  {name:<24} {report['arm_s'][name] * 1e3:9.1f} ms")
    print(
        f"  kernel speedup (q=1)     {report['kernel_speedup_ratio']:.2f}x  "
        f"(gate >= {KERNEL_REQUIRED_SPEEDUP}x)"
    )
    print(
        f"  batch speedup  (q={report['q']})     {report['batch_speedup_ratio']:.2f}x  "
        f"(gate >= {BATCH_REQUIRED_SPEEDUP}x)"
    )
    print(f"  traces equivalent across all {len(ARMS)} arms: {report['traces_equivalent']}")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        get_logger("bench").info("wrote %s", args.json)

    failures = []
    if not report["traces_equivalent"]:
        failures.append("kernel/batch traces diverge from the reference execution")
    if report["kernel_speedup_ratio"] < KERNEL_REQUIRED_SPEEDUP:
        failures.append(
            f"kernel speedup {report['kernel_speedup_ratio']:.2f}x below the "
            f"required {KERNEL_REQUIRED_SPEEDUP}x"
        )
    if report["batch_speedup_ratio"] < BATCH_REQUIRED_SPEEDUP:
        failures.append(
            f"batch speedup {report['batch_speedup_ratio']:.2f}x below the "
            f"required {BATCH_REQUIRED_SPEEDUP}x"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
