"""Execution-memoization benchmark: repeated plan execution as the fast path.

The paper's offline tuner executes hundreds of candidate plans per query, and
BayesQO's trust-region proposals are *local edits* of the incumbent — plan t+1
shares most of its join subtrees with plan t, and the optimizer regularly
revisits plans it has already executed (decoded latents collide near the
incumbent).  This bench replays exactly that proposal pattern against the
executor twice — execution cache off, then on — and checks the two promises
of the memo layer (:mod:`repro.db.plan_cache`):

* **speedup**: with the cache on, the executor's wall-clock over the whole
  proposal stream must be at least ``REQUIRED_SPEEDUP`` times faster — exact
  revisits replay their recorded charge log and local edits only pay for the
  join nodes they do not share with earlier plans of the same query;
* **equivalence**: every latency, censoring flag and output row count must
  be bit-for-bit identical to the uncached run (charges are *replayed*, not
  recomputed, and latency noise is seeded per plan).

The proposal stream mimics a BayesQO trust-region run without paying for VAE
training inside a benchmark: starting from the default plan, each step
either revisits a previously proposed plan (probability ``REVISIT_P`` — the
outcome-cache case) or applies a small structural edit to the current
incumbent (operator flip or child swap at one join node — the subplan-memo
case), with timeouts cycling through the shapes the tuner produces
(uncensored, generous, and tight best-seen-style cutoffs).

Run:  PYTHONPATH=src python benchmarks/bench_plan_cache.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.db.engine import Database
from repro.plans.jointree import JOIN_OPS, JoinTree
from repro.plans.sampling import random_join_tree
from repro.workloads import build_job_workload
from repro.utils import get_logger

NUM_QUERIES = 3
PROPOSALS_PER_QUERY = 80
#: Smoke mode trims the query count but keeps the stream long enough to
#: amortize each region's cold start (short streams under-state the cache).
SMOKE_QUERIES = 2
SMOKE_PROPOSALS = 60
REQUIRED_SPEEDUP = 3.0
#: Probability that a proposal revisits an already-proposed plan (the
#: trust region re-decoding an incumbent's neighbourhood; in the paper's
#: thousands-of-executions regime a converged region re-proposes the same
#: few decoded plans over and over).
REVISIT_P = 0.5
#: Minimum number of joined tables for a query to enter the bench (deep
#: trees are where subplan sharing matters).
MIN_TABLES = 6


def _swap_children(plan: JoinTree, target: int) -> JoinTree:
    """Commute the children of join node ``target`` (post-order index)."""
    counter = {"i": 0}

    def rebuild(node: JoinTree) -> JoinTree:
        if node.is_leaf:
            return node
        left = rebuild(node.left)
        right = rebuild(node.right)
        index = counter["i"]
        counter["i"] += 1
        if index == target:
            left, right = right, left
        return JoinTree.join(left, right, node.op)

    return rebuild(plan)


def _flip_operator(plan: JoinTree, target: int, rng: np.random.Generator) -> JoinTree:
    ops = plan.operators()
    alternatives = [op for op in JOIN_OPS if op != ops[target]]
    ops[target] = alternatives[int(rng.integers(0, len(alternatives)))]
    return plan.with_operators(ops)


def _edit(center: JoinTree, edits: int, rng: np.random.Generator) -> JoinTree:
    """Apply ``edits`` local mutations (operator flip / child swap) to ``center``."""
    plan = center
    for _ in range(edits):
        target = int(rng.integers(0, plan.num_joins))
        if rng.random() < 0.5:
            plan = _flip_operator(plan, target, rng)
        else:
            plan = _swap_children(plan, target)
    return plan


def trust_region_stream(query, start_plan: JoinTree, count: int, seed: int):
    """A BayesQO-trust-region-like proposal stream: local edits + revisits.

    Proposals cluster around a *center* (the incumbent the trust region is
    anchored on — here the start plan), at an edit distance of 1-3: the
    local-edit neighbourhood a shrunken region decodes to.  With probability
    ``REVISIT_P`` a proposal re-decodes to an already-proposed plan (the
    collision case that motivates the outcome cache).  Every ~25 steps the
    region restarts from a fresh random plan and anchors there — the cold
    exploration both runs must pay for.  The first proposal is the center
    itself, matching how the tuner executes its initialization incumbent
    before proposing around it.
    """
    rng = np.random.default_rng(seed)
    center = start_plan
    proposals: list[JoinTree] = [center]
    for step in range(1, count):
        if rng.random() < REVISIT_P:
            plan = proposals[int(rng.integers(0, len(proposals)))]
        elif step % 25 == 24:
            # Trust-region restart: re-center on a fresh random plan.
            center = random_join_tree(query, rng)
            plan = center
        else:
            plan = _edit(center, int(rng.integers(1, 3)), rng)
        proposals.append(plan)
    return proposals


def _timeout_for(step: int, best_seen: float | None) -> float:
    """Timeout shapes a tuner produces: the 600 s initial cap until the first
    success, then best-seen multiples (the uncertainty/multiplier policies of
    :mod:`repro.core.timeout` all collapse to this shape).

    Always finite — exploratory join orders can exceed the executor's
    materialization work cap, which only an applied timeout converts into a
    censored observation (the same reason every technique in the harness
    executes candidates under a timeout).
    """
    if best_seen is None:
        return 600.0
    return best_seen * (4.0, 2.0, 1.5)[step % 3]


def execute_stream(database: Database, query, proposals) -> tuple[float, list]:
    """Run every proposal; return (executor wall-clock, observed trace)."""
    trace = []
    best_seen: float | None = None
    elapsed = 0.0
    for step, plan in enumerate(proposals):
        timeout = _timeout_for(step, best_seen)
        start = time.perf_counter()
        result = database.execute(query, plan, timeout=timeout)
        elapsed += time.perf_counter() - start
        if not result.timed_out:
            best_seen = result.latency if best_seen is None else min(best_seen, result.latency)
        trace.append((result.latency, result.timed_out, result.output_rows))
    return elapsed, trace


def run_benchmark(num_queries: int, proposals_per_query: int, seed: int = 0) -> dict:
    workload = build_job_workload(scale=0.15, seed=seed, num_queries=24)
    cached_db = workload.database
    uncached_db = Database(
        cached_db.schema,
        cached_db.relations,
        cached_db.cost_params,
        noise_sigma=cached_db.executor.noise_sigma,
        seed=cached_db.executor.seed,
        exec_cache=False,
    )
    queries = [q for q in workload.queries if q.num_tables >= MIN_TABLES][:num_queries]

    per_query = []
    total_off = total_on = 0.0
    equivalent = True
    for index, query in enumerate(queries):
        start_plan = uncached_db.plan(query)
        proposals = trust_region_stream(
            query, start_plan, proposals_per_query, seed=seed + index
        )
        off_s, off_trace = execute_stream(uncached_db, query, proposals)
        on_s, on_trace = execute_stream(cached_db, query, proposals)
        equivalent = equivalent and off_trace == on_trace
        total_off += off_s
        total_on += on_s
        per_query.append({
            "query": query.name,
            "num_tables": query.num_tables,
            "proposals": len(proposals),
            "distinct_plans": len({plan.canonical() for plan in proposals}),
            "uncached_s": off_s,
            "cached_s": on_s,
            "speedup": off_s / on_s if on_s > 0 else float("inf"),
            "traces_equivalent": off_trace == on_trace,
        })

    counters = cached_db.execution_cache.counters.snapshot()
    return {
        "workload": "JOB trust-region proposal streams",
        "num_queries": len(queries),
        "proposals_per_query": proposals_per_query,
        "revisit_probability": REVISIT_P,
        "uncached_s": total_off,
        "cached_s": total_on,
        "speedup": total_off / total_on if total_on > 0 else float("inf"),
        "traces_equivalent": equivalent,
        "required_speedup": REQUIRED_SPEEDUP,
        "cache_counters": counters,
        "subplan_bytes": cached_db.execution_cache.subplan_bytes,
        "per_query": per_query,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="smaller stream (CI smoke mode)")
    parser.add_argument("--json", metavar="PATH", help="write the result breakdown to PATH")
    args = parser.parse_args(argv)

    num_queries = SMOKE_QUERIES if args.smoke else NUM_QUERIES
    proposals = SMOKE_PROPOSALS if args.smoke else PROPOSALS_PER_QUERY
    report = run_benchmark(num_queries, proposals)

    print(
        f"plan-cache @ {report['num_queries']} queries x "
        f"{report['proposals_per_query']} trust-region proposals "
        f"(revisit p={report['revisit_probability']})"
    )
    for row in report["per_query"]:
        print(
            f"  {row['query']:>8}  {row['num_tables']:2d} tables  "
            f"{row['distinct_plans']:3d}/{row['proposals']} distinct  "
            f"uncached {row['uncached_s'] * 1e3:8.1f} ms  "
            f"cached {row['cached_s'] * 1e3:7.1f} ms  ({row['speedup']:.1f}x)"
        )
    counters = report["cache_counters"]
    print(
        f"  total    uncached {report['uncached_s'] * 1e3:8.1f} ms  "
        f"cached {report['cached_s'] * 1e3:7.1f} ms  ({report['speedup']:.2f}x)"
    )
    print(
        f"  outcome hits {counters['outcome_hits']}, subplan hits "
        f"{counters['subplan_hits']}, misses {counters['subplan_misses']}, "
        f"{report['subplan_bytes'] / 1e6:.1f} MB cached"
    )
    print(f"  traces equivalent: {report['traces_equivalent']}")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        get_logger("bench").info("wrote %s", args.json)

    failures = []
    if not report["traces_equivalent"]:
        failures.append("cached traces diverge from uncached execution")
    if report["speedup"] < REQUIRED_SPEEDUP:
        failures.append(
            f"plan-cache speedup {report['speedup']:.2f}x below the required "
            f"{REQUIRED_SPEEDUP}x"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
