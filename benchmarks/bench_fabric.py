"""Fabric benchmark: multi-node scaling, chaos determinism, coordinator resume.

Three arms over localhost node processes (:mod:`repro.exec.fabric`):

* **scaling** — a CPU-bound workload (every execution burns GIL-held
  Python, the ``bench_exec_backends`` regime) run on a 1-node fabric and a
  ``SCALE_NODES``-node fabric, fresh database each so no cache priming turns
  executions into replays.  Headline: ``fabric_speedup_ratio``.  The
  ``REQUIRED_SPEEDUP`` gate needs real parallel hardware — on machines with
  fewer than ``SCALE_NODES`` effective CPUs it is recorded as skipped.
* **chaos** — the ``bench_faults`` workload on a 3-node fabric under a
  seeded network-fault schedule (connection drops, partitions outliving the
  heartbeat deadline, slow links, hard node kills).  Gates: every query
  completes, traces are **bit-for-bit** identical to a fault-free inline
  run, the budget is never double-charged (exactly the reference's
  execution count), lease reassignments stay bounded and nothing gives up.
  Headline: ``chaos_overhead_ratio``.
* **resume** — the coordinator is hard-killed mid-run above a fabric
  backend, then a fresh session resumes from its checkpoint: traces
  bit-for-bit, and the resumed run pays only for work the checkpoint had
  not already paid.

Run:  PYTHONPATH=src python benchmarks/bench_fabric.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from bench_exec_backends import (
    build_bench_workload as build_cpu_workload,
    effective_cpus,
)
from bench_faults import build_bench_workload as build_chaos_workload

from repro.core.protocol import BudgetSpec
from repro.exec import NetworkFaultConfig, start_local_fabric
from repro.harness import WorkloadSession

TECHNIQUE = "random"
SEED = 0
EXECUTIONS_PER_QUERY = 8
SMOKE_EXECUTIONS = 5
SCALE_NODES = 3
REQUIRED_SPEEDUP = 1.7
BURN_ITERATIONS = 250_000
SMOKE_BURN_ITERATIONS = 150_000
KILL_AFTER = 6
CHAOS_NODES = 3
NETWORK_FAULTS = NetworkFaultConfig(
    seed=7,
    drop_rate=0.10,
    partition_rate=0.06,
    slow_link_rate=0.08,
    kill_rate=0.05,
    partition_seconds=0.6,
    slow_link_seconds=0.01,
    max_faults_per_request=1,
)
#: Tight heartbeats keep loss detection (and the bench) fast; the partition
#: above outlives the deadline, so recovery goes through the real machinery.
HEARTBEAT = dict(heartbeat_interval=0.05, heartbeat_timeout=0.4)


def signatures(results) -> dict:
    return {name: result.trace_signature() for name, result in results.items()}


class _SessionKilled(BaseException):
    """Simulated coordinator hard kill — BaseException, nothing swallows it."""


class _KillAfter:
    """Backend wrapper that raises (like a kill -9) after N submissions."""

    name = "kill-after"

    def __init__(self, inner, kills_at: int) -> None:
        self.inner = inner
        self.kills_at = kills_at
        self.executed = 0

    def capacity(self) -> int:
        return self.inner.capacity()

    def submit(self, request):
        if self.executed >= self.kills_at:
            raise _SessionKilled()
        self.executed += 1
        return self.inner.submit(request)

    def healthy(self) -> bool:
        return self.inner.healthy()

    def close(self) -> None:
        self.inner.close()


def _run_fabric(workload, budget: BudgetSpec, num_nodes: int, **fabric_kwargs):
    """One session on a fresh localhost fabric; returns (results, s, health)."""
    backend = start_local_fabric(
        workload.database, workload.queries, num_nodes=num_nodes,
        **HEARTBEAT, **fabric_kwargs,
    )
    with WorkloadSession(workload, budget=budget, seed=SEED, backend=backend) as session:
        start = time.perf_counter()
        results = session.run(TECHNIQUE)
        elapsed = time.perf_counter() - start
        health = session.health_report().get("fabric", {})
    return results, elapsed, health


def _scaling_arm(executions: int, burn_iterations: int) -> dict:
    budget = BudgetSpec(max_executions=executions)
    cpus = effective_cpus()

    # A fresh workload (fresh relations *and* a fresh execution cache) per
    # run: a warm coordinator cache would prime the nodes and turn every
    # execution into a shipped-log replay, measuring nothing.
    def fresh_workload():
        return build_cpu_workload(burn_iterations)

    one_results, one_s, _ = _run_fabric(fresh_workload(), budget, num_nodes=1)
    many_results, many_s, _ = _run_fabric(fresh_workload(), budget, num_nodes=SCALE_NODES)

    # The determinism story holds under scaling too: same traces regardless
    # of how many nodes split the work.
    with WorkloadSession(fresh_workload(), budget=budget, seed=SEED) as session:
        inline = session.run(TECHNIQUE)

    return {
        "effective_cpus": cpus,
        "scale_nodes": SCALE_NODES,
        "burn_iterations": burn_iterations,
        "one_node_s": one_s,
        "multi_node_s": many_s,
        "fabric_speedup_ratio": one_s / many_s if many_s > 0 else float("inf"),
        "required_speedup": REQUIRED_SPEEDUP,
        "speedup_gate_enforced": cpus >= SCALE_NODES,
        "scaling_traces_equivalent": (
            signatures(one_results) == signatures(many_results) == signatures(inline)
        ),
    }


def _chaos_arm(executions: int) -> dict:
    budget = BudgetSpec(max_executions=executions)

    reference_workload = build_chaos_workload()
    with WorkloadSession(reference_workload, budget=budget, seed=SEED) as session:
        start = time.perf_counter()
        reference = session.run(TECHNIQUE)
    reference_s = time.perf_counter() - start
    total = sum(result.num_executions for result in reference.values())

    chaos_workload = build_chaos_workload()
    chaos, chaos_s, health = _run_fabric(
        chaos_workload, budget, num_nodes=CHAOS_NODES, network_faults=NETWORK_FAULTS,
    )
    chaos_total = sum(result.num_executions for result in chaos.values())
    faults = health.get("network_faults", {})
    # Every reassignment consumes one bounded lease attempt: 3 x nodes per
    # lease by default, so the fleet-wide total is bounded by submissions.
    reassignment_bound = health.get("submissions", 0) * 3 * CHAOS_NODES
    return {
        "chaos_nodes": CHAOS_NODES,
        "reference_s": reference_s,
        "chaos_s": chaos_s,
        "chaos_overhead_ratio": chaos_s / reference_s if reference_s > 0 else float("inf"),
        "network_fault_config": {
            "seed": NETWORK_FAULTS.seed,
            "drop_rate": NETWORK_FAULTS.drop_rate,
            "partition_rate": NETWORK_FAULTS.partition_rate,
            "slow_link_rate": NETWORK_FAULTS.slow_link_rate,
            "kill_rate": NETWORK_FAULTS.kill_rate,
        },
        "network_faults": faults,
        "faults_injected": faults.get("total_faults", 0),
        "lease_reassignments": health.get("lease_reassignments", 0),
        "reassignments_bounded": health.get("lease_reassignments", 0) <= reassignment_bound,
        "node_losses": health.get("node_losses", 0),
        "reconnects": health.get("reconnects", 0),
        "give_ups": health.get("give_ups", 0),
        "degraded_executions": health.get("degraded_executions", 0),
        "chaos_all_queries_completed": set(chaos) == set(reference),
        "chaos_traces_equivalent": signatures(chaos) == signatures(reference),
        "reference_executions": total,
        "chaos_executions": chaos_total,
        "budget_single_charged": chaos_total == total,
    }


def _resume_arm(executions: int, checkpoint_dir: str) -> dict:
    budget = BudgetSpec(max_executions=executions)

    reference_workload = build_chaos_workload()
    with WorkloadSession(reference_workload, budget=budget, seed=SEED) as session:
        reference = session.run(TECHNIQUE)
    reference_sig = signatures(reference)
    total = sum(result.num_executions for result in reference.values())

    checkpoint_path = os.path.join(checkpoint_dir, "bench_fabric.ckpt")
    killed_workload = build_chaos_workload()
    killer = _KillAfter(
        start_local_fabric(
            killed_workload.database, killed_workload.queries, num_nodes=2, **HEARTBEAT,
        ),
        kills_at=KILL_AFTER,
    )
    killed = False
    session = WorkloadSession(
        killed_workload, budget=budget, seed=SEED, backend=killer,
        checkpoint_path=checkpoint_path, checkpoint_every=1,
    )
    try:
        session.run(TECHNIQUE)
    except _SessionKilled:
        killed = True
    finally:
        killer.close()

    resume_workload = build_chaos_workload()
    resume_backend = _KillAfter(
        start_local_fabric(
            resume_workload.database, resume_workload.queries, num_nodes=2, **HEARTBEAT,
        ),
        kills_at=10**9,
    )
    with WorkloadSession(
        resume_workload, budget=budget, seed=SEED, backend=resume_backend,
        checkpoint_path=checkpoint_path, checkpoint_every=1,
    ) as session:
        resumed = session.run(TECHNIQUE)

    return {
        "killed_mid_run": killed,
        "executions_before_kill": killer.executed,
        "executions_after_resume": resume_backend.executed,
        "total_executions": total,
        "resume_traces_equivalent": signatures(resumed) == reference_sig,
        "resume_repaid_no_work": resume_backend.executed == total - KILL_AFTER,
    }


def run_benchmark(executions: int, burn_iterations: int, checkpoint_dir: str) -> dict:
    report = {
        "technique": TECHNIQUE,
        "executions_per_query": executions,
    }
    report.update(_scaling_arm(executions, burn_iterations))
    report.update(_chaos_arm(executions))
    report.update(_resume_arm(executions, checkpoint_dir))
    return report


def gate_failures(report: dict) -> list[str]:
    failures = []
    if report["speedup_gate_enforced"] and report["fabric_speedup_ratio"] < REQUIRED_SPEEDUP:
        failures.append(
            f"fabric speedup {report['fabric_speedup_ratio']:.2f}x below the "
            f"{REQUIRED_SPEEDUP:.1f}x gate at {SCALE_NODES} nodes"
        )
    if not report["scaling_traces_equivalent"]:
        failures.append("traces diverge across 1-node / multi-node / inline runs")
    if not report["chaos_all_queries_completed"]:
        failures.append("chaos run did not complete every query")
    if not report["chaos_traces_equivalent"]:
        failures.append("chaos traces diverge from the fault-free inline run")
    if not report["budget_single_charged"]:
        failures.append(
            f"budget double-charged: {report['chaos_executions']} executions "
            f"vs {report['reference_executions']} in the reference"
        )
    if report["faults_injected"] == 0:
        failures.append("fault schedule injected nothing — the chaos arm tested nothing")
    if not report["reassignments_bounded"]:
        failures.append("lease reassignments exceeded the per-lease attempt bound")
    if report["give_ups"] != 0:
        failures.append(f"fabric gave up on {report['give_ups']} lease(s)")
    if not report["killed_mid_run"]:
        failures.append("coordinator kill never fired — the resume arm tested nothing")
    if not report["resume_traces_equivalent"]:
        failures.append("resumed traces diverge from the uninterrupted run")
    if not report["resume_repaid_no_work"]:
        failures.append("resume re-executed work the checkpoint had already paid for")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="smaller budget (CI smoke mode)")
    parser.add_argument("--json", metavar="PATH", help="write the result breakdown to PATH")
    args = parser.parse_args(argv)

    executions = SMOKE_EXECUTIONS if args.smoke else EXECUTIONS_PER_QUERY
    burn = SMOKE_BURN_ITERATIONS if args.smoke else BURN_ITERATIONS
    with tempfile.TemporaryDirectory(prefix="bench_fabric_") as checkpoint_dir:
        report = run_benchmark(executions, burn, checkpoint_dir)

    print(
        f"fabric bench: {executions} executions/query, technique={TECHNIQUE} "
        f"({report['effective_cpus']} cpus)"
    )
    print(
        f"  scaling : 1 node {report['one_node_s']:.2f}s -> {SCALE_NODES} nodes "
        f"{report['multi_node_s']:.2f}s ({report['fabric_speedup_ratio']:.2f}x)"
    )
    print(
        f"  chaos   : {report['chaos_s']:.2f}s vs inline {report['reference_s']:.2f}s "
        f"({report['chaos_overhead_ratio']:.2f}x), "
        f"{report['faults_injected']} faults, "
        f"{report['lease_reassignments']} reassignments, "
        f"{report['node_losses']} losses, traces equal: "
        f"{report['chaos_traces_equivalent']}"
    )
    print(
        f"  resume  : killed after {report['executions_before_kill']} executions, "
        f"resume paid {report['executions_after_resume']} "
        f"of {report['total_executions']}, traces equal: "
        f"{report['resume_traces_equivalent']}"
    )
    if not report["speedup_gate_enforced"]:
        print(
            f"  NOTE: speedup gate skipped — {report['effective_cpus']} effective CPU(s); "
            f"parallel speedup needs >= {SCALE_NODES}"
        )

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"  wrote {args.json}")

    failures = gate_failures(report)
    for failure in failures:
        print(f"  GATE FAILURE: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
