"""Workload scheduler benchmark: sequential vs interleaved plan execution.

The ask/tell refactor makes the harness the loop owner, so a
``WorkloadSession`` can keep one plan execution in flight per query while
suggest/observe stepping stays on the scheduler thread.  This bench measures
the wall-clock effect on a multi-query workload.

Plan "execution" in this repository is simulated (the executor charges a cost
model, not wall-clock), so to model the deployment the paper targets — where
each execution is a round-trip to a DBMS that dwarfs optimizer overhead — the
workload's database is wrapped so every ``execute`` also sleeps for a bounded
slice proportional to the execution's charged cost.  That is exactly the
regime the interleaved scheduler exploits: while one query's plan waits on
the (simulated) DBMS, other queries' plans proceed.

The bench runs the ``random`` technique (deterministic per-query RNG, no VAE
training) twice with the same seed — ``max_workers=1`` sequential vs
``max_workers=N`` interleaved — asserts the per-query traces are *identical*,
and requires the interleaved pass to be at least 1.5x faster in wall-clock.

Run:  PYTHONPATH=src python benchmarks/bench_workload_parallel.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.protocol import BudgetSpec
from repro.db.catalog import Column, ForeignKey, Schema, Table
from repro.db.datagen import ColumnSpec, DataGenerator, TableSpec
from repro.db.engine import Database
from repro.db.query import FilterPredicate, JoinPredicate, Query, TableRef
from repro.harness import WorkloadSession
from repro.workloads.base import Workload
from repro.utils import get_logger

NUM_QUERIES = 6
EXECUTIONS_PER_QUERY = 12
SMOKE_EXECUTIONS = 8
MAX_WORKERS = 4
REQUIRED_SPEEDUP = 1.5
#: Simulated DBMS round-trip per execution: cost * scale, clamped to a band so
#: the bench finishes quickly but the per-execution wait dominates scheduling
#: overhead.
SLEEP_SCALE = 0.005
SLEEP_FLOOR = 0.010
SLEEP_CAP = 0.040


class RoundTripDatabase:
    """Database wrapper that sleeps per execution, modelling DBMS round-trips.

    The sleep is derived from the execution's charged cost (timeout when
    censored, latency otherwise), so both scheduling modes pay identical
    per-execution waits and wall-clock differences come purely from overlap.
    """

    def __init__(self, inner, scale=SLEEP_SCALE, floor=SLEEP_FLOOR, cap=SLEEP_CAP):
        self._inner = inner
        self._scale = scale
        self._floor = floor
        self._cap = cap

    def execute(self, query, plan=None, timeout=None):
        execution = self._inner.execute(query, plan, timeout=timeout)
        charged = execution.latency if not execution.timed_out else (timeout or execution.latency)
        time.sleep(min(max(charged * self._scale, self._floor), self._cap))
        return execution

    def __getattr__(self, name):
        return getattr(self._inner, name)


def build_bench_workload() -> Workload:
    """A small star-schema workload: executions cost ~1 ms of real CPU, so the
    modelled DBMS round-trip (not local compute) dominates — the regime the
    interleaved scheduler targets."""
    tables = [
        Table("orders", [Column("id"), Column("customer_id"), Column("product_id"),
                         Column("quantity"), Column("order_date", "date")]),
        Table("customer", [Column("id"), Column("region"), Column("segment")]),
        Table("product", [Column("id"), Column("category"), Column("price")]),
        Table("shipment", [Column("id"), Column("order_id"), Column("carrier"),
                           Column("ship_date", "date")]),
    ]
    foreign_keys = [
        ForeignKey("orders", "customer_id", "customer", "id"),
        ForeignKey("orders", "product_id", "product", "id"),
        ForeignKey("shipment", "order_id", "orders", "id"),
    ]
    schema = Schema("bench_star", tables, foreign_keys)
    schema.index_all_join_keys()
    specs = {
        "orders": TableSpec(4000, {
            "quantity": ColumnSpec("categorical", cardinality=20, skew=1.2),
            "order_date": ColumnSpec("date", date_min=0, date_max=1000),
        }, fk_skew=1.3),
        "customer": TableSpec(500, {
            "region": ColumnSpec("categorical", cardinality=8, skew=1.0),
            "segment": ColumnSpec("categorical", cardinality=4, skew=0.8),
        }),
        "product": TableSpec(400, {
            "category": ColumnSpec("categorical", cardinality=10, skew=1.1),
            "price": ColumnSpec("categorical", cardinality=50, skew=1.3),
        }),
        "shipment": TableSpec(4500, {
            "carrier": ColumnSpec("categorical", cardinality=5, skew=1.0),
            "ship_date": ColumnSpec("date", date_min=0, date_max=1000),
        }, fk_skew=1.4),
    }
    database = Database(schema, DataGenerator(schema, specs, seed=11).generate(), seed=11)
    queries = []
    for i in range(NUM_QUERIES):
        if i % 2 == 0:
            queries.append(Query(
                name=f"bench_q{i}",
                table_refs=[TableRef("orders#1", "orders"), TableRef("customer#1", "customer"),
                            TableRef("product#1", "product"), TableRef("shipment#1", "shipment")],
                join_predicates=[
                    JoinPredicate("orders#1", "customer_id", "customer#1", "id"),
                    JoinPredicate("orders#1", "product_id", "product#1", "id"),
                    JoinPredicate("shipment#1", "order_id", "orders#1", "id"),
                ],
                filters=[FilterPredicate("customer#1", "region", "=", i % 8),
                         FilterPredicate("shipment#1", "ship_date", ">=", 100 * i)],
                template="bench_T1",
            ))
        else:
            queries.append(Query(
                name=f"bench_q{i}",
                table_refs=[TableRef("orders#1", "orders"), TableRef("customer#1", "customer"),
                            TableRef("product#1", "product")],
                join_predicates=[
                    JoinPredicate("orders#1", "customer_id", "customer#1", "id"),
                    JoinPredicate("orders#1", "product_id", "product#1", "id"),
                ],
                filters=[FilterPredicate("product#1", "category", "=", i % 10)],
                template="bench_T2",
            ))
    return Workload(name="bench_star", database=database, queries=queries, max_aliases=1,
                    description="scheduler bench workload")


def run_benchmark(executions: int, workers: int, seed: int = 0) -> dict:
    base = build_bench_workload()
    workload = Workload(
        name=base.name,
        database=RoundTripDatabase(base.database),
        queries=base.queries,
        max_aliases=base.max_aliases,
        description=base.description,
    )
    budget = BudgetSpec(max_executions=executions)

    def timed_run(max_workers: int):
        session = WorkloadSession(
            workload, budget=budget, seed=seed, max_workers=max_workers
        )
        start = time.perf_counter()
        results = session.run("random")
        return time.perf_counter() - start, results

    sequential_s, sequential = timed_run(1)
    interleaved_s, interleaved = timed_run(workers)

    equivalent = all(
        sequential[name].trace_signature() == interleaved[name].trace_signature()
        for name in sequential
    )
    total_executions = sum(result.num_executions for result in sequential.values())
    return {
        "technique": "random",
        "num_queries": NUM_QUERIES,
        "executions_per_query": executions,
        "total_executions": total_executions,
        "max_workers": workers,
        "sequential_s": sequential_s,
        "interleaved_s": interleaved_s,
        "speedup": sequential_s / interleaved_s,
        "traces_equivalent": equivalent,
        "sleep_model": {"scale": SLEEP_SCALE, "floor": SLEEP_FLOOR, "cap": SLEEP_CAP},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="smaller budget (CI smoke mode)")
    parser.add_argument("--json", metavar="PATH", help="write the result breakdown to PATH")
    parser.add_argument("--workers", type=int, default=MAX_WORKERS, help="interleaved pool size")
    args = parser.parse_args(argv)

    executions = SMOKE_EXECUTIONS if args.smoke else EXECUTIONS_PER_QUERY
    report = run_benchmark(executions, args.workers)
    print(
        f"workload scheduler @ {report['num_queries']} queries x "
        f"{report['executions_per_query']} executions ({report['max_workers']} workers)"
    )
    print(f"  sequential  {report['sequential_s'] * 1e3:8.1f} ms")
    print(f"  interleaved {report['interleaved_s'] * 1e3:8.1f} ms")
    print(f"  speedup {report['speedup']:.1f}x   traces equivalent: {report['traces_equivalent']}")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        get_logger("bench").info("wrote %s", args.json)

    failures = []
    if not report["traces_equivalent"]:
        failures.append("interleaved traces diverge from the sequential schedule")
    if report["speedup"] < REQUIRED_SPEEDUP:
        failures.append(
            f"speedup {report['speedup']:.2f}x below the required {REQUIRED_SPEEDUP}x"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
