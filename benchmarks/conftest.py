"""Shared fixtures for the benchmark harness.

Every benchmark prints the rows/series of the corresponding paper table or
figure and wraps the headline computation in ``pytest-benchmark`` so the whole
suite can be run with ``pytest benchmarks/ --benchmark-only``.

The workloads here are scaled down (both in data size and in number of
queries/executions) so the full suite completes in minutes on a laptop; the
*shape* of each result — who wins, by roughly what factor — is the
reproduction target, not the absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.core import BayesQOConfig, VAETrainingConfig
from repro.harness import prepare_schema_model
from repro.workloads import build_job_workload, build_stack_workload

#: Number of queries sampled from each workload for the comparison benches.
BENCH_QUERIES = 4
#: Per-query execution budget for the comparison benches.
BENCH_EXECUTIONS = 35


@pytest.fixture(scope="session")
def job_workload():
    """Scaled-down JOB workload shared by most benches."""
    return build_job_workload(scale=0.15, seed=0, num_queries=40)


@pytest.fixture(scope="session")
def stack_workload():
    """Scaled-down Stack workload (used by the drift benches)."""
    return build_stack_workload(scale=0.08, seed=0, num_templates=8, num_queries=24)


@pytest.fixture(scope="session")
def job_schema_model(job_workload):
    """The per-schema VAE/latent space for the JOB workload (trained once)."""
    return prepare_schema_model(
        job_workload,
        VAETrainingConfig(training_steps=1600, corpus_queries=120, latent_dim=16, hidden_dim=192),
    )


@pytest.fixture(scope="session")
def bench_bayes_config():
    return BayesQOConfig(max_executions=BENCH_EXECUTIONS, num_candidates=96, seed=0)
