"""Shared fixtures for the benchmark harness.

Every benchmark prints the rows/series of the corresponding paper table or
figure and wraps the headline computation in ``pytest-benchmark`` so the whole
suite can be run with ``pytest benchmarks/ --benchmark-only``.

The workloads here are scaled down (both in data size and in number of
queries/executions) so the full suite completes in minutes on a laptop; the
*shape* of each result — who wins, by roughly what factor — is the
reproduction target, not the absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.core import BayesQOConfig, ExecutionServiceConfig, VAETrainingConfig
from repro.harness import prepare_schema_model
from repro.workloads import build_job_workload, build_stack_workload

#: Number of queries sampled from each workload for the comparison benches.
BENCH_QUERIES = 4
#: Per-query execution budget for the comparison benches.
BENCH_EXECUTIONS = 35
#: One-pass batch execution of each round's q proposals (shared join subtrees
#: execute once; traces stay bit-for-bit).  Benches that need per-plan
#: fan-out instead (CPU-burn wrappers) override this to False explicitly.
BENCH_BATCH_EXECUTION = True


@pytest.fixture(scope="session")
def job_workload():
    """Scaled-down JOB workload shared by most benches."""
    return build_job_workload(scale=0.15, seed=0, num_queries=40)


@pytest.fixture(scope="session")
def stack_workload():
    """Scaled-down Stack workload (used by the drift benches)."""
    return build_stack_workload(scale=0.08, seed=0, num_templates=8, num_queries=24)


@pytest.fixture(scope="session")
def job_schema_model(job_workload):
    """The per-schema VAE/latent space for the JOB workload (trained once)."""
    return prepare_schema_model(
        job_workload,
        VAETrainingConfig(training_steps=1600, corpus_queries=120, latent_dim=16, hidden_dim=192),
    )


@pytest.fixture(scope="session")
def bench_bayes_config():
    return BayesQOConfig(max_executions=BENCH_EXECUTIONS, num_candidates=96, seed=0)


@pytest.fixture
def bench_exec_config():
    """Baseline execution-service config for benches that drive a session.

    ``batch_execution`` is surfaced here so a bench can flip the one-pass
    q-batch grouping with a single override.  Note the fallback: at q=1
    (``batch_size=1``, the default) each round issues a single proposal, so
    there is nothing to group and submission stays per-request regardless of
    the knob.
    """
    return ExecutionServiceConfig(batch_execution=BENCH_BATCH_EXECUTION)
