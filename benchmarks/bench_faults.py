"""Chaos benchmark: the fault-tolerance gate for the execution service.

The paper's premise is hours of offline machine time buying milliseconds at
query time — so a worker crash or a hung execution at hour three must not
discard the run.  This bench injects a seeded fault schedule (worker crashes,
transient infra errors, hangs, slow replicas — see
:mod:`repro.exec.faults`) into a supervised session and gates on the
recovery guarantees:

* **completion + equivalence** — under the fault schedule the session
  completes every query, and its per-query observation traces are identical
  to the fault-free run (faults cost wall-clock, never results),
* **bounded retries** — the supervisor's attempt count stays within
  ``submissions * (1 + max_retries)`` and nothing gives up,
* **kill + resume is exact** — a session killed mid-run and resumed from its
  checkpoint finishes with traces bit-for-bit identical to the uninterrupted
  run, without re-executing completed work.

``overhead_ratio`` (chaos wall-clock / fault-free wall-clock) is the headline
metric tracked warn-only by ``bench_trend.py``.

Run:  PYTHONPATH=src python benchmarks/bench_faults.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.config import ExecutionServiceConfig
from repro.core.protocol import BudgetSpec
from repro.db.catalog import Column, ForeignKey, Schema, Table
from repro.db.datagen import ColumnSpec, DataGenerator, TableSpec
from repro.db.engine import Database
from repro.db.query import FilterPredicate, JoinPredicate, Query, TableRef
from repro.exec import FaultInjectionConfig, InlineBackend
from repro.harness import WorkloadSession
from repro.workloads.base import Workload
from repro.utils import get_logger

NUM_QUERIES = 4
EXECUTIONS_PER_QUERY = 8
SMOKE_EXECUTIONS = 5
TECHNIQUE = "random"
SEED = 0
KILL_AFTER = 6  # executions completed before the mid-run kill

#: The chaos scenario: every fault kind enabled, bounded per request so the
#: supervisor's retry budget (MAX_RETRIES > max_faults_per_request) makes
#: completion guaranteed, not probabilistic.
FAULTS = FaultInjectionConfig(
    seed=7,
    crash_rate=0.12,
    transient_rate=0.12,
    hang_rate=0.06,
    slow_rate=0.10,
    hang_seconds=3.0,
    slow_seconds=0.01,
    max_faults_per_request=2,
)
MAX_RETRIES = 4
REQUEST_DEADLINE = 0.5  # seconds before a hung execution is abandoned


def build_bench_workload() -> Workload:
    """A small star-schema workload with latency noise enabled."""
    tables = [
        Table("orders", [Column("id"), Column("customer_id"), Column("product_id"),
                         Column("quantity")]),
        Table("customer", [Column("id"), Column("region")]),
        Table("product", [Column("id"), Column("category")]),
    ]
    foreign_keys = [
        ForeignKey("orders", "customer_id", "customer", "id"),
        ForeignKey("orders", "product_id", "product", "id"),
    ]
    schema = Schema("bench_faults", tables, foreign_keys)
    schema.index_all_join_keys()
    specs = {
        "orders": TableSpec(3000, {
            "quantity": ColumnSpec("categorical", cardinality=16, skew=1.2),
        }, fk_skew=1.3),
        "customer": TableSpec(400, {
            "region": ColumnSpec("categorical", cardinality=8, skew=1.0),
        }),
        "product": TableSpec(350, {
            "category": ColumnSpec("categorical", cardinality=10, skew=1.1),
        }),
    }
    database = Database(schema, DataGenerator(schema, specs, seed=13).generate(),
                        noise_sigma=0.15, seed=13)
    queries = [
        Query(
            name=f"faults_q{i}",
            table_refs=[TableRef("orders#1", "orders"), TableRef("customer#1", "customer"),
                        TableRef("product#1", "product")],
            join_predicates=[
                JoinPredicate("orders#1", "customer_id", "customer#1", "id"),
                JoinPredicate("orders#1", "product_id", "product#1", "id"),
            ],
            filters=[FilterPredicate("customer#1", "region", "=", i % 8)],
            template="bench_faults_T1",
        )
        for i in range(NUM_QUERIES)
    ]
    return Workload(
        name="bench_faults",
        database=database,
        queries=queries,
        max_aliases=1,
        description="fault-injection bench workload",
    )


def signatures(results) -> dict:
    return {name: result.trace_signature() for name, result in results.items()}


class _SessionKilled(BaseException):
    """Simulated hard kill — a BaseException, so nothing swallows it."""


class _KillAfter:
    """Inline backend that raises (like a kill -9) after N executions."""

    name = "kill-after"

    def __init__(self, database, kills_at: int) -> None:
        self.inner = InlineBackend(database)
        self.kills_at = kills_at
        self.executed = 0

    def capacity(self) -> int:
        return 1

    def submit(self, request):
        if self.executed >= self.kills_at:
            raise _SessionKilled()
        self.executed += 1
        return self.inner.submit(request)

    def healthy(self) -> bool:
        return True

    def close(self) -> None:
        pass


def run_benchmark(executions: int, checkpoint_dir: str) -> dict:
    workload = build_bench_workload()
    budget = BudgetSpec(max_executions=executions)

    # Arm 1: fault-free reference (plain inline execution).
    with WorkloadSession(workload, budget=budget, seed=SEED) as session:
        start = time.perf_counter()
        reference = session.run(TECHNIQUE)
    reference_s = time.perf_counter() - start
    total_executions = sum(result.num_executions for result in reference.values())

    # Arm 2: the same run under the injected fault schedule, supervised.
    chaos_config = ExecutionServiceConfig(
        backend="inline",
        supervised=True,
        request_deadline=REQUEST_DEADLINE,
        max_retries=MAX_RETRIES,
        backoff_base=0.005,
        backoff_max=0.05,
        fault_injection=FAULTS,
    )
    with WorkloadSession(workload, budget=budget, seed=SEED,
                         exec_config=chaos_config) as session:
        start = time.perf_counter()
        chaos = session.run(TECHNIQUE)
        chaos_s = time.perf_counter() - start
        health = session.health_report()
    supervisor = health.get("supervisor", {})
    faults = health.get("faults", {})

    # Arm 3: kill the session mid-run, then resume from its checkpoint.
    checkpoint_path = os.path.join(checkpoint_dir, "bench_faults.ckpt")
    killer = _KillAfter(workload.database, kills_at=KILL_AFTER)
    killed_session = WorkloadSession(
        workload, budget=budget, seed=SEED, backend=killer,
        checkpoint_path=checkpoint_path, checkpoint_every=1,
    )
    killed = False
    try:
        killed_session.run(TECHNIQUE)
    except _SessionKilled:
        killed = True
    resume_backend = _KillAfter(workload.database, kills_at=10**9)
    with WorkloadSession(
        workload, budget=budget, seed=SEED, backend=resume_backend,
        checkpoint_path=checkpoint_path, checkpoint_every=1,
    ) as session:
        resumed = session.run(TECHNIQUE)

    reference_sig = signatures(reference)
    attempts_bound = supervisor.get("submissions", 0) * (1 + MAX_RETRIES)
    return {
        "technique": TECHNIQUE,
        "num_queries": NUM_QUERIES,
        "executions_per_query": executions,
        "total_executions": total_executions,
        "reference_s": reference_s,
        "chaos_s": chaos_s,
        "overhead_ratio": chaos_s / reference_s if reference_s > 0 else float("inf"),
        "fault_counters": faults,
        "supervisor": supervisor,
        "max_retries": MAX_RETRIES,
        "request_deadline": REQUEST_DEADLINE,
        "chaos_all_queries_completed": set(chaos) == set(reference),
        "chaos_traces_equivalent": signatures(chaos) == reference_sig,
        "faults_injected": faults.get("total_faults", 0),
        "retries_bounded": supervisor.get("attempts", 0) <= attempts_bound,
        "give_ups": supervisor.get("give_ups", 0),
        "killed_mid_run": killed,
        "executions_before_kill": killer.executed,
        "executions_after_resume": resume_backend.executed,
        "resume_traces_equivalent": signatures(resumed) == reference_sig,
        "resume_repaid_no_work": resume_backend.executed == total_executions - KILL_AFTER,
    }


def gate_failures(report: dict) -> list[str]:
    failures = []
    if not report["chaos_all_queries_completed"]:
        failures.append("chaos run did not complete every query")
    if not report["chaos_traces_equivalent"]:
        failures.append("chaos traces diverge from the fault-free run")
    if report["faults_injected"] == 0:
        failures.append("fault schedule injected nothing — the chaos arm tested nothing")
    if not report["retries_bounded"]:
        failures.append("supervisor attempts exceeded the retry bound")
    if report["give_ups"] != 0:
        failures.append(f"supervisor gave up on {report['give_ups']} request(s)")
    if not report["killed_mid_run"]:
        failures.append("mid-run kill never fired — the resume arm tested nothing")
    if not report["resume_traces_equivalent"]:
        failures.append("resumed traces diverge from the uninterrupted run")
    if not report["resume_repaid_no_work"]:
        failures.append("resume re-executed work the checkpoint had already paid for")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="smaller budget (CI smoke mode)")
    parser.add_argument("--json", metavar="PATH", help="write the result breakdown to PATH")
    args = parser.parse_args(argv)

    executions = SMOKE_EXECUTIONS if args.smoke else EXECUTIONS_PER_QUERY
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench_faults_") as checkpoint_dir:
        report = run_benchmark(executions, checkpoint_dir)

    print(
        f"fault tolerance @ {report['num_queries']} queries x "
        f"{report['executions_per_query']} executions"
    )
    print(f"  fault-free  {report['reference_s'] * 1e3:8.1f} ms")
    print(f"  chaos       {report['chaos_s'] * 1e3:8.1f} ms  "
          f"({report['overhead_ratio']:.2f}x overhead)")
    counters = report["fault_counters"]
    print(f"  injected: {counters.get('crashes', 0)} crashes, "
          f"{counters.get('transients', 0)} transients, {counters.get('hangs', 0)} hangs, "
          f"{counters.get('slowdowns', 0)} slowdowns over "
          f"{report['supervisor'].get('attempts', 0)} attempts "
          f"({report['supervisor'].get('retries', 0)} retries, "
          f"{report['give_ups']} give-ups)")
    print(f"  chaos traces equivalent: {report['chaos_traces_equivalent']}")
    print(f"  kill after {report['executions_before_kill']} -> resume executed "
          f"{report['executions_after_resume']} "
          f"(bit-for-bit: {report['resume_traces_equivalent']})")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        get_logger("bench").info("wrote %s", args.json)

    failures = gate_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
