"""Figure 7: plan runtimes on snapshots between the past and future endpoints.

The past-optimized and future-optimized plans for a set of Stack-analogue
queries are executed against a sequence of intermediate snapshots; the bench
prints the median (and top-3 worst) runtimes per date.  The shape to look
for: past and future plans track each other closely for most queries, while a
small number of past plans degrade visibly as the data grows.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import BaoOptimizer
from repro.core import BayesQO, BayesQOConfig, VAETrainingConfig, train_schema_model
from repro.harness import format_table
from repro.workloads import STACK_DATE_2017, STACK_DATE_MAX, drift_timeline, rollback_to_date

NUM_QUERIES = 3
TIMELINE_STEPS = 3
EXECUTIONS = 25


def run_timeline(stack_workload):
    future_db = stack_workload.database
    past_db = rollback_to_date(future_db, STACK_DATE_2017)
    queries = stack_workload.queries[:NUM_QUERIES]
    vae_config = VAETrainingConfig(training_steps=1000, corpus_queries=80, latent_dim=16, hidden_dim=160)
    config = BayesQOConfig(max_executions=EXECUTIONS, num_candidates=128, seed=0)
    past_bayes = BayesQO(past_db, train_schema_model(past_db, stack_workload.queries, vae_config,
                                                     max_aliases=stack_workload.max_aliases), config=config)
    future_bayes = BayesQO(future_db, train_schema_model(future_db, stack_workload.queries, vae_config,
                                                         max_aliases=stack_workload.max_aliases), config=config)
    plans = {}
    for query in queries:
        bao = BaoOptimizer(past_db).optimize(query)
        past_plan = past_bayes.optimize(query).best_record.plan
        future_plan = future_bayes.optimize(query).best_record.plan
        plans[query.name] = (past_plan, future_plan, bao.best_plan)
    snapshots = drift_timeline(future_db, STACK_DATE_2017, STACK_DATE_MAX, TIMELINE_STEPS)
    series = []
    for cutoff, snapshot in snapshots:
        past_latencies, future_latencies = [], []
        for query in queries:
            past_plan, future_plan, _ = plans[query.name]
            past_latencies.append(snapshot.execute(query, past_plan, timeout=600.0).latency)
            future_latencies.append(snapshot.execute(query, future_plan, timeout=600.0).latency)
        series.append((cutoff, past_latencies, future_latencies))
    return series


def test_fig7_drift_timeline(benchmark, stack_workload):
    series = benchmark.pedantic(run_timeline, args=(stack_workload,), rounds=1, iterations=1)
    rows = []
    for cutoff, past_latencies, future_latencies in series:
        rows.append(
            [
                cutoff,
                f"{np.median(past_latencies):.4f}",
                f"{np.median(future_latencies):.4f}",
                f"{max(past_latencies):.4f}",
                f"{max(future_latencies):.4f}",
            ]
        )
    print()
    print(
        format_table(
            ["snapshot (day)", "past plans median (s)", "future plans median (s)",
             "past plans worst (s)", "future plans worst (s)"],
            rows,
            title="Figure 7: plan runtimes vs snapshot date",
        )
    )
    # Data only grows over the timeline, so runtimes should not shrink dramatically.
    first_median = float(np.median(series[0][1]))
    last_median = float(np.median(series[-1][1]))
    assert last_median >= first_median * 0.5
