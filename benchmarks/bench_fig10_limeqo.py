"""Figure 10: BayesQO vs LimeQO across a whole workload.

Both techniques optimize every query in a JOB-analogue sample; the bench
prints the workload-level sum / median / P90 of the best plan latencies as a
function of the optimization budget.  The shape to look for: LimeQO improves
quickly while cheap hint wins are available but plateaus once the 49 hint sets
are exhausted, whereas BayesQO keeps improving past that point.
"""

from __future__ import annotations

#: Per-query plan-execution budget shared by the comparison benches.
BENCH_EXECUTIONS = 35
#: Number of workload queries sampled for the comparison benches.
BENCH_QUERIES = 6

import numpy as np

from repro.baselines import LimeQOOptimizer
from repro.core import BayesQO
from repro.harness import format_summaries, workload_curve

NUM_QUERIES = 4
CURVE_POINTS = 5


def run_figure10(job_workload, job_schema_model, bench_bayes_config):
    database = job_workload.database
    queries = job_workload.queries[:NUM_QUERIES]
    bayes = BayesQO(database, job_schema_model, config=bench_bayes_config)
    bayes_results = {query.name: bayes.optimize(query, max_executions=BENCH_EXECUTIONS) for query in queries}
    limeqo_results = LimeQOOptimizer(database).optimize_workload(
        queries, max_executions=49 * NUM_QUERIES
    )
    defaults = {query.name: database.execute(query, timeout=600.0).latency for query in queries}
    return bayes_results, limeqo_results, defaults


def test_fig10_bayesqo_vs_limeqo(benchmark, job_workload, job_schema_model, bench_bayes_config):
    bayes_results, limeqo_results, defaults = benchmark.pedantic(
        run_figure10, args=(job_workload, job_schema_model, bench_bayes_config), rounds=1, iterations=1
    )
    max_budget = max(
        max(result.total_cost for result in bayes_results.values()),
        max(result.total_cost for result in limeqo_results.values()),
    )
    budgets = list(np.linspace(max_budget / CURVE_POINTS, max_budget, CURVE_POINTS))
    print()
    for label, results in (("BayesQO", bayes_results), ("LimeQO", limeqo_results)):
        summaries = workload_curve(results, budgets, fallback=defaults)
        print(format_summaries([f"@{budget:.0f}s" for budget in budgets], summaries,
                               f"Figure 10: {label} workload latency vs optimization budget"))
        print()
    # Shape: at the end of optimization BayesQO's aggregate latency is at least
    # as good as LimeQO's (its search space strictly contains the hint plans).
    final_bayes = workload_curve(bayes_results, [max_budget], fallback=defaults)[0]
    final_limeqo = workload_curve(limeqo_results, [max_budget], fallback=defaults)[0]
    assert final_bayes.total <= final_limeqo.total * 1.05 + 1e-9
