"""Table 2: VAE reconstruction accuracy at different latent dimensionalities.

The paper trains its transformer VAE at latent dimensions 8-128 and reports
validation-set reconstruction accuracy.  This bench repeats the sweep with the
numpy VAE on the IMDB-analogue plan corpus.  The absolute numbers differ (our
corpus and model are much smaller), but the monotone relationship — larger
latent spaces reconstruct better, with diminishing returns — is the
reproduction target.
"""

from __future__ import annotations

from repro.harness import format_table
from repro.plans.vocabulary import vocabulary_for_workload
from repro.vae import build_plan_corpus, latent_dimension_sweep

LATENT_DIMS = [4, 8, 16, 32]


def run_sweep(job_workload):
    vocabulary = vocabulary_for_workload(job_workload.database.schema, job_workload.queries)
    corpus = build_plan_corpus(
        job_workload.database,
        vocabulary,
        max_aliases=job_workload.max_aliases,
        num_queries=120,
        max_tables=max(query.num_tables for query in job_workload.queries),
        seed=0,
    )
    return latent_dimension_sweep(corpus, LATENT_DIMS, steps=1500, seed=0)


def test_table2_vae_reconstruction(benchmark, job_workload):
    accuracies = benchmark.pedantic(run_sweep, args=(job_workload,), rounds=1, iterations=1)
    rows = [[dim, f"{accuracies[dim] * 100:.2f}%"] for dim in LATENT_DIMS]
    print()
    print(
        format_table(
            ["Latent Dimension", "Reconstruction Accuracy"],
            rows,
            title="Table 2: VAE reconstruction accuracy vs latent dimension",
        )
    )
    # Shape check: the largest latent dimension should reconstruct at least as
    # well as the smallest one.
    assert accuracies[LATENT_DIMS[-1]] >= accuracies[LATENT_DIMS[0]]
