"""Warn-only perf-trend diff between two sets of BENCH_*.json artifacts.

Every CI run uploads its benchmark JSON artifacts, but until now nothing ever
*read* them — BENCH history was write-only.  This script closes the loop:
CI downloads the previous successful run's artifacts into a directory and
diffs the headline metric of each benchmark pair, printing ``TREND`` lines
and warnings when a metric regressed by more than ``--threshold`` (relative).

It is deliberately **warn-only** (exit code 0 unless ``--strict``): CI
machines are noisy and a hard gate on wall-clock trends would flake; the
value is making regressions *visible* in the log, run over run.

Usage::

    python benchmarks/bench_trend.py --previous prev/ --current . [--threshold 0.25]

Each benchmark's headline metrics are declared in ``HEADLINE_METRICS``:
``higher`` metrics (speedups) warn when they drop, ``lower`` metrics
(wall-clock seconds) warn when they rise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: filename -> list of (json key path, direction) headline metrics.
#: Direction "higher" = bigger is better (speedups); "lower" = smaller is
#: better (durations).  Key paths use "." to descend into nested dicts.
HEADLINE_METRICS: dict[str, list[tuple[str, str]]] = {
    "BENCH_surrogate.json": [("speedup", "higher")],
    "BENCH_workload.json": [("speedup", "higher")],
    "BENCH_exec.json": [("process_speedup", "higher")],
    "BENCH_batch.json": [("speedup", "higher")],
    "BENCH_plancache.json": [("speedup", "higher"), ("cached_s", "lower")],
    "BENCH_faults.json": [("overhead_ratio", "lower")],
    "BENCH_fabric.json": [
        ("fabric_speedup_ratio", "higher"),
        ("chaos_overhead_ratio", "lower"),
    ],
    "BENCH_serve.json": [("fast_path_hit_rate", "higher"), ("served_qps", "higher")],
    "BENCH_obs.json": [
        ("disabled_overhead_ratio", "lower"),
        ("traced_overhead_ratio", "lower"),
    ],
    "BENCH_kernels.json": [
        ("batch_speedup_ratio", "higher"),
        ("kernel_speedup_ratio", "higher"),
    ],
}


def _lookup(data: dict, key_path: str):
    value = data
    for part in key_path.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value if isinstance(value, (int, float)) else None


def diff_pair(name: str, previous: dict, current: dict, threshold: float) -> list[str]:
    """TREND lines for one benchmark pair; lines with ``WARN`` mark regressions."""
    lines = []
    for key_path, direction in HEADLINE_METRICS.get(name, []):
        prev = _lookup(previous, key_path)
        curr = _lookup(current, key_path)
        if prev is None or curr is None:
            lines.append(f"TREND {name} {key_path}: missing in {'previous' if prev is None else 'current'} run")
            continue
        if prev == 0:
            continue
        change = (curr - prev) / abs(prev)
        regressed = change < -threshold if direction == "higher" else change > threshold
        marker = "WARN" if regressed else "ok"
        lines.append(
            f"TREND {name} {key_path}: {prev:.3f} -> {curr:.3f} "
            f"({change:+.1%}) [{marker}]"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--previous", required=True, metavar="DIR",
                        help="directory holding the previous run's BENCH_*.json files")
    parser.add_argument("--current", default=".", metavar="DIR",
                        help="directory holding this run's BENCH_*.json files")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative change treated as a regression (default 0.25)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on regressions (default: warn only)")
    args = parser.parse_args(argv)

    previous_dir = Path(args.previous)
    current_dir = Path(args.current)
    if not previous_dir.is_dir():
        print(f"TREND: no previous artifacts at {previous_dir} (first run?) — nothing to diff")
        return 0

    compared = 0
    warnings = 0
    for current_path in sorted(current_dir.glob("BENCH_*.json")):
        previous_path = previous_dir / current_path.name
        # Artifacts may also be unpacked into per-artifact subdirectories.
        if not previous_path.is_file():
            candidates = list(previous_dir.glob(f"**/{current_path.name}"))
            if not candidates:
                print(f"TREND {current_path.name}: no previous artifact — skipped")
                continue
            previous_path = candidates[0]
        try:
            with open(previous_path) as handle:
                previous = json.load(handle)
            with open(current_path) as handle:
                current = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"TREND {current_path.name}: unreadable ({exc}) — skipped")
            continue
        compared += 1
        for line in diff_pair(current_path.name, previous, current, args.threshold):
            print(line)
            if "[WARN]" in line:
                warnings += 1
    if compared == 0:
        print("TREND: no benchmark pairs to compare")
    elif warnings:
        print(f"TREND: {warnings} metric(s) regressed beyond {args.threshold:.0%} "
              "(warn-only; see lines above)", file=sys.stderr)
    return 1 if (warnings and args.strict) else 0


if __name__ == "__main__":
    raise SystemExit(main())
