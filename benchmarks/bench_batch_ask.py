"""Batched-ask benchmark: single-query BayesQO at q=4 vs q=1.

PR 3's execution service parallelizes *across* queries, so a single-query
workload left every worker but one idle.  The batched ask
(``suggest_batch``/``batch_size``) keeps q of one query's own plans in flight
— the q latent candidates come from one joint acquisition round, outcomes
resolve out of order by proposal id, and budget is still charged per
completed execution.

The bench runs BayesQO on ONE CPU-bound query (same GIL-holding burn wrapper
as ``bench_exec_backends``) twice with the same seed and budget:

* **q=1 inline** — the sequential baseline (scheduler-thread executions),
* **q=4 process** — ``ProcessPoolBackend`` workers, four plans in flight.

Gates: the q=4 run must be at least ``REQUIRED_SPEEDUP`` faster (needs real
parallel hardware — recorded as skipped below 2 effective CPUs), and its
final best latency must be within ``REGRET_TOLERANCE`` of the sequential
run's (batching staleness may cost sample efficiency, but not more than
10%).

Run:  PYTHONPATH=src python benchmarks/bench_batch_ask.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from bench_exec_backends import build_bench_workload, effective_cpus

from repro.core import BayesQOConfig, VAETrainingConfig
from repro.core.optimizer import train_schema_model
from repro.core.protocol import BudgetSpec
from repro.harness import WorkloadSession
from repro.utils import get_logger

EXECUTIONS = 24
SMOKE_EXECUTIONS = 16
MAX_WORKERS = 4
BATCH_SIZE = 4
REQUIRED_SPEEDUP = 2.0
REGRET_TOLERANCE = 0.10
#: GIL-held CPU burned per plan execution (see bench_exec_backends).
BURN_ITERATIONS = 1_500_000
SMOKE_BURN_ITERATIONS = 1_000_000


def build_single_query_workload(burn_iterations: int):
    """The bench_exec workload narrowed to one CPU-bound query."""
    workload = build_bench_workload(burn_iterations)
    return type(workload)(
        name="bench_batch",
        database=workload.database,
        queries=workload.queries[:1],
        max_aliases=workload.max_aliases,
        description="single-query batched-ask bench workload",
    )


def timed_run(workload, schema_model, config, budget, seed, **session_kwargs):
    with WorkloadSession(
        workload,
        budget=budget,
        seed=seed,
        schema_model=schema_model,
        bayes_config=config,
        **session_kwargs,
    ) as session:
        start = time.perf_counter()
        results = session.run("bayesqo")
        return time.perf_counter() - start, results


def run_benchmark(executions: int, burn_iterations: int, seed: int = 0) -> dict:
    workload = build_single_query_workload(burn_iterations)
    query_name = workload.queries[0].name
    # The per-schema VAE is shared by both runs and excluded from timing.
    schema_model = train_schema_model(
        workload.database,
        workload.queries,
        VAETrainingConfig(
            training_steps=400, corpus_queries=60, latent_dim=8, hidden_dim=64
        ),
        max_aliases=workload.max_aliases,
    )
    config = BayesQOConfig(max_executions=executions, num_candidates=64, seed=seed)
    budget = BudgetSpec(max_executions=executions)

    inline_s, inline = timed_run(workload, schema_model, config, budget, seed)
    # batch_execution=False: this gate measures parallel FAN-OUT of q distinct
    # plan executions across workers (the batched-ask claim).  One-pass batch
    # execution would instead group the q siblings onto a single worker to
    # dedup shared subtrees — a different (orthogonal) speedup, measured by
    # bench_exec_kernels.py.
    batch_s, batched = timed_run(
        workload, schema_model, config, budget, seed,
        backend="process", max_workers=MAX_WORKERS,
        batch_size=BATCH_SIZE, interleave=True, batch_execution=False,
    )

    inline_best = inline[query_name].best_latency
    batch_best = batched[query_name].best_latency
    cpus = effective_cpus()
    return {
        "technique": "bayesqo",
        "query": query_name,
        "executions": executions,
        "burn_iterations": burn_iterations,
        "max_workers": MAX_WORKERS,
        "batch_size": BATCH_SIZE,
        "effective_cpus": cpus,
        "inline_s": inline_s,
        "batch_s": batch_s,
        "speedup": inline_s / batch_s,
        "inline_executions": inline[query_name].num_executions,
        "batch_executions": batched[query_name].num_executions,
        "inline_best_latency": inline_best,
        "batch_best_latency": batch_best,
        "regret": (batch_best - inline_best) / inline_best,
        "required_speedup": REQUIRED_SPEEDUP,
        "regret_tolerance": REGRET_TOLERANCE,
        "speedup_gate_enforced": cpus >= 2,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="smaller budget (CI smoke mode)")
    parser.add_argument("--json", metavar="PATH", help="write the result breakdown to PATH")
    args = parser.parse_args(argv)

    executions = SMOKE_EXECUTIONS if args.smoke else EXECUTIONS
    burn = SMOKE_BURN_ITERATIONS if args.smoke else BURN_ITERATIONS
    report = run_benchmark(executions, burn)
    print(
        f"batched ask @ 1 query x {report['executions']} executions "
        f"(q={report['batch_size']}, {report['max_workers']} workers, "
        f"{report['effective_cpus']} cpus)"
    )
    print(f"  q=1 inline   {report['inline_s'] * 1e3:8.1f} ms  "
          f"(best {report['inline_best_latency']:.4f}s, "
          f"{report['inline_executions']} execs)")
    print(f"  q=4 process  {report['batch_s'] * 1e3:8.1f} ms  "
          f"(best {report['batch_best_latency']:.4f}s, "
          f"{report['batch_executions']} execs)")
    print(f"  speedup {report['speedup']:.2f}x, regret {report['regret'] * 100:+.1f}%")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        get_logger("bench").info("wrote %s", args.json)

    failures = []
    if report["regret"] > REGRET_TOLERANCE:
        failures.append(
            f"q={BATCH_SIZE} best latency {report['batch_best_latency']:.4f}s is "
            f"{report['regret'] * 100:.1f}% worse than sequential "
            f"{report['inline_best_latency']:.4f}s (tolerance {REGRET_TOLERANCE * 100:.0f}%)"
        )
    if report["speedup_gate_enforced"]:
        if report["speedup"] < REQUIRED_SPEEDUP:
            failures.append(
                f"batched speedup {report['speedup']:.2f}x below the required "
                f"{REQUIRED_SPEEDUP}x"
            )
    else:
        print(
            f"  NOTE: speedup gate skipped — {report['effective_cpus']} effective CPU(s); "
            "parallel speedup needs >= 2"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
