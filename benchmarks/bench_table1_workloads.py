"""Table 1: characteristics of the four evaluation workloads.

Prints the same columns as the paper (size on disk, number of queries, median
joins per query) for the scaled-down synthetic JOB, CEB, Stack and DSB
analogues.
"""

from __future__ import annotations

from repro.harness import format_table
from repro.workloads import (
    build_ceb_workload,
    build_dsb_workload,
    build_job_workload,
    build_stack_workload,
)


def build_all_workloads():
    job = build_job_workload(scale=0.15, seed=0)
    ceb = build_ceb_workload(scale=0.15, seed=0, num_templates=6, queries_per_template=8,
                             database=job.database)
    stack = build_stack_workload(scale=0.08, seed=0, num_templates=8, num_queries=40)
    dsb = build_dsb_workload(scale=0.08, seed=0, num_templates=10, queries_per_template=3)
    return [job, ceb, stack, dsb]


def test_table1_workload_characteristics(benchmark):
    workloads = benchmark.pedantic(build_all_workloads, rounds=1, iterations=1)
    rows = []
    for workload in workloads:
        rows.append(
            [
                workload.name,
                f"{workload.size_bytes() / 1e6:.1f} MB",
                workload.num_queries,
                workload.median_joins(),
            ]
        )
    print()
    print(
        format_table(
            ["Name", "Size (synthetic)", "Queries", "Median joins per query"],
            rows,
            title="Table 1: workload characteristics (scaled-down analogues)",
        )
    )
    assert len(workloads) == 4
    assert all(workload.num_queries > 0 for workload in workloads)
