"""Figure 5: ablation of the timeout strategy and of trust-region local BO.

Figure 5a compares BayesQO's uncertainty-based timeouts against no timeouts,
10th-percentile timeouts and 0th-percentile (best-seen) timeouts on a single
JOB-analogue query.  Figure 5b compares trust-region local BO against global
BO.  An extra arm ablates learning from censored observations entirely.  The
shapes to look for: the uncertainty rule reaches the best final latency for
the least budget, and local BO dominates global BO.
"""

from __future__ import annotations

#: Per-query plan-execution budget shared by the comparison benches.
BENCH_EXECUTIONS = 30
#: Number of workload queries sampled for the comparison benches.
BENCH_QUERIES = 6

from repro.core import BayesQO, BayesQOConfig
from repro.harness import format_table

TIMEOUT_ARMS = {
    "Our Method (uncertainty)": {"timeout_strategy": "uncertainty"},
    "No Timeouts": {"timeout_strategy": "none"},
    "10th Percentile Timeouts": {"timeout_strategy": "percentile", "timeout_percentile": 10.0},
    "0th Percentile Timeouts": {"timeout_strategy": "best_seen"},
    "No learning from timeouts": {"timeout_strategy": "uncertainty", "learn_from_timeouts": False},
}

TRUST_REGION_ARMS = {
    "Our Method (trust region)": {"use_trust_region": True},
    "Without Trust Region (global BO)": {"use_trust_region": False},
}


def _run_arms(job_workload, job_schema_model, arms):
    query = job_workload.queries[0]
    outcomes = {}
    for label, overrides in arms.items():
        config = BayesQOConfig(max_executions=BENCH_EXECUTIONS, num_candidates=128, seed=0, **overrides)
        optimizer = BayesQO(job_workload.database, job_schema_model, config=config)
        outcomes[label] = optimizer.optimize(query)
    return outcomes


def run_ablation(job_workload, job_schema_model):
    return (
        _run_arms(job_workload, job_schema_model, TIMEOUT_ARMS),
        _run_arms(job_workload, job_schema_model, TRUST_REGION_ARMS),
    )


def test_fig5_ablation(benchmark, job_workload, job_schema_model):
    timeout_runs, trust_runs = benchmark.pedantic(
        run_ablation, args=(job_workload, job_schema_model), rounds=1, iterations=1
    )
    print()
    for title, runs in (
        ("Figure 5a: timeout strategy ablation", timeout_runs),
        ("Figure 5b: trust region ablation", trust_runs),
    ):
        rows = []
        for label, result in runs.items():
            rows.append(
                [
                    label,
                    f"{result.best_latency_or(float('nan')):.4f}",
                    f"{result.total_cost:.1f}",
                    result.num_executions,
                    sum(1 for record in result.trace if record.censored),
                ]
            )
        print(format_table(
            ["strategy", "best runtime (s)", "budget used (s)", "executions", "timeouts"],
            rows, title=title,
        ))
        print()
    our_timeout = timeout_runs["Our Method (uncertainty)"]
    no_timeout = timeout_runs["No Timeouts"]
    # The uncertainty rule should not need more budget than running without timeouts.
    assert our_timeout.total_cost <= no_timeout.total_cost * 1.5 + 1e-9
    assert our_timeout.best_latency_or(1e9) <= no_timeout.best_latency_or(1e9) * 2.0
